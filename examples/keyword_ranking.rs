//! Ranked keyword-search scoring over materialized views (paper Q8 and the
//! §1 motivation: "we can materialize a single view and its provenance —
//! and from this we can efficiently compute any of a variety of scores").
//!
//! The same provenance graph is scored twice with different edge costs —
//! exactly the scenario where storing provenance instead of scores pays
//! off ("costs over the same edges might be assigned differently based on
//! the user or the query context").
//!
//! Run with `cargo run --example keyword_ranking`.

use proql::engine::Engine;
use proql_provgraph::system::example_2_1;

fn score(engine: &mut Engine, a_cost: i64, m5_cost: f64) -> Vec<(String, f64)> {
    let q = format!(
        "EVALUATE WEIGHT OF {{
           FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x
         }} ASSIGNING EACH leaf_node $y {{
           CASE $y in A : SET {a_cost}
           DEFAULT : SET 1
         }} ASSIGNING EACH mapping $p($z) {{
           CASE $p = m5 : SET $z + {m5_cost}
           DEFAULT : SET $z
         }}"
    );
    let out = engine.query(&q).expect("weight query runs");
    let mut rows: Vec<(String, f64)> = out
        .annotated
        .expect("annotated")
        .rows
        .iter()
        .map(|r| {
            (
                r.key.to_string(),
                r.annotation.as_weight().unwrap_or(f64::INFINITY),
            )
        })
        .collect();
    rows.sort_by(|a, b| a.1.total_cmp(&b.1));
    rows
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut engine = Engine::new(example_2_1()?);

    println!("ranking 1: authoritative A data (cost 2), cheap m5:");
    for (key, w) in score(&mut engine, 2, 0.5) {
        println!("  O{key:<12} cost = {w}");
    }

    println!("\nranking 2: same provenance, A now expensive (cost 50):");
    for (key, w) in score(&mut engine, 50, 0.5) {
        println!("  O{key:<12} cost = {w}");
    }
    println!("\n(no re-exchange needed: only the annotation pass re-ran)");
    Ok(())
}
