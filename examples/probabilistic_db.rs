//! Probabilistic query answering from materialized provenance (paper Q9,
//! the Trio use case): base tuples carry probabilities, derived tuples get
//! event expressions, and probabilities are computed from the events
//! assuming independence.
//!
//! Run with `cargo run --example probabilistic_db`.

use proql::engine::Engine;
use proql_provgraph::system::example_2_1;
use proql_semiring::{event_probability, event_probability_mc};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = Engine::new(example_2_1()?);
    let out = engine.query(
        "EVALUATE PROBABILITY OF {
           FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x
         } ASSIGNING EACH leaf_node $y {
           CASE $y in A : SET 0.9
           CASE $y in C : SET 0.6
           DEFAULT : SET 0.8
         }",
    )?;
    let ann = out.annotated.expect("annotated");
    println!("base probabilities: A = 0.9, C = 0.6, others 0.8\n");
    for row in &ann.rows {
        let ev = row.annotation.as_event().expect("event expression");
        let probs = |e: &str| *ann.leaf_probs.get(e).unwrap_or(&0.8);
        let exact = event_probability(ev, &probs)?;
        let mc = event_probability_mc(ev, &probs, 20_000, 7);
        println!(
            "  O{:<12} event = {:<28} P = {exact:.4} (MC ≈ {mc:.4})",
            row.key.to_string(),
            row.annotation.to_string(),
        );
    }
    Ok(())
}
