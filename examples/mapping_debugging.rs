//! Debugging schema mappings (paper Q3 and the SPIDER use case): find
//! which tuples a suspect mapping produced, inspect the paths, and verify
//! a fix by deleting bad base data with provenance-based update exchange.
//!
//! Run with `cargo run --example mapping_debugging`.

use proql::engine::{Engine, Strategy};
use proql_cdss::{delete_local, remains_derivable};
use proql_common::tup;
use proql_provgraph::system::example_2_1;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sys = example_2_1()?;
    let mut engine = Engine::new(sys);
    engine.options.strategy = Strategy::Unfold;

    // Q3: which tuples are derived through the suspect mappings m1 or m2,
    // and what is derived from them in one further step?
    let out = engine.query(
        "FOR [$x] <$p [], [$y] <- [$x]
         WHERE $p = m1 OR $p = m2
         INCLUDE PATH [$y] <- [$x]
         RETURN $y",
    )?;
    println!(
        "Q3: {} tuples are one step downstream of m1/m2 output:",
        out.projection.bindings.len()
    );
    for b in &out.projection.bindings {
        let (rel, key) = &b["y"];
        println!("  {rel}{key}");
    }

    // Suppose N(1, cn1, false) turns out to be bad data. Check what still
    // stands after removing it (use case Q5).
    let mut sys = engine.sys;
    println!("\ndeleting base tuple N(1, cn1, false)...");
    let stats = delete_local(&mut sys, "N", &tup![1, "cn1"])?;
    println!(
        "  removed {} derived tuples and {} provenance rows",
        stats.tuples_deleted, stats.prov_rows_deleted
    );
    println!(
        "  O(cn1) still derivable? {}",
        remains_derivable(&sys, "O", &tup!["cn1"])?
    );
    println!(
        "  O(sn1) still derivable? {}",
        remains_derivable(&sys, "O", &tup!["sn1"])?
    );
    Ok(())
}
