//! Trust assessment in a CDSS (the paper's Q7 and §2 motivation):
//! peers assign trust conditions to base data and distrust certain
//! mappings; ProQL computes which derived tuples remain trusted.
//!
//! Run with `cargo run --example trust_assessment`.

use proql::engine::Engine;
use proql_provgraph::system::example_2_1;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = Engine::new(example_2_1()?);

    // Paper Q7 (adapted to the example's attribute names): peer O
    // distrusts animal data with length >= 6, trusts common names, and
    // distrusts everything mapped through m4.
    let out = engine.query(
        "EVALUATE TRUST OF {
           FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x
         } ASSIGNING EACH leaf_node $y {
           CASE $y in C : SET true
           CASE $y in A AND $y.len >= 6 : SET false
           DEFAULT : SET true
         } ASSIGNING EACH mapping $p($z) {
           CASE $p = m4 : SET false
           DEFAULT : SET $z
         }",
    )?;
    println!("trust policy: distrust A tuples with len >= 6; distrust mapping m4\n");
    for row in &out.annotated.expect("annotated").rows {
        println!(
            "  O{:<12} trusted = {}",
            row.key.to_string(),
            row.annotation
        );
    }

    // Confidentiality (Q10): A data is secret; joins take the stricter
    // level, unions the laxer.
    let out = engine.query(
        "EVALUATE CONFIDENTIALITY OF {
           FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x
         } ASSIGNING EACH leaf_node $y {
           CASE $y in A : SET secret
           DEFAULT : SET public
         }",
    )?;
    println!("\naccess-control levels (A is secret):");
    for row in &out.annotated.expect("annotated").rows {
        println!("  O{:<12} level = {}", row.key.to_string(), row.annotation);
    }
    Ok(())
}
