//! Quickstart: the paper's running example (Example 2.1 / Figure 1),
//! end to end — build the CDSS, exchange data with provenance, run the
//! paper's use-case queries Q1–Q5, and render the provenance graph.
//!
//! Run with `cargo run --example quickstart`.

use proql::engine::{Engine, Strategy};
use proql_provgraph::{system::example_2_1, ProvGraph};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Example 2.1: peers sharing animal data through mappings m1..m5,
    // with the base tuples of Figure 1 already exchanged.
    let sys = example_2_1()?;
    println!(
        "relations: {}",
        sys.db.table_names().collect::<Vec<_>>().join(", ")
    );
    println!("mappings : {}\n", sys.program().rules.len());

    let mut engine = Engine::new(sys);
    // Example 2.1 is cyclic (m1/m3 derive each other's inputs), so the
    // engine auto-selects the bottom-up graph strategy.
    engine.options.strategy = Strategy::Auto;

    // Q1: all the ways O tuples were derived.
    let q1 = engine.query("FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x")?;
    println!(
        "Q1: {} O tuples, {} derivation rows in the projected subgraph",
        q1.projection.bindings.len(),
        q1.projection.derivation_count()
    );

    // Q5: derivability with the default assignment.
    let q5 = engine
        .query("EVALUATE DERIVABILITY OF { FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x }")?;
    for row in &q5.annotated.as_ref().expect("annotated").rows {
        println!("Q5: O{} derivable = {}", row.key, row.annotation);
    }

    // Q6: lineage — the base tuples each O tuple depends on.
    let q6 =
        engine.query("EVALUATE LINEAGE OF { FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x }")?;
    for row in &q6.annotated.as_ref().expect("annotated").rows {
        println!("Q6: lineage(O{}) = {}", row.key, row.annotation);
    }

    // Render Figure 1 as GraphViz DOT (for the "interactive provenance
    // browser" use case the paper motivates).
    let graph = ProvGraph::from_system(&engine.sys)?;
    println!(
        "\nFigure 1 as DOT ({} tuple nodes, {} derivations):\n{}",
        graph.tuple_count(),
        graph.derivation_count(),
        &graph.to_dot()[..200.min(graph.to_dot().len())]
    );
    Ok(())
}
