//! A larger CDSS scenario: build a 6-peer branched topology over the
//! synthetic SWISS-PROT-like workload, exchange with provenance, query it,
//! and accelerate with advisor-selected ASRs.
//!
//! Run with `cargo run --release --example cdss_exchange`.

use proql::engine::{Engine, EngineOptions, Strategy};
use proql_asr::{advise, AsrKind, AsrRegistry};
use proql_cdss::topology::{build_system, target_query, CdssConfig, Topology};
use std::sync::Arc;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = CdssConfig::new(6, vec![3, 4, 5], 500);
    let t0 = Instant::now();
    let sys = build_system(Topology::Branched, &cfg)?;
    println!(
        "exchange: {} rows materialized, {} provenance rows, {:.3}s",
        sys.db.total_rows(),
        sys.provenance_rows(),
        t0.elapsed().as_secs_f64()
    );

    let mut plain = Engine::new(sys.clone());
    plain.options.strategy = Strategy::Unfold;
    let t0 = Instant::now();
    let out = plain.query(target_query())?;
    println!(
        "target query (no ASRs): {} bindings, {} unfolded rules, {:.3}s",
        out.projection.bindings.len(),
        out.stats.translate.rules,
        t0.elapsed().as_secs_f64()
    );

    // ASR-accelerated run with advisor-selected suffix ASRs.
    let mut sys2 = sys;
    let mut reg = AsrRegistry::new();
    for def in advise(&sys2, "R0a", 3, AsrKind::Suffix) {
        println!("building {}", def.name);
        reg.build(&mut sys2, def)?;
    }
    let mut opts = EngineOptions {
        strategy: Strategy::Unfold,
        ..Default::default()
    };
    opts.rewriter = Some(Arc::new(reg));
    let fast = Engine::with_options(sys2, opts);
    let t0 = Instant::now();
    let out2 = fast.query(target_query())?;
    println!(
        "target query (with ASRs): {} bindings, {} joins vs {} before, {:.3}s",
        out2.projection.bindings.len(),
        out2.stats.total_joins,
        out.stats.total_joins,
        t0.elapsed().as_secs_f64()
    );
    assert_eq!(out.projection.bindings, out2.projection.bindings);
    Ok(())
}
