//! Root facade for integration tests; re-exports the workspace crates.
pub use proql;
pub use proql_asr;
pub use proql_cdss;
pub use proql_common;
pub use proql_datalog;
pub use proql_provgraph;
pub use proql_semiring;
pub use proql_storage;
