//! Datalog abstract syntax: terms, atoms, rules, programs.

use proql_common::Value;
use std::collections::BTreeSet;
use std::fmt;

/// A term in an atom.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A variable (don't-cares are normalized to fresh variables at parse
    /// time, so every variable here is a real one).
    Var(String),
    /// A constant value.
    Const(Value),
    /// A Skolem function application, used in mapping heads to produce
    /// labeled nulls for existential variables (GLAV mappings; paper §2,
    /// footnote 1). Arguments must be variables or constants.
    Skolem(String, Vec<Term>),
}

impl Term {
    /// Variable helper.
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }

    /// Constant helper.
    pub fn cons(v: impl Into<Value>) -> Term {
        Term::Const(v.into())
    }

    /// Variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            _ => None,
        }
    }

    /// Collect variable names into `out`.
    pub fn collect_vars<'a>(&'a self, out: &mut BTreeSet<&'a str>) {
        match self {
            Term::Var(v) => {
                out.insert(v);
            }
            Term::Const(_) => {}
            Term::Skolem(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(Value::Str(s)) => write!(f, "'{s}'"),
            Term::Const(v) => write!(f, "{v}"),
            Term::Skolem(name, args) => {
                write!(f, "!{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A relational atom `R(t1, ..., tk)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    /// Relation name.
    pub relation: String,
    /// Terms, one per attribute.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Build an atom.
    pub fn new(relation: impl Into<String>, terms: Vec<Term>) -> Self {
        Atom {
            relation: relation.into(),
            terms,
        }
    }

    /// Arity.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// All variable names in the atom (sorted, deduped).
    pub fn vars(&self) -> BTreeSet<&str> {
        let mut out = BTreeSet::new();
        for t in &self.terms {
            t.collect_vars(&mut out);
        }
        out
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A rule `H1, ..., Hn :- B1, ..., Bm`, optionally named.
///
/// Multiple head atoms model GLAV mappings with several target atoms; the
/// common case has one. A rule with an empty body is a fact template (not
/// used by the engine).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Optional mapping name (`m1`, `L3`, ...).
    pub name: Option<String>,
    /// Head atoms (n target atoms of the mapping).
    pub heads: Vec<Atom>,
    /// Body atoms (m source atoms of the mapping).
    pub body: Vec<Atom>,
}

impl Rule {
    /// Build a single-head rule.
    pub fn new(name: Option<String>, head: Atom, body: Vec<Atom>) -> Self {
        Rule {
            name,
            heads: vec![head],
            body,
        }
    }

    /// Build a multi-head rule.
    pub fn multi(name: Option<String>, heads: Vec<Atom>, body: Vec<Atom>) -> Self {
        Rule { name, heads, body }
    }

    /// The single head; panics if the rule has several (used where the
    /// context guarantees single-head rules, e.g. unfolded queries).
    pub fn head(&self) -> &Atom {
        assert_eq!(self.heads.len(), 1, "rule has multiple heads");
        &self.heads[0]
    }

    /// All variables in the body.
    pub fn body_vars(&self) -> BTreeSet<&str> {
        let mut out = BTreeSet::new();
        for a in &self.body {
            for t in &a.terms {
                t.collect_vars(&mut out);
            }
        }
        out
    }

    /// All variables in the heads.
    pub fn head_vars(&self) -> BTreeSet<&str> {
        let mut out = BTreeSet::new();
        for a in &self.heads {
            for t in &a.terms {
                t.collect_vars(&mut out);
            }
        }
        out
    }

    /// Safety check: every head variable must occur in the body (variables
    /// inside Skolem terms included — they too must be bound by the body).
    pub fn check_safety(&self) -> proql_common::Result<()> {
        let body_vars = self.body_vars();
        for v in self.head_vars() {
            if !body_vars.contains(v) {
                return Err(proql_common::Error::Datalog(format!(
                    "unsafe rule{}: head variable {v} not bound in body",
                    self.name
                        .as_deref()
                        .map(|n| format!(" {n}"))
                        .unwrap_or_default()
                )));
            }
        }
        if self.body.is_empty() {
            return Err(proql_common::Error::Datalog("rule with empty body".into()));
        }
        Ok(())
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(n) = &self.name {
            write!(f, "{n}: ")?;
        }
        for (i, h) in self.heads.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{h}")?;
        }
        write!(f, " :- ")?;
        for (i, b) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

/// A set of rules.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// The rules, in declaration order.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Build a program.
    pub fn new(rules: Vec<Rule>) -> Self {
        Program { rules }
    }

    /// Find a rule by name.
    pub fn rule_named(&self, name: &str) -> Option<&Rule> {
        self.rules.iter().find(|r| r.name.as_deref() == Some(name))
    }

    /// All rules whose head derives `relation`.
    pub fn rules_deriving<'a>(&'a self, relation: &'a str) -> impl Iterator<Item = &'a Rule> {
        self.rules
            .iter()
            .filter(move |r| r.heads.iter().any(|h| h.relation == relation))
    }

    /// Check safety of every rule.
    pub fn check_safety(&self) -> proql_common::Result<()> {
        for r in &self.rules {
            r.check_safety()?;
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(rel: &str, vars: &[&str]) -> Atom {
        Atom::new(rel, vars.iter().map(|v| Term::var(*v)).collect())
    }

    #[test]
    fn vars_are_collected_through_skolems() {
        let a = Atom::new(
            "R",
            vec![
                Term::var("x"),
                Term::Skolem("f".into(), vec![Term::var("y"), Term::cons(1)]),
            ],
        );
        let vars = a.vars();
        assert!(vars.contains("x") && vars.contains("y"));
    }

    #[test]
    fn safety_accepts_bound_heads() {
        let r = Rule::new(None, atom("H", &["x"]), vec![atom("B", &["x", "y"])]);
        assert!(r.check_safety().is_ok());
    }

    #[test]
    fn safety_rejects_unbound_head_var() {
        let r = Rule::new(
            Some("m9".into()),
            atom("H", &["z"]),
            vec![atom("B", &["x"])],
        );
        let err = r.check_safety().unwrap_err();
        assert!(err.to_string().contains("m9"));
        assert!(err.to_string().contains('z'));
    }

    #[test]
    fn safety_rejects_unbound_skolem_arg() {
        let head = Atom::new("H", vec![Term::Skolem("f".into(), vec![Term::var("q")])]);
        let r = Rule::new(None, head, vec![atom("B", &["x"])]);
        assert!(r.check_safety().is_err());
    }

    #[test]
    fn safety_rejects_empty_body() {
        let r = Rule::new(None, Atom::new("H", vec![Term::cons(1)]), vec![]);
        assert!(r.check_safety().is_err());
    }

    #[test]
    fn display_matches_paper_notation() {
        let r = Rule::new(
            Some("m1".into()),
            atom("C", &["i", "n"]),
            vec![
                atom("A", &["i", "s", "l"]),
                Atom::new("N", vec![Term::var("i"), Term::var("n"), Term::cons(false)]),
            ],
        );
        assert_eq!(r.to_string(), "m1: C(i, n) :- A(i, s, l), N(i, n, false)");
    }

    #[test]
    fn program_lookup() {
        let p = Program::new(vec![
            Rule::new(
                Some("m1".into()),
                atom("C", &["x"]),
                vec![atom("A", &["x"])],
            ),
            Rule::new(
                Some("m2".into()),
                atom("C", &["x"]),
                vec![atom("B", &["x"])],
            ),
        ]);
        assert!(p.rule_named("m2").is_some());
        assert!(p.rule_named("m3").is_none());
        assert_eq!(p.rules_deriving("C").count(), 2);
        assert_eq!(p.rules_deriving("A").count(), 0);
    }
}
