//! # proql-datalog
//!
//! A Datalog engine specialized for data exchange with provenance:
//!
//! * [`ast`] — terms, atoms, rules (with multi-atom heads and Skolem
//!   functions, covering the paper's GLAV/tgd mappings, §2 footnote 1),
//! * [`parse`] — a text syntax matching the paper's notation
//!   (`m1: C(i, n) :- A(i, s, _), N(i, n, false)`),
//! * [`compile`] — rule bodies compiled to relational [`Plan`]s over the
//!   storage engine,
//! * [`eval`] — semi-naive bottom-up evaluation to fixpoint, with a
//!   per-firing hook used by `proql-provgraph` to record provenance,
//! * [`unfold`] — rule unfolding (substituting body atoms by the rules
//!   deriving them; the core of ProQL's translation, §4.2.4) and unification,
//! * [`homomorphism`] — body-to-body homomorphisms (`findHomomorphism` of
//!   the paper's Figure 4, used by ASR rewriting).
//!
//! [`Plan`]: proql_storage::Plan

pub mod ast;
pub mod compile;
pub mod eval;
pub mod homomorphism;
pub mod parse;
pub mod unfold;

pub use ast::{Atom, Program, Rule, Term};
pub use compile::{compile_body, BodyPlan};
pub use eval::{
    run_program, run_program_seeded, run_program_seeded_delta, Bindings, EvalStats, FiringHook,
    NoopHook, SeedDelta,
};
pub use homomorphism::find_homomorphism;
pub use parse::{parse_program, parse_rule};
pub use unfold::{rename_apart, substitute_atom, substitute_rule, unify_atoms, Subst};
