//! Body-to-body homomorphisms — `findHomomorphism` of the paper's Figure 4.
//!
//! A homomorphism from a pattern body `P` to a rule body `R` maps the
//! variables of `P` to variables/constants of `R` such that the image of
//! every atom of `P` is an atom of `R`. ASR rewriting uses it to detect
//! that an indexed path occurs inside an unfolded rule, then replaces the
//! matched atoms with a single ASR atom (`unfoldPath`).

use crate::ast::{Atom, Term};
use std::collections::HashMap;

/// A variable assignment from pattern variables to target terms.
pub type Homomorphism = HashMap<String, Term>;

/// Find a homomorphism from `pattern` to `target`.
///
/// The assignment of pattern atoms to target atoms is required to be
/// **injective** (distinct pattern atoms map to distinct target atoms),
/// because the caller removes the matched atoms from the target body.
/// Returns the variable mapping plus the matched target-atom indices, in
/// pattern order.
pub fn find_homomorphism(pattern: &[Atom], target: &[Atom]) -> Option<(Homomorphism, Vec<usize>)> {
    let mut h = Homomorphism::new();
    let mut used = vec![false; target.len()];
    let mut chosen = Vec::with_capacity(pattern.len());
    if search(pattern, target, 0, &mut h, &mut used, &mut chosen) {
        Some((h, chosen))
    } else {
        None
    }
}

fn search(
    pattern: &[Atom],
    target: &[Atom],
    i: usize,
    h: &mut Homomorphism,
    used: &mut [bool],
    chosen: &mut Vec<usize>,
) -> bool {
    if i == pattern.len() {
        return true;
    }
    let pa = &pattern[i];
    for (j, ta) in target.iter().enumerate() {
        if used[j] || ta.relation != pa.relation || ta.arity() != pa.arity() {
            continue;
        }
        // Try to extend h to map pa onto ta.
        let mut added: Vec<String> = Vec::new();
        if match_atom(pa, ta, h, &mut added) {
            used[j] = true;
            chosen.push(j);
            if search(pattern, target, i + 1, h, used, chosen) {
                return true;
            }
            chosen.pop();
            used[j] = false;
        }
        for k in added.drain(..) {
            h.remove(&k);
        }
    }
    false
}

/// One-way matching (no binding of target variables): pattern terms map onto
/// target terms; pattern constants must equal target constants.
fn match_atom(pa: &Atom, ta: &Atom, h: &mut Homomorphism, added: &mut Vec<String>) -> bool {
    for (pt, tt) in pa.terms.iter().zip(&ta.terms) {
        if !match_term(pt, tt, h, added) {
            return false;
        }
    }
    true
}

fn match_term(pt: &Term, tt: &Term, h: &mut Homomorphism, added: &mut Vec<String>) -> bool {
    match pt {
        Term::Var(v) => match h.get(v) {
            Some(bound) => bound == tt,
            None => {
                h.insert(v.clone(), tt.clone());
                added.push(v.clone());
                true
            }
        },
        Term::Const(c) => matches!(tt, Term::Const(d) if c == d),
        Term::Skolem(f, fa) => match tt {
            Term::Skolem(g, ga) if f == g && fa.len() == ga.len() => {
                fa.iter().zip(ga).all(|(x, y)| match_term(x, y, h, added))
            }
            _ => false,
        },
    }
}

/// Apply a homomorphism to an atom (pattern-side helper for `unfoldPath`).
pub fn apply_homomorphism(h: &Homomorphism, atom: &Atom) -> Atom {
    crate::unfold::substitute_atom(h, atom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_rule;

    fn body(rule: &str) -> Vec<Atom> {
        parse_rule(rule).unwrap().body
    }

    #[test]
    fn finds_simple_embedding() {
        // Pattern: P5(i, n), P1(i, n) — an ASR over the m1;m5 path.
        let pattern = body("Hx(i) :- P5(i, n), P1(i, n)");
        let target = body("O(a) :- P5(a, b), Al(a, c), P1(a, b), A(a, d, e), N(a, b, false)");
        let (h, idxs) = find_homomorphism(&pattern, &target).unwrap();
        assert_eq!(idxs, vec![0, 2]);
        assert_eq!(h.get("i"), Some(&Term::var("a")));
        assert_eq!(h.get("n"), Some(&Term::var("b")));
    }

    #[test]
    fn respects_shared_variables() {
        // Pattern requires the same var in both atoms; target has different.
        let pattern = body("H(x) :- R(x), S(x)");
        let target = body("H(a) :- R(a), S(b)");
        assert!(find_homomorphism(&pattern, &target).is_none());
        let target_ok = body("H(a) :- R(a), S(a)");
        assert!(find_homomorphism(&pattern, &target_ok).is_some());
    }

    #[test]
    fn constants_must_match_exactly() {
        let pattern = body("H(x) :- R(x, true)");
        assert!(find_homomorphism(&pattern, &body("H(a) :- R(a, false)")).is_none());
        assert!(find_homomorphism(&pattern, &body("H(a) :- R(a, true)")).is_some());
    }

    #[test]
    fn pattern_var_can_map_to_constant() {
        let pattern = body("H(x) :- R(x, y)");
        let target = body("H(a) :- R(a, 7)");
        let (h, _) = find_homomorphism(&pattern, &target).unwrap();
        assert_eq!(h.get("y"), Some(&Term::cons(7)));
    }

    #[test]
    fn injective_on_atoms() {
        // Two pattern atoms cannot both map onto the single target atom.
        let pattern = body("H(x) :- R(x, y), R(y, z)");
        let target = body("H(a) :- R(a, a)");
        assert!(find_homomorphism(&pattern, &target).is_none());
        let target2 = body("H(a) :- R(a, a), R(a, a2), R(a2, a)");
        assert!(find_homomorphism(&pattern, &target2).is_some());
    }

    #[test]
    fn backtracks_over_candidate_atoms() {
        // First R atom candidate fails to satisfy S; must backtrack.
        let pattern = body("H(x) :- R(x, y), S(y)");
        let target = body("H(a) :- R(a, b), R(c, d), S(d)");
        let (h, idxs) = find_homomorphism(&pattern, &target).unwrap();
        assert_eq!(h.get("x"), Some(&Term::var("c")));
        assert_eq!(idxs, vec![1, 2]);
    }

    #[test]
    fn empty_pattern_trivially_embeds() {
        let target = body("H(a) :- R(a)");
        let (h, idxs) = find_homomorphism(&[], &target).unwrap();
        assert!(h.is_empty());
        assert!(idxs.is_empty());
    }
}
