//! Unification, substitution, and rule unfolding.
//!
//! ProQL translation (paper §4.2.4) repeatedly *unfolds* rules: a body atom
//! `R(t̄)` derived by a rule `R(h̄) :- B̄` is replaced by `B̄` under the
//! most general unifier of `t̄` and `h̄`. The same machinery (plus
//! [`crate::homomorphism`]) implements the ASR rewriting of Figure 4.

use crate::ast::{Atom, Rule, Term};
use std::collections::HashMap;

/// A substitution: variable name → term.
pub type Subst = HashMap<String, Term>;

/// Apply a substitution to a term.
pub fn apply_term(subst: &Subst, term: &Term) -> Term {
    match term {
        Term::Var(v) => subst.get(v).cloned().unwrap_or_else(|| term.clone()),
        Term::Const(_) => term.clone(),
        Term::Skolem(name, args) => Term::Skolem(
            name.clone(),
            args.iter().map(|a| apply_term(subst, a)).collect(),
        ),
    }
}

/// Apply a substitution to an atom.
pub fn substitute_atom(subst: &Subst, atom: &Atom) -> Atom {
    Atom::new(
        atom.relation.clone(),
        atom.terms.iter().map(|t| apply_term(subst, t)).collect(),
    )
}

/// Apply a substitution to a whole rule.
pub fn substitute_rule(subst: &Subst, rule: &Rule) -> Rule {
    Rule {
        name: rule.name.clone(),
        heads: rule
            .heads
            .iter()
            .map(|a| substitute_atom(subst, a))
            .collect(),
        body: rule
            .body
            .iter()
            .map(|a| substitute_atom(subst, a))
            .collect(),
    }
}

/// Rename every variable of `rule` by appending `suffix` (used to make rules
/// variable-disjoint before unification).
pub fn rename_apart(rule: &Rule, suffix: &str) -> Rule {
    let mut subst = Subst::new();
    let mut vars = rule.body_vars();
    vars.extend(rule.head_vars());
    for v in vars {
        subst.insert(v.to_string(), Term::Var(format!("{v}#{suffix}")));
    }
    substitute_rule(&subst, rule)
}

/// Resolve a variable through the substitution chain.
fn walk(subst: &Subst, term: &Term) -> Term {
    let mut t = term.clone();
    while let Term::Var(v) = &t {
        match subst.get(v) {
            Some(next) if next != &t => t = next.clone(),
            _ => break,
        }
    }
    t
}

fn occurs(var: &str, term: &Term, subst: &Subst) -> bool {
    match walk(subst, term) {
        Term::Var(v) => v == var,
        Term::Const(_) => false,
        Term::Skolem(_, args) => args.iter().any(|a| occurs(var, a, subst)),
    }
}

fn unify_terms(a: &Term, b: &Term, subst: &mut Subst) -> bool {
    let a = walk(subst, a);
    let b = walk(subst, b);
    match (&a, &b) {
        (Term::Var(x), Term::Var(y)) if x == y => true,
        // Prefer binding the right-hand (definition-side) variable so that
        // unfolding keeps the host rule's variable names.
        (t, Term::Var(x)) | (Term::Var(x), t) => {
            if occurs(x, t, subst) {
                false
            } else {
                subst.insert(x.clone(), t.clone());
                true
            }
        }
        (Term::Const(u), Term::Const(v)) => u == v,
        (Term::Skolem(f, fa), Term::Skolem(g, ga)) => {
            f == g
                && fa.len() == ga.len()
                && fa.iter().zip(ga).all(|(x, y)| unify_terms(x, y, subst))
        }
        _ => false,
    }
}

/// Most general unifier of two atoms (same relation, same arity), if any.
pub fn unify_atoms(a: &Atom, b: &Atom) -> Option<Subst> {
    if a.relation != b.relation || a.arity() != b.arity() {
        return None;
    }
    let mut subst = Subst::new();
    for (x, y) in a.terms.iter().zip(&b.terms) {
        if !unify_terms(x, y, &mut subst) {
            return None;
        }
    }
    // Flatten: make every binding fully resolved.
    let keys: Vec<String> = subst.keys().cloned().collect();
    for k in keys {
        let resolved = resolve_fully(&subst, &Term::Var(k.clone()));
        subst.insert(k, resolved);
    }
    Some(subst)
}

fn resolve_fully(subst: &Subst, term: &Term) -> Term {
    match walk(subst, term) {
        Term::Skolem(f, args) => {
            Term::Skolem(f, args.iter().map(|a| resolve_fully(subst, a)).collect())
        }
        other => other,
    }
}

/// Unfold `host.body[atom_idx]` using `def` (a rule whose head derives that
/// atom's relation). Returns the unfolded rule, or `None` when the head does
/// not unify with the atom.
///
/// `def` is renamed apart with `suffix` first, so callers should pass a
/// fresh suffix per unfolding step.
pub fn unfold_atom(host: &Rule, atom_idx: usize, def: &Rule, suffix: &str) -> Option<Rule> {
    let def = rename_apart(def, suffix);
    let target = &host.body[atom_idx];
    // Find the (single) head of `def` matching the atom's relation.
    let head = def.heads.iter().find(|h| h.relation == target.relation)?;
    let subst = unify_atoms(target, head)?;
    let mut body = Vec::with_capacity(host.body.len() - 1 + def.body.len());
    for (i, a) in host.body.iter().enumerate() {
        if i == atom_idx {
            for b in &def.body {
                body.push(substitute_atom(&subst, b));
            }
        } else {
            body.push(substitute_atom(&subst, a));
        }
    }
    Some(Rule {
        name: host.name.clone(),
        heads: host
            .heads
            .iter()
            .map(|h| substitute_atom(&subst, h))
            .collect(),
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_rule;

    #[test]
    fn unify_binds_vars_to_constants() {
        let a = parse_rule("H(i) :- N(i, n, false)").unwrap().body[0].clone();
        let h = parse_rule("N(x, y, c) :- B(x, y, c)").unwrap().heads[0].clone();
        let s = unify_atoms(&a, &h).unwrap();
        assert_eq!(apply_term(&s, &Term::var("x")), Term::var("i"));
        assert_eq!(apply_term(&s, &Term::var("c")), Term::cons(false));
    }

    #[test]
    fn unify_fails_on_constant_clash() {
        let a = parse_rule("H(i) :- N(i, n, false)").unwrap().body[0].clone();
        let h = parse_rule("N(x, y, true) :- B(x, y)").unwrap().heads[0].clone();
        assert!(unify_atoms(&a, &h).is_none());
    }

    #[test]
    fn unify_fails_on_different_relations() {
        let a = Atom::new("R", vec![Term::var("x")]);
        let b = Atom::new("S", vec![Term::var("x")]);
        assert!(unify_atoms(&a, &b).is_none());
    }

    #[test]
    fn occurs_check_prevents_infinite_terms() {
        let a = Atom::new("R", vec![Term::var("x")]);
        let b = Atom::new("R", vec![Term::Skolem("f".into(), vec![Term::var("x")])]);
        assert!(unify_atoms(&a, &b).is_none());
    }

    #[test]
    fn skolem_unification() {
        let a = Atom::new(
            "R",
            vec![Term::Skolem(
                "f".into(),
                vec![Term::var("x"), Term::cons(1)],
            )],
        );
        let b = Atom::new(
            "R",
            vec![Term::Skolem(
                "f".into(),
                vec![Term::cons(2), Term::var("y")],
            )],
        );
        let s = unify_atoms(&a, &b).unwrap();
        assert_eq!(apply_term(&s, &Term::var("x")), Term::cons(2));
        assert_eq!(apply_term(&s, &Term::var("y")), Term::cons(1));
    }

    #[test]
    fn rename_apart_is_consistent() {
        let r = parse_rule("H(x, y) :- B(x, y), C(y, z)").unwrap();
        let r2 = rename_apart(&r, "1");
        assert_eq!(r2.to_string(), "H(x#1, y#1) :- B(x#1, y#1), C(y#1, z#1)");
    }

    #[test]
    fn unfold_replaces_atom_with_definition() {
        // Paper Example 4.3: unfolding C in the m5 rule body by the m1 rule
        // over provenance relations.
        let host = parse_rule("O(n, h, true) :- P5(i, n), A(i, _, h), C(i, n)").unwrap();
        let def = parse_rule("C(i, n) :- P1(i, n), A(i, s, _), N(i, n, false)").unwrap();
        let unfolded = unfold_atom(&host, 2, &def, "u1").unwrap();
        assert_eq!(unfolded.body.len(), 5);
        let rels: Vec<&str> = unfolded.body.iter().map(|a| a.relation.as_str()).collect();
        assert_eq!(rels, vec!["P5", "A", "P1", "A", "N"]);
        // The shared variables i, n flowed into the definition's body.
        let p1 = &unfolded.body[2];
        assert_eq!(p1.terms[0], Term::var("i"));
        assert_eq!(p1.terms[1], Term::var("n"));
        // The N atom retained its constant.
        assert_eq!(unfolded.body[4].terms[2], Term::cons(false));
    }

    #[test]
    fn unfold_fails_when_head_does_not_match() {
        let host = parse_rule("H(x) :- R(x, true)").unwrap();
        let def = parse_rule("R(y, false) :- S(y)").unwrap();
        assert!(unfold_atom(&host, 0, &def, "u").is_none());
    }

    #[test]
    fn unfold_keeps_host_constants() {
        let host = parse_rule("H(x) :- R(x, 5)").unwrap();
        let def = parse_rule("R(y, z) :- S(y, z)").unwrap();
        let u = unfold_atom(&host, 0, &def, "u").unwrap();
        assert_eq!(u.body[0].relation, "S");
        assert_eq!(u.body[0].terms[1], Term::cons(5));
    }

    #[test]
    fn substitution_resolves_chains() {
        // x -> y and y -> 3 must resolve x to 3 after flattening.
        let a = Atom::new("R", vec![Term::var("x"), Term::var("x")]);
        let b = Atom::new("R", vec![Term::var("y"), Term::cons(3)]);
        let s = unify_atoms(&a, &b).unwrap();
        assert_eq!(apply_term(&s, &Term::var("x")), Term::cons(3));
        assert_eq!(apply_term(&s, &Term::var("y")), Term::cons(3));
    }
}
