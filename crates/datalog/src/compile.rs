//! Compile rule bodies into relational plans.
//!
//! A conjunctive body `B1, ..., Bk` becomes a left-deep tree of hash
//! equi-joins over the atoms' relations: shared variables become join keys,
//! constants and repeated variables within one atom become filters. This is
//! the plan shape the paper's ProQL→SQL translation produces for each
//! unfolded rule (§4.2.4).

use crate::ast::{Atom, Term};
use proql_common::{Error, Result};
use proql_storage::{Database, Expr, Plan};
use std::collections::HashMap;

/// A compiled rule body: the plan plus the mapping from variable name to
/// output column position. Executing `plan` yields one row per satisfying
/// assignment of the body (bag of bindings, deduplicated only if the caller
/// adds `Distinct`).
#[derive(Debug, Clone)]
pub struct BodyPlan {
    /// The relational plan; output columns are the concatenation of all
    /// atoms' columns in body order.
    pub plan: Plan,
    /// First column position binding each variable.
    pub var_cols: HashMap<String, usize>,
    /// Total output arity.
    pub arity: usize,
}

impl BodyPlan {
    /// Column of a variable.
    pub fn col(&self, var: &str) -> Result<usize> {
        self.var_cols
            .get(var)
            .copied()
            .ok_or_else(|| Error::Datalog(format!("variable {var} not bound by body")))
    }
}

/// Options controlling compilation.
#[derive(Debug, Clone, Default)]
pub struct CompileOptions {
    /// Per-atom relation-name overrides (atom index → table to scan).
    /// Used by semi-naive evaluation to point one atom at a delta table.
    pub relation_overrides: HashMap<usize, String>,
}

/// Compile `body` against the catalog `db` (schemas are needed to know each
/// atom's arity). Atoms' relations must exist as tables or views.
pub fn compile_body(db: &Database, body: &[Atom]) -> Result<BodyPlan> {
    compile_body_with(db, body, &CompileOptions::default())
}

/// [`compile_body`] with options.
pub fn compile_body_with(db: &Database, body: &[Atom], opts: &CompileOptions) -> Result<BodyPlan> {
    if body.is_empty() {
        return Err(Error::Datalog("cannot compile empty body".into()));
    }
    let mut var_cols: HashMap<String, usize> = HashMap::new();
    let mut plan: Option<Plan> = None;
    let mut arity = 0usize;

    for (atom_idx, atom) in body.iter().enumerate() {
        let schema = db.schema_of(&atom.relation)?;
        if schema.arity() != atom.arity() {
            return Err(Error::Datalog(format!(
                "atom {atom} has arity {} but relation {} has arity {}",
                atom.arity(),
                atom.relation,
                schema.arity()
            )));
        }
        let scan_name = opts
            .relation_overrides
            .get(&atom_idx)
            .cloned()
            .unwrap_or_else(|| atom.relation.clone());
        let mut atom_plan = Plan::scan(scan_name);

        // Local constraints: constants and repeated variables inside this atom.
        let mut local_vars: HashMap<&str, usize> = HashMap::new();
        let mut local_preds: Vec<Expr> = Vec::new();
        for (pos, term) in atom.terms.iter().enumerate() {
            match term {
                Term::Const(v) => {
                    local_preds.push(Expr::col(pos).eq(Expr::Lit(v.clone())));
                }
                Term::Var(name) => {
                    if let Some(&first) = local_vars.get(name.as_str()) {
                        local_preds.push(Expr::col(pos).eq(Expr::col(first)));
                    } else {
                        local_vars.insert(name, pos);
                    }
                }
                Term::Skolem(..) => {
                    return Err(Error::Datalog(format!(
                        "Skolem term in body atom {atom} is not supported"
                    )));
                }
            }
        }
        if !local_preds.is_empty() {
            atom_plan = atom_plan.filter(Expr::and(local_preds));
        }

        match plan.take() {
            None => {
                plan = Some(atom_plan);
                for (name, pos) in local_vars {
                    var_cols.insert(name.to_string(), pos);
                }
                arity = atom.arity();
            }
            Some(acc) => {
                // Join keys: variables this atom shares with the accumulator.
                let mut left_keys = Vec::new();
                let mut right_keys = Vec::new();
                for (name, &pos) in &local_vars {
                    if let Some(&lcol) = var_cols.get(*name) {
                        left_keys.push(lcol);
                        right_keys.push(pos);
                    }
                }
                plan = Some(acc.join(atom_plan, left_keys, right_keys));
                for (name, pos) in local_vars {
                    var_cols.entry(name.to_string()).or_insert(arity + pos);
                }
                arity += atom.arity();
            }
        }
    }

    Ok(BodyPlan {
        plan: plan.expect("body is non-empty"),
        var_cols,
        arity,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_rule;
    use proql_common::{tup, Schema, ValueType};
    use proql_storage::execute;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            Schema::build(
                "A",
                &[
                    ("id", ValueType::Int),
                    ("sn", ValueType::Str),
                    ("len", ValueType::Int),
                ],
                &[0],
            )
            .unwrap(),
        )
        .unwrap();
        db.create_table(
            Schema::build(
                "N",
                &[
                    ("id", ValueType::Int),
                    ("name", ValueType::Str),
                    ("c", ValueType::Bool),
                ],
                &[0, 1],
            )
            .unwrap(),
        )
        .unwrap();
        db.insert("A", tup![1, "sn1", 7]).unwrap();
        db.insert("A", tup![2, "sn1", 5]).unwrap();
        db.insert("N", tup![1, "cn1", false]).unwrap();
        db.insert("N", tup![2, "cn2", true]).unwrap();
        db
    }

    #[test]
    fn single_atom_body() {
        let db = db();
        let r = parse_rule("H(i) :- A(i, s, l)").unwrap();
        let bp = compile_body(&db, &r.body).unwrap();
        assert_eq!(bp.col("i").unwrap(), 0);
        assert_eq!(bp.col("l").unwrap(), 2);
        assert_eq!(execute(&db, &bp.plan).unwrap().len(), 2);
    }

    #[test]
    fn join_on_shared_variable() {
        let db = db();
        // m1-style: join A and N on id, filter N.c = false
        let r = parse_rule("H(i, n) :- A(i, s, _), N(i, n, false)").unwrap();
        let bp = compile_body(&db, &r.body).unwrap();
        let rel = execute(&db, &bp.plan).unwrap();
        assert_eq!(rel.len(), 1);
        let row = &rel.rows[0];
        assert_eq!(row.get(bp.col("i").unwrap()), &proql_common::Value::Int(1));
        assert_eq!(
            row.get(bp.col("n").unwrap()),
            &proql_common::Value::str("cn1")
        );
    }

    #[test]
    fn constant_filters_apply() {
        let db = db();
        let r = parse_rule("H(i) :- A(i, 'sn1', 5)").unwrap();
        let bp = compile_body(&db, &r.body).unwrap();
        let rel = execute(&db, &bp.plan).unwrap();
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.rows[0].get(0), &proql_common::Value::Int(2));
    }

    #[test]
    fn repeated_var_within_atom() {
        let mut db = db();
        db.insert("A", tup![3, "3", 3]).unwrap();
        // id = len (both var x)
        let r = parse_rule("H(x) :- A(x, s, x)").unwrap();
        let bp = compile_body(&db, &r.body).unwrap();
        let rel = execute(&db, &bp.plan).unwrap();
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.rows[0].get(0), &proql_common::Value::Int(3));
    }

    #[test]
    fn cross_product_when_no_shared_vars() {
        let db = db();
        let r = parse_rule("H(a, b) :- A(a, _, _), N(b, _, _)").unwrap();
        let bp = compile_body(&db, &r.body).unwrap();
        assert_eq!(execute(&db, &bp.plan).unwrap().len(), 4);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let db = db();
        let r = parse_rule("H(i) :- A(i, s)").unwrap();
        assert!(compile_body(&db, &r.body).is_err());
    }

    #[test]
    fn missing_relation_rejected() {
        let db = db();
        let r = parse_rule("H(i) :- Zzz(i)").unwrap();
        assert!(compile_body(&db, &r.body).is_err());
    }

    #[test]
    fn relation_override_redirects_scan() {
        let mut db = db();
        db.create_table(
            Schema::build(
                "A_delta",
                &[
                    ("id", ValueType::Int),
                    ("sn", ValueType::Str),
                    ("len", ValueType::Int),
                ],
                &[0],
            )
            .unwrap(),
        )
        .unwrap();
        db.insert("A_delta", tup![9, "x", 1]).unwrap();
        let r = parse_rule("H(i) :- A(i, s, l)").unwrap();
        let mut opts = CompileOptions::default();
        opts.relation_overrides.insert(0, "A_delta".into());
        let bp = compile_body_with(&db, &r.body, &opts).unwrap();
        let rel = execute(&db, &bp.plan).unwrap();
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.rows[0].get(0), &proql_common::Value::Int(9));
    }

    #[test]
    fn three_way_join_chains() {
        let mut db = db();
        db.create_table(
            Schema::build(
                "E",
                &[("src", ValueType::Int), ("dst", ValueType::Int)],
                &[0, 1],
            )
            .unwrap(),
        )
        .unwrap();
        db.insert("E", tup![1, 2]).unwrap();
        db.insert("E", tup![2, 3]).unwrap();
        db.insert("E", tup![3, 4]).unwrap();
        let r = parse_rule("H(a, d) :- E(a, b), E(b, c), E(c, d)").unwrap();
        let bp = compile_body(&db, &r.body).unwrap();
        let rel = execute(&db, &bp.plan).unwrap();
        assert_eq!(rel.len(), 1);
        assert_eq!(
            rel.rows[0].get(bp.col("a").unwrap()),
            &proql_common::Value::Int(1)
        );
        assert_eq!(
            rel.rows[0].get(bp.col("d").unwrap()),
            &proql_common::Value::Int(4)
        );
    }
}
