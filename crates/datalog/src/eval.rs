//! Semi-naive bottom-up evaluation.
//!
//! This drives the paper's *data exchange* step (§2): materializing every
//! peer's public relations by running the schema mappings to fixpoint. A
//! [`FiringHook`] observes every rule firing with its full variable
//! bindings; `proql-provgraph` uses it to populate the provenance relations
//! (one row per derivation, §4.1).
//!
//! The engine uses delta-driven evaluation: each round joins one body atom
//! against the tuples newly derived in the previous round and the remaining
//! atoms against the full relations. This can enumerate a firing more than
//! once (set semantics make that harmless), so **hooks must be idempotent**
//! — the provenance hook is, because provenance relations are keyed by
//! their full column set.

use crate::ast::{Program, Rule, Term};
use crate::compile::{compile_body_with, CompileOptions};
use proql_common::{Error, Result, Tuple, Value};
use proql_storage::{execute, Database};
use std::collections::HashMap;

/// Variable bindings of one rule firing.
pub struct Bindings<'a> {
    row: &'a Tuple,
    var_cols: &'a HashMap<String, usize>,
}

impl<'a> Bindings<'a> {
    /// Value bound to `var`.
    pub fn get(&self, var: &str) -> Result<&'a Value> {
        let col = self
            .var_cols
            .get(var)
            .ok_or_else(|| Error::Datalog(format!("unbound variable {var}")))?;
        Ok(self.row.get(*col))
    }

    /// Resolve a term to a value under these bindings: constants pass
    /// through, variables look up, Skolem terms build a labeled null.
    pub fn resolve(&self, term: &Term) -> Result<Value> {
        match term {
            Term::Const(v) => Ok(v.clone()),
            Term::Var(v) => self.get(v).cloned(),
            Term::Skolem(name, args) => {
                let mut s = format!("⟨{name}(");
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&self.resolve(a)?.to_string());
                }
                s.push_str(")⟩");
                Ok(Value::str(s))
            }
        }
    }

    /// Build the tuple an atom produces under these bindings.
    pub fn instantiate(&self, atom: &crate::ast::Atom) -> Result<Tuple> {
        let mut vals = Vec::with_capacity(atom.arity());
        for t in &atom.terms {
            vals.push(self.resolve(t)?);
        }
        Ok(Tuple::new(vals))
    }
}

/// Observer of rule firings during evaluation.
///
/// The hook receives mutable access to the database so it can record
/// side tables (this is how provenance relations are populated); it must
/// not modify the relations the program reads or writes.
pub trait FiringHook {
    /// Called once (or more — see module docs) per rule firing.
    /// `rule_index` is the rule's position in the program.
    fn on_firing(
        &mut self,
        db: &mut Database,
        rule_index: usize,
        rule: &Rule,
        bindings: &Bindings<'_>,
    ) -> Result<()>;
}

/// Hook that does nothing.
pub struct NoopHook;

impl FiringHook for NoopHook {
    fn on_firing(&mut self, _: &mut Database, _: usize, _: &Rule, _: &Bindings<'_>) -> Result<()> {
        Ok(())
    }
}

impl<F> FiringHook for F
where
    F: FnMut(&mut Database, usize, &Rule, &Bindings<'_>) -> Result<()>,
{
    fn on_firing(&mut self, db: &mut Database, i: usize, r: &Rule, b: &Bindings<'_>) -> Result<()> {
        self(db, i, r, b)
    }
}

/// Evaluation statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Fixpoint rounds executed.
    pub rounds: usize,
    /// Hook invocations (an upper bound on distinct firings).
    pub firings: usize,
    /// New tuples inserted into head relations.
    pub inserted: usize,
}

/// Hard cap on fixpoint rounds: Skolem functions can make the chase diverge
/// (standard data-exchange caveat); this converts divergence into an error.
const MAX_ROUNDS: usize = 10_000;

const DELTA_PREFIX: &str = "__delta__";

/// Run `program` to fixpoint over `db`.
///
/// Every relation named in a rule head must already exist as a base table;
/// body relations may be tables or views (views are treated as static —
/// their contents participate only in the bootstrap round).
pub fn run_program(
    db: &mut Database,
    program: &Program,
    hook: &mut dyn FiringHook,
) -> Result<EvalStats> {
    run_program_from(db, program, hook, None)
}

/// Run `program` **incrementally**: instead of bootstrapping the
/// semi-naive deltas with the full contents of every body relation, seed
/// them with only the given rows (keyed by relation; rows for relations no
/// rule reads are ignored).
///
/// Sound exactly when `db` is already at the program's fixpoint modulo the
/// seed rows: monotone rules mean any new firing must involve at least one
/// seeded (or subsequently derived) fact, which is precisely what the
/// delta joins enumerate. The cost of re-exchanging a point write then
/// scales with what the write derives, not with the database.
///
/// **Seeds model additions only.** If rows were *removed* from a relation
/// some rule body reads, the fixpoint precondition is violated in a way no
/// seeded run can repair: a derived tuple whose only remaining support
/// involved a removed row silently survives (derived-tuple
/// under-counting — set semantics keep no support counts to decrement).
/// Use [`run_program_seeded_delta`] to make that case an explicit error
/// instead of a silent divergence.
pub fn run_program_seeded(
    db: &mut Database,
    program: &Program,
    hook: &mut dyn FiringHook,
    seeds: HashMap<String, Vec<Tuple>>,
) -> Result<EvalStats> {
    run_program_from(db, program, hook, Some(seeds))
}

/// The base-row changes accumulated since the last fixpoint: what a
/// retraction-aware incremental run ([`run_program_seeded_delta`]) is
/// seeded with.
#[derive(Debug, Clone, Default)]
pub struct SeedDelta {
    /// Rows inserted since the fixpoint, keyed by relation.
    pub added: HashMap<String, Vec<Tuple>>,
    /// Rows removed since the fixpoint, keyed by relation.
    pub removed: HashMap<String, Vec<Tuple>>,
}

impl SeedDelta {
    /// A delta of additions only.
    pub fn additions(added: HashMap<String, Vec<Tuple>>) -> SeedDelta {
        SeedDelta {
            added,
            ..SeedDelta::default()
        }
    }
}

/// [`run_program_seeded`] with retractions handled **soundly**: removed
/// rows in relations no rule body reads cannot retract any derived tuple,
/// so the run proceeds seeded with the additions; removed rows that *do*
/// feed a rule body would leave derived tuples under-counted (their
/// support is gone but set semantics cannot see it), so the call fails
/// with an explicit error and the caller must fall back to a full
/// re-evaluation — deleting stale derived state first. The system-level
/// deletion path (`proql-cdss`) avoids this entirely by garbage-collecting
/// underivable tuples through the provenance graph before re-asserting the
/// fixpoint.
pub fn run_program_seeded_delta(
    db: &mut Database,
    program: &Program,
    hook: &mut dyn FiringHook,
    delta: SeedDelta,
) -> Result<EvalStats> {
    let retracts_body_input = program.rules.iter().flat_map(|r| &r.body).any(|a| {
        delta
            .removed
            .get(&a.relation)
            .is_some_and(|rows| !rows.is_empty())
    });
    if retracts_body_input {
        return Err(Error::Datalog(
            "retraction-seeded evaluation: removed rows feed rule bodies, so derived \
             tuples may be under-counted — fall back to a full re-evaluation"
                .into(),
        ));
    }
    run_program_seeded(db, program, hook, delta.added)
}

fn run_program_from(
    db: &mut Database,
    program: &Program,
    hook: &mut dyn FiringHook,
    seeds: Option<HashMap<String, Vec<Tuple>>>,
) -> Result<EvalStats> {
    program.check_safety()?;
    for rule in &program.rules {
        for h in &rule.heads {
            if !db.has_table(&h.relation) {
                return Err(Error::Datalog(format!(
                    "head relation {} is not a base table",
                    h.relation
                )));
            }
        }
        for b in &rule.body {
            if !db.has_relation(&b.relation) {
                return Err(Error::NotFound(format!("body relation {}", b.relation)));
            }
        }
    }

    // Relations appearing in bodies, with delta tables for each.
    let mut body_rels: Vec<String> = Vec::new();
    for rule in &program.rules {
        for b in &rule.body {
            if !body_rels.contains(&b.relation) {
                body_rels.push(b.relation.clone());
            }
        }
    }
    for rel in &body_rels {
        let schema = db.schema_of(rel)?.clone();
        let delta_schema = schema.renamed(&format!("{DELTA_PREFIX}{rel}"));
        db.create_table(delta_schema)?;
    }

    // Bootstrap deltas: everything currently in each body relation, or —
    // when continuing from a known fixpoint — just the seed rows.
    let mut delta: HashMap<String, Vec<Tuple>> = HashMap::new();
    match seeds {
        Some(mut seeds) => {
            for rel in &body_rels {
                delta.insert(rel.clone(), seeds.remove(rel).unwrap_or_default());
            }
        }
        None => {
            for rel in &body_rels {
                let rows = if db.has_table(rel) {
                    db.table(rel)?.scan()
                } else {
                    execute(db, &proql_storage::Plan::scan(rel.clone()))?.rows
                };
                delta.insert(rel.clone(), rows);
            }
        }
    }

    let mut stats = EvalStats::default();
    let result = run_loop(db, program, hook, &body_rels, &mut delta, &mut stats);

    // Always drop scratch tables, even on error.
    for rel in &body_rels {
        let _ = db.drop_relation(&format!("{DELTA_PREFIX}{rel}"));
    }
    result.map(|()| stats)
}

fn run_loop(
    db: &mut Database,
    program: &Program,
    hook: &mut dyn FiringHook,
    body_rels: &[String],
    delta: &mut HashMap<String, Vec<Tuple>>,
    stats: &mut EvalStats,
) -> Result<()> {
    loop {
        if delta.values().all(Vec::is_empty) {
            return Ok(());
        }
        stats.rounds += 1;
        if stats.rounds > MAX_ROUNDS {
            return Err(Error::Datalog(format!(
                "evaluation did not reach fixpoint within {MAX_ROUNDS} rounds \
                 (diverging Skolem chase?)"
            )));
        }

        // Load deltas into scratch tables.
        for rel in body_rels {
            let name = format!("{DELTA_PREFIX}{rel}");
            let t = db.table_mut(&name)?;
            t.truncate();
            for row in delta.get(rel).into_iter().flatten() {
                t.insert(row.clone())?;
            }
        }

        let mut next_delta: HashMap<String, Vec<Tuple>> = HashMap::new();
        for (rule_index, rule) in program.rules.iter().enumerate() {
            for (j, atom) in rule.body.iter().enumerate() {
                if delta.get(&atom.relation).is_none_or(Vec::is_empty) {
                    continue;
                }
                let mut opts = CompileOptions::default();
                opts.relation_overrides
                    .insert(j, format!("{DELTA_PREFIX}{}", atom.relation));
                let bp = compile_body_with(db, &rule.body, &opts)?;
                let rel = execute(db, &bp.plan)?;
                // Collect head insertions first (cannot mutate db while
                // borrowing query results — rows are owned, so this is just
                // a loop).
                for row in &rel.rows {
                    let bindings = Bindings {
                        row,
                        var_cols: &bp.var_cols,
                    };
                    hook.on_firing(db, rule_index, rule, &bindings)?;
                    stats.firings += 1;
                    for h in &rule.heads {
                        let tuple = bindings.instantiate(h)?;
                        if db.table_mut(&h.relation)?.insert(tuple.clone())? {
                            stats.inserted += 1;
                            next_delta
                                .entry(h.relation.clone())
                                .or_default()
                                .push(tuple);
                        }
                    }
                }
            }
        }
        *delta = next_delta;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;
    use proql_common::{tup, Schema, ValueType};

    fn edge_db() -> Database {
        let mut db = Database::new();
        for name in ["E", "Path"] {
            db.create_table(
                Schema::build(
                    name,
                    &[("src", ValueType::Int), ("dst", ValueType::Int)],
                    &[0, 1],
                )
                .unwrap(),
            )
            .unwrap();
        }
        db.insert("E", tup![1, 2]).unwrap();
        db.insert("E", tup![2, 3]).unwrap();
        db.insert("E", tup![3, 4]).unwrap();
        db
    }

    #[test]
    fn transitive_closure() {
        let mut db = edge_db();
        let program = parse_program(
            "Path(x, y) :- E(x, y)
             Path(x, z) :- Path(x, y), E(y, z)",
        )
        .unwrap();
        let stats = run_program(&mut db, &program, &mut NoopHook).unwrap();
        let path = db.table("Path").unwrap();
        assert_eq!(path.len(), 6); // 1-2,2-3,3-4,1-3,2-4,1-4
        assert!(path.contains(&tup![1, 4]));
        assert!(stats.rounds >= 3);
        assert_eq!(stats.inserted, 6);
    }

    #[test]
    fn cyclic_edges_terminate() {
        let mut db = edge_db();
        db.insert("E", tup![4, 1]).unwrap();
        let program = parse_program(
            "Path(x, y) :- E(x, y)
             Path(x, z) :- Path(x, y), E(y, z)",
        )
        .unwrap();
        run_program(&mut db, &program, &mut NoopHook).unwrap();
        assert_eq!(db.table("Path").unwrap().len(), 16); // complete on {1..4}
    }

    #[test]
    fn hook_sees_bindings() {
        let mut db = edge_db();
        let program = parse_program("Path(x, y) :- E(x, y)").unwrap();
        let mut seen: Vec<(i64, i64)> = Vec::new();
        {
            let mut hook = |_: &mut Database, _: usize, _: &Rule, b: &Bindings<'_>| {
                seen.push((
                    b.get("x").unwrap().as_int().unwrap(),
                    b.get("y").unwrap().as_int().unwrap(),
                ));
                Ok(())
            };
            run_program(&mut db, &program, &mut hook).unwrap();
        }
        seen.sort();
        assert_eq!(seen, vec![(1, 2), (2, 3), (3, 4)]);
    }

    #[test]
    fn multi_head_rules_insert_both() {
        let mut db = edge_db();
        db.create_table(Schema::build("L", &[("v", ValueType::Int)], &[0]).unwrap())
            .unwrap();
        db.create_table(Schema::build("R", &[("v", ValueType::Int)], &[0]).unwrap())
            .unwrap();
        let program = parse_program("L(x), R(y) :- E(x, y)").unwrap();
        run_program(&mut db, &program, &mut NoopHook).unwrap();
        assert_eq!(db.table("L").unwrap().len(), 3);
        assert_eq!(db.table("R").unwrap().len(), 3);
    }

    #[test]
    fn skolems_produce_labeled_nulls() {
        let mut db = edge_db();
        db.create_table(
            Schema::build(
                "S",
                &[("src", ValueType::Int), ("lbl", ValueType::Str)],
                &[0, 1],
            )
            .unwrap(),
        )
        .unwrap();
        let program = parse_program("S(x, !f(x)) :- E(x, y)").unwrap();
        run_program(&mut db, &program, &mut NoopHook).unwrap();
        let s = db.table("S").unwrap();
        assert_eq!(s.len(), 3);
        assert!(s.contains(&tup![1, "⟨f(1)⟩"]));
    }

    #[test]
    fn constants_in_heads() {
        let mut db = edge_db();
        db.create_table(
            Schema::build(
                "T",
                &[("v", ValueType::Int), ("flag", ValueType::Bool)],
                &[0],
            )
            .unwrap(),
        )
        .unwrap();
        let program = parse_program("T(x, true) :- E(x, _)").unwrap();
        run_program(&mut db, &program, &mut NoopHook).unwrap();
        assert!(db.table("T").unwrap().contains(&tup![1, true]));
    }

    #[test]
    fn missing_head_table_is_error() {
        let mut db = edge_db();
        let program = parse_program("Nope(x) :- E(x, _)").unwrap();
        assert!(run_program(&mut db, &program, &mut NoopHook).is_err());
    }

    #[test]
    fn missing_body_relation_is_error() {
        let mut db = edge_db();
        let program = parse_program("Path(x, x) :- Zzz(x)").unwrap();
        assert!(run_program(&mut db, &program, &mut NoopHook).is_err());
    }

    #[test]
    fn scratch_tables_are_cleaned_up() {
        let mut db = edge_db();
        let program = parse_program("Path(x, y) :- E(x, y)").unwrap();
        run_program(&mut db, &program, &mut NoopHook).unwrap();
        assert!(db.table_names().all(|n| !n.starts_with(DELTA_PREFIX)));
    }

    #[test]
    fn views_participate_in_bootstrap() {
        let mut db = edge_db();
        db.create_view(
            "Evw",
            proql_storage::Plan::scan("E"),
            Schema::build(
                "Evw",
                &[("src", ValueType::Int), ("dst", ValueType::Int)],
                &[0, 1],
            )
            .unwrap(),
        )
        .unwrap();
        let program = parse_program("Path(x, y) :- Evw(x, y)").unwrap();
        run_program(&mut db, &program, &mut NoopHook).unwrap();
        assert_eq!(db.table("Path").unwrap().len(), 3);
    }

    #[test]
    fn seeded_run_continues_from_fixpoint() {
        let mut db = edge_db();
        let program = parse_program(
            "Path(x, y) :- E(x, y)
             Path(x, z) :- Path(x, y), E(y, z)",
        )
        .unwrap();
        run_program(&mut db, &program, &mut NoopHook).unwrap();
        // One new edge, seeded incrementally from the fixpoint.
        db.insert("E", tup![4, 5]).unwrap();
        let seeds = HashMap::from([("E".to_string(), vec![tup![4, 5]])]);
        let stats = run_program_seeded(&mut db, &program, &mut NoopHook, seeds).unwrap();
        // New paths: 4-5, 3-5, 2-5, 1-5 — and nothing rederived.
        assert_eq!(stats.inserted, 4);
        assert!(db.table("Path").unwrap().contains(&tup![1, 5]));
        // A full run afterwards finds nothing left to derive.
        let stats = run_program(&mut db, &program, &mut NoopHook).unwrap();
        assert_eq!(stats.inserted, 0);
        // Seeds for relations no rule reads are ignored.
        let seeds = HashMap::from([("Nope".to_string(), vec![tup![1, 1]])]);
        let stats = run_program_seeded(&mut db, &program, &mut NoopHook, seeds).unwrap();
        assert_eq!(stats.inserted, 0);
    }

    #[test]
    fn retraction_seeds_fall_back_explicitly() {
        let mut db = edge_db();
        let program = parse_program(
            "Path(x, y) :- E(x, y)
             Path(x, z) :- Path(x, y), E(y, z)",
        )
        .unwrap();
        run_program(&mut db, &program, &mut NoopHook).unwrap();

        // Demonstrate the under-counting a naive delete-seeded run leaves
        // behind: remove E(2,3) and run seeded with no adds — Path(1,3)
        // lost its only support, but the seeded run cannot retract it.
        db.table_mut("E")
            .unwrap()
            .delete_by_key(&tup![2, 3])
            .unwrap();
        let stats = run_program_seeded(&mut db, &program, &mut NoopHook, HashMap::new()).unwrap();
        assert_eq!(stats.inserted, 0);
        assert!(
            db.table("Path").unwrap().contains(&tup![1, 3]),
            "the stale derived tuple survives — this is the hazard"
        );

        // The retraction-aware entry point refuses that silent divergence.
        let delta = SeedDelta {
            added: HashMap::new(),
            removed: HashMap::from([("E".to_string(), vec![tup![2, 3]])]),
        };
        let err = run_program_seeded_delta(&mut db, &program, &mut NoopHook, delta);
        assert!(err.is_err(), "body-feeding retractions must be rejected");

        // Correct fallback: clear derived state and re-evaluate fully.
        db.table_mut("Path").unwrap().truncate();
        run_program(&mut db, &program, &mut NoopHook).unwrap();
        let path = db.table("Path").unwrap();
        assert!(!path.contains(&tup![1, 3]));
        assert!(path.contains(&tup![1, 2]));
        assert!(path.contains(&tup![3, 4]));

        // Retractions that feed no rule body are harmless: the run
        // proceeds seeded with the additions.
        db.insert("E", tup![4, 5]).unwrap();
        let delta = SeedDelta {
            added: HashMap::from([("E".to_string(), vec![tup![4, 5]])]),
            removed: HashMap::from([("Unread".to_string(), vec![tup![0, 0]])]),
        };
        let stats = run_program_seeded_delta(&mut db, &program, &mut NoopHook, delta).unwrap();
        assert!(stats.inserted > 0);
        assert!(db.table("Path").unwrap().contains(&tup![4, 5]));
    }

    #[test]
    fn evaluation_is_idempotent() {
        let mut db = edge_db();
        let program = parse_program(
            "Path(x, y) :- E(x, y)
             Path(x, z) :- Path(x, y), E(y, z)",
        )
        .unwrap();
        run_program(&mut db, &program, &mut NoopHook).unwrap();
        let before = db.table("Path").unwrap().len();
        let stats = run_program(&mut db, &program, &mut NoopHook).unwrap();
        assert_eq!(db.table("Path").unwrap().len(), before);
        assert_eq!(stats.inserted, 0);
    }
}
