//! Text syntax for rules, matching the paper's notation.
//!
//! ```text
//! m1: C(i, n) :- A(i, s, _), N(i, n, false)
//! m2: N(i, n, true) :- A(i, n, _)
//! L1: A(i, s, l) :- Al(i, s, l)
//! sk: R(i, !f(i)) :- S(i)          -- Skolem term in the head
//! ```
//!
//! Constants: integers (`42`), floats (`3.5`), single-quoted strings
//! (`'cn1'`), `true`/`false`, `null`. Identifiers starting with a lowercase
//! letter are variables; `_` is a don't-care and is normalized to a fresh
//! variable. Relation names are whatever appears before `(`.

use crate::ast::{Atom, Program, Rule, Term};
use proql_common::{Error, Result, Value};

/// Parse a whole program: one rule per non-empty line; `--` and `%` start
/// line comments.
pub fn parse_program(src: &str) -> Result<Program> {
    let mut rules = Vec::new();
    for (lineno, line) in src.lines().enumerate() {
        let line = strip_comment(line).trim();
        if line.is_empty() {
            continue;
        }
        let rule = parse_rule(line)
            .map_err(|e| Error::Parse(format!("line {}: {}", lineno + 1, e.message())))?;
        rules.push(rule);
    }
    Ok(Program::new(rules))
}

fn strip_comment(line: &str) -> &str {
    let cut = line.find("--").into_iter().chain(line.find('%')).min();
    match cut {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Parse a single rule.
pub fn parse_rule(src: &str) -> Result<Rule> {
    let mut p = Parser::new(src);
    let rule = p.rule()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("trailing input after rule"));
    }
    rule.check_safety()?;
    Ok(rule)
}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
    fresh: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            src,
            pos: 0,
            fresh: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::Parse(format!("{msg} at byte {} in rule `{}`", self.pos, self.src))
    }

    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.src[self.pos..].starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<()> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(&format!("expected `{s}`")))
        }
    }

    fn ident(&mut self) -> Result<String> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_') {
            self.bump();
        }
        if self.pos == start {
            return Err(self.err("expected identifier"));
        }
        Ok(self.src[start..self.pos].to_string())
    }

    fn rule(&mut self) -> Result<Rule> {
        self.skip_ws();
        // Optional `name:` prefix — look ahead for ident followed by `:`
        // not part of `:-`.
        let mut name = None;
        let save = self.pos;
        if let Ok(id) = self.ident() {
            self.skip_ws();
            if self.peek() == Some(':') && !self.src[self.pos..].starts_with(":-") {
                self.bump();
                name = Some(id);
            } else {
                self.pos = save;
            }
        } else {
            self.pos = save;
        }

        let mut heads = vec![self.atom()?];
        loop {
            self.skip_ws();
            if self.eat(":-") {
                break;
            }
            if self.eat(",") {
                heads.push(self.atom()?);
            } else {
                return Err(self.err("expected `,` or `:-` after head atom"));
            }
        }
        let mut body = vec![self.atom()?];
        loop {
            self.skip_ws();
            if self.eat(",") {
                body.push(self.atom()?);
            } else {
                break;
            }
        }
        Ok(Rule::multi(name, heads, body))
    }

    fn atom(&mut self) -> Result<Atom> {
        let rel = self.ident()?;
        self.skip_ws();
        self.expect("(")?;
        let mut terms = Vec::new();
        self.skip_ws();
        if !self.eat(")") {
            loop {
                terms.push(self.term()?);
                self.skip_ws();
                if self.eat(")") {
                    break;
                }
                self.expect(",")?;
            }
        }
        Ok(Atom::new(rel, terms))
    }

    fn term(&mut self) -> Result<Term> {
        self.skip_ws();
        match self.peek() {
            Some('\'') => {
                self.bump();
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c == '\'' {
                        break;
                    }
                    self.bump();
                }
                let s = self.src[start..self.pos].to_string();
                self.expect("'")?;
                Ok(Term::Const(Value::str(s)))
            }
            Some('!') => {
                self.bump();
                let name = self.ident()?;
                self.skip_ws();
                self.expect("(")?;
                let mut args = Vec::new();
                self.skip_ws();
                if !self.eat(")") {
                    loop {
                        args.push(self.term()?);
                        self.skip_ws();
                        if self.eat(")") {
                            break;
                        }
                        self.expect(",")?;
                    }
                }
                Ok(Term::Skolem(name, args))
            }
            Some(c) if c.is_ascii_digit() || c == '-' => {
                let start = self.pos;
                self.bump();
                let mut is_float = false;
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        self.bump();
                    } else if c == '.' && !is_float {
                        is_float = true;
                        self.bump();
                    } else {
                        break;
                    }
                }
                let text = &self.src[start..self.pos];
                if is_float {
                    text.parse::<f64>()
                        .map(|f| Term::Const(Value::Float(f)))
                        .map_err(|_| self.err("bad float literal"))
                } else {
                    text.parse::<i64>()
                        .map(|i| Term::Const(Value::Int(i)))
                        .map_err(|_| self.err("bad int literal"))
                }
            }
            Some(c) if c.is_alphanumeric() || c == '_' => {
                let id = self.ident()?;
                match id.as_str() {
                    "true" => Ok(Term::Const(Value::Bool(true))),
                    "false" => Ok(Term::Const(Value::Bool(false))),
                    "null" => Ok(Term::Const(Value::Null)),
                    "_" => {
                        let v = format!("_dc{}", self.fresh);
                        self.fresh += 1;
                        Ok(Term::Var(v))
                    }
                    _ => Ok(Term::Var(id)),
                }
            }
            _ => Err(self.err("expected term")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_example_2_1_mappings() {
        let src = "
            L1: A(i, s, l) :- Al(i, s, l)
            m1: C(i, n) :- A(i, s, _), N(i, n, false)
            m2: N(i, n, true) :- A(i, n, _)
            m3: N(i, n, false) :- C(i, n)
            m4: O(n, h, true) :- A(i, n, h)
            m5: O(n, h, true) :- A(i, _, h), C(i, n)
        ";
        let p = parse_program(src).unwrap();
        assert_eq!(p.rules.len(), 6);
        let m1 = p.rule_named("m1").unwrap();
        assert_eq!(m1.heads[0].relation, "C");
        assert_eq!(m1.body.len(), 2);
        // don't-care became a fresh variable
        assert!(m1.body[0].terms[2].as_var().unwrap().starts_with("_dc"));
        // the `false` constant survived
        assert_eq!(m1.body[1].terms[2], Term::Const(Value::Bool(false)));
    }

    #[test]
    fn parses_constants_of_all_types() {
        let r = parse_rule("R(x) :- S(x, 42, -7, 3.5, 'abc', true, null)").unwrap();
        let terms = &r.body[0].terms;
        assert_eq!(terms[1], Term::Const(Value::Int(42)));
        assert_eq!(terms[2], Term::Const(Value::Int(-7)));
        assert_eq!(terms[3], Term::Const(Value::Float(3.5)));
        assert_eq!(terms[4], Term::Const(Value::str("abc")));
        assert_eq!(terms[5], Term::Const(Value::Bool(true)));
        assert_eq!(terms[6], Term::Const(Value::Null));
    }

    #[test]
    fn parses_skolem_heads() {
        let r = parse_rule("m: R(i, !f(i, 1)) :- S(i)").unwrap();
        match &r.heads[0].terms[1] {
            Term::Skolem(name, args) => {
                assert_eq!(name, "f");
                assert_eq!(args.len(), 2);
            }
            other => panic!("expected skolem, got {other:?}"),
        }
    }

    #[test]
    fn parses_multi_head_rules() {
        let r = parse_rule("g: R(x), S(x, y) :- T(x, y)").unwrap();
        assert_eq!(r.heads.len(), 2);
        assert_eq!(r.name.as_deref(), Some("g"));
    }

    #[test]
    fn unnamed_rules_parse() {
        let r = parse_rule("R(x) :- S(x)").unwrap();
        assert!(r.name.is_none());
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let p = parse_program("-- nothing\n\nR(x) :- S(x) -- tail\n% pct comment\n").unwrap();
        assert_eq!(p.rules.len(), 1);
    }

    #[test]
    fn rejects_unsafe_rule() {
        assert!(parse_rule("R(x, y) :- S(x)").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_rule("R(x :- S(x)").is_err());
        assert!(parse_rule("R(x) :- ").is_err());
        assert!(parse_rule("R(x) :- S(x) extra").is_err());
    }

    #[test]
    fn round_trips_through_display() {
        let src = "m5: O(n, h, true) :- A(i, _dc0, h), C(i, n)";
        let r = parse_rule(src).unwrap();
        assert_eq!(parse_rule(&r.to_string()).unwrap(), r);
    }

    #[test]
    fn distinct_dont_cares_get_distinct_vars() {
        let r = parse_rule("R(x) :- S(x, _, _)").unwrap();
        let t1 = r.body[0].terms[1].as_var().unwrap();
        let t2 = r.body[0].terms[2].as_var().unwrap();
        assert_ne!(t1, t2);
    }
}
