//! The in-memory provenance graph (paper Figure 1).
//!
//! A bipartite graph of **tuple nodes** (rectangles: a tuple of some public
//! relation, identified by relation + key) and **derivation nodes**
//! (ellipses: one firing of a mapping, with edges from its source tuples and
//! to its target tuples). Derivations of local-contribution rules are the
//! `+` ovals: they have no source tuple nodes and mark their target as base
//! data.
//!
//! The graph is decoded from the relational encoding (`P_m` rows) and is
//! what the semiring evaluator walks bottom-up.
//!
//! # Incremental maintenance
//!
//! Adjacency is a **patchable CSR**: a frozen compressed-sparse-row core
//! plus a sparse patch map holding the full neighbor list of every node
//! whose edges changed since the last compaction. Bulk construction
//! ([`ProvGraph::from_system`], [`ProvGraph::project`]) compacts ([`ProvGraph::freeze`])
//! once at the end; [`ProvGraph::apply_delta`] patches the CSR
//! incrementally and triggers compaction only when the patch or the
//! tombstone population grows past a fixed fraction of the graph
//! ([`ProvGraph::maybe_compact`]). Removed nodes are tombstoned (cheap)
//! and physically dropped at compaction; [`ProvGraph::digest`] is a
//! canonical content hash that ignores node numbering and tombstones, so
//! a delta-maintained graph can be checked bit-for-bit against a
//! from-scratch rebuild.

use crate::delta::{DeltaOp, GraphDelta};
use crate::system::ProvenanceSystem;
use proql_common::TupleId;
use proql_common::{DerivationId, Error, Result, Tuple, Value};
use proql_storage::batch::RecordBatch;
use proql_storage::{execute_batch, Plan};
use std::collections::{HashMap, HashSet};

/// Compressed-sparse-row adjacency with a sparse patch overlay.
///
/// `targets[offsets[i]..offsets[i+1]]` are node `i`'s neighbors in the
/// frozen core; nodes in `patched` shadow their frozen row with a full
/// (possibly longer or shorter) neighbor list. New nodes beyond the frozen
/// range live purely in the patch. [`CsrAdj::freeze`] merges the patch
/// back into flat vectors.
#[derive(Debug, Clone, Default)]
struct CsrAdj {
    offsets: Vec<u32>,
    targets: Vec<DerivationId>,
    /// Node → full neighbor list, shadowing the frozen row.
    patched: HashMap<u32, Vec<DerivationId>>,
    /// Total edges held in `patched` (compaction policy input).
    patched_edges: usize,
}

impl CsrAdj {
    fn frozen_nodes(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    fn frozen_row(&self, i: usize) -> &[DerivationId] {
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    fn neighbors(&self, i: usize) -> &[DerivationId] {
        if let Some(row) = self.patched.get(&(i as u32)) {
            return row;
        }
        if i < self.frozen_nodes() {
            self.frozen_row(i)
        } else {
            &[]
        }
    }

    fn degree(&self, i: usize) -> usize {
        self.neighbors(i).len()
    }

    /// Move node `n`'s row into the patch (no-op if already there).
    fn patch_row(&mut self, n: u32) -> &mut Vec<DerivationId> {
        if !self.patched.contains_key(&n) {
            let base: Vec<DerivationId> = if (n as usize) < self.frozen_nodes() {
                self.frozen_row(n as usize).to_vec()
            } else {
                Vec::new()
            };
            self.patched_edges += base.len();
            self.patched.insert(n, base);
        }
        self.patched.get_mut(&n).expect("just inserted")
    }

    fn add_edge(&mut self, n: u32, d: DerivationId) {
        self.patch_row(n).push(d);
        self.patched_edges += 1;
    }

    /// Drop every edge of node `n` pointing at a derivation in `dead`.
    fn remove_edges(&mut self, n: u32, dead: &HashSet<DerivationId>) {
        let row = self.patch_row(n);
        let before = row.len();
        row.retain(|d| !dead.contains(d));
        self.patched_edges -= before - row.len();
    }

    /// Merge the patch into a fresh frozen core covering `n_nodes` nodes.
    fn freeze(&mut self, n_nodes: usize) {
        let mut offsets = Vec::with_capacity(n_nodes + 1);
        let mut targets = Vec::new();
        offsets.push(0u32);
        for i in 0..n_nodes {
            targets.extend_from_slice(self.neighbors(i));
            offsets.push(targets.len() as u32);
        }
        self.offsets = offsets;
        self.targets = targets;
        self.patched.clear();
        self.patched_edges = 0;
    }
}

/// A tuple node.
#[derive(Debug, Clone, PartialEq)]
pub struct TupleNode {
    /// Public relation the tuple belongs to.
    pub relation: String,
    /// Primary-key projection identifying the tuple.
    pub key: Tuple,
    /// Full tuple values when resolvable from the database (used by
    /// `ASSIGNING EACH leaf_node` attribute conditions).
    pub values: Option<Tuple>,
}

/// A derivation node: one row of some provenance relation.
#[derive(Debug, Clone, PartialEq)]
pub struct DerivationNode {
    /// Mapping that produced this derivation.
    pub mapping: String,
    /// The provenance-relation row (variable bindings).
    pub prov_row: Tuple,
    /// Source tuple nodes (joined by the mapping); empty for base (`+`)
    /// derivations.
    pub sources: Vec<TupleId>,
    /// Target tuple nodes.
    pub targets: Vec<TupleId>,
    /// True for local-contribution (`+`) derivations.
    pub is_base: bool,
}

/// The provenance graph.
///
/// Node ids are dense indexes into internal vectors; removed nodes are
/// tombstoned until [`ProvGraph::maybe_compact`] re-packs the graph, so a
/// live id stays valid across delta application. Iteration
/// ([`ProvGraph::tuple_ids`], [`ProvGraph::derivation_ids`]) yields live
/// nodes only; dense side tables should be sized by
/// [`ProvGraph::tuple_id_bound`] / [`ProvGraph::derivation_id_bound`],
/// which cover tombstones too.
#[derive(Debug, Clone, Default)]
pub struct ProvGraph {
    tuples: Vec<TupleNode>,
    tuple_live: Vec<bool>,
    live_tuples: usize,
    tuple_index: HashMap<(String, Tuple), TupleId>,
    derivations: Vec<DerivationNode>,
    deriv_live: Vec<bool>,
    live_derivs: usize,
    deriv_index: HashMap<(String, Tuple), DerivationId>,
    /// Incoming adjacency: tuple → derivations deriving it.
    derived: CsrAdj,
    /// Outgoing adjacency: tuple → derivations consuming it.
    consumed: CsrAdj,
}

impl ProvGraph {
    /// Empty graph.
    pub fn new() -> Self {
        ProvGraph::default()
    }

    /// Number of **live** tuple nodes.
    pub fn tuple_count(&self) -> usize {
        self.live_tuples
    }

    /// Number of **live** derivation nodes.
    pub fn derivation_count(&self) -> usize {
        self.live_derivs
    }

    /// Exclusive upper bound on tuple ids (live + tombstoned). Dense
    /// side tables indexed by [`TupleId`] must use this, not
    /// [`ProvGraph::tuple_count`].
    pub fn tuple_id_bound(&self) -> usize {
        self.tuples.len()
    }

    /// Exclusive upper bound on derivation ids (live + tombstoned).
    pub fn derivation_id_bound(&self) -> usize {
        self.derivations.len()
    }

    /// Intern a tuple node.
    pub fn add_tuple(&mut self, relation: &str, key: Tuple, values: Option<Tuple>) -> TupleId {
        if let Some(&id) = self.tuple_index.get(&(relation.to_string(), key.clone())) {
            if values.is_some() && self.tuples[id.index()].values.is_none() {
                self.tuples[id.index()].values = values;
            }
            return id;
        }
        let id = TupleId(self.tuples.len() as u32);
        self.tuple_index
            .insert((relation.to_string(), key.clone()), id);
        self.tuples.push(TupleNode {
            relation: relation.to_string(),
            key,
            values,
        });
        self.tuple_live.push(true);
        self.live_tuples += 1;
        id
    }

    /// Add a derivation node (idempotent on (mapping, prov_row)).
    pub fn add_derivation(
        &mut self,
        mapping: &str,
        prov_row: Tuple,
        sources: Vec<TupleId>,
        targets: Vec<TupleId>,
        is_base: bool,
    ) -> DerivationId {
        let dkey = (mapping.to_string(), prov_row.clone());
        if let Some(&id) = self.deriv_index.get(&dkey) {
            return id;
        }
        let id = DerivationId(self.derivations.len() as u32);
        self.deriv_index.insert(dkey, id);
        for &s in &sources {
            self.consumed.add_edge(s.0, id);
        }
        for &t in &targets {
            self.derived.add_edge(t.0, id);
        }
        self.derivations.push(DerivationNode {
            mapping: mapping.to_string(),
            prov_row,
            sources,
            targets,
            is_base,
        });
        self.deriv_live.push(true);
        self.live_derivs += 1;
        id
    }

    /// Tuple node accessor.
    pub fn tuple(&self, id: TupleId) -> &TupleNode {
        &self.tuples[id.index()]
    }

    /// Derivation node accessor.
    pub fn derivation(&self, id: DerivationId) -> &DerivationNode {
        &self.derivations[id.index()]
    }

    /// Find a live tuple node by relation and key.
    pub fn find_tuple(&self, relation: &str, key: &Tuple) -> Option<TupleId> {
        self.tuple_index
            .get(&(relation.to_string(), key.clone()))
            .copied()
    }

    /// Find a live derivation node by mapping and provenance row.
    pub fn find_derivation(&self, mapping: &str, prov_row: &Tuple) -> Option<DerivationId> {
        self.deriv_index
            .get(&(mapping.to_string(), prov_row.clone()))
            .copied()
    }

    /// Derivations deriving a tuple (its alternatives — union). Served
    /// from the patchable CSR adjacency.
    pub fn derivations_of(&self, id: TupleId) -> &[DerivationId] {
        self.derived.neighbors(id.index())
    }

    /// Derivations consuming a tuple.
    pub fn consumers_of(&self, id: TupleId) -> &[DerivationId] {
        self.consumed.neighbors(id.index())
    }

    /// All live tuple ids.
    pub fn tuple_ids(&self) -> impl Iterator<Item = TupleId> + '_ {
        self.tuple_live
            .iter()
            .enumerate()
            .filter_map(|(i, &l)| l.then_some(TupleId(i as u32)))
    }

    /// All live derivation ids.
    pub fn derivation_ids(&self) -> impl Iterator<Item = DerivationId> + '_ {
        self.deriv_live
            .iter()
            .enumerate()
            .filter_map(|(i, &l)| l.then_some(DerivationId(i as u32)))
    }

    /// A tuple is a **leaf** when it has no incoming derivations at all, or
    /// only base (`+`) derivations. Leaves are where `ASSIGNING EACH
    /// leaf_node` values plug in.
    pub fn is_leaf(&self, id: TupleId) -> bool {
        self.derivations_of(id)
            .iter()
            .all(|&d| self.derivations[d.index()].is_base)
    }

    /// True iff the tuple is backed by base data (has a `+` derivation).
    pub fn is_base(&self, id: TupleId) -> bool {
        self.derivations_of(id)
            .iter()
            .any(|&d| self.derivations[d.index()].is_base)
    }

    /// Topological order of live tuple nodes (sources before targets
    /// through derivations), or `None` if the graph is cyclic. Derivations
    /// are ordered implicitly: a derivation is ready when all its sources
    /// are.
    pub fn topo_order(&self) -> Option<Vec<TupleId>> {
        // In-degree of each derivation = #sources not yet emitted;
        // in-degree of each tuple = #derivations not yet emitted.
        let mut deriv_pending: Vec<usize> =
            self.derivations.iter().map(|d| d.sources.len()).collect();
        let mut tuple_pending: Vec<usize> = (0..self.tuples.len())
            .map(|i| self.derived.degree(i))
            .collect();
        let mut ready: Vec<TupleId> = Vec::new();
        let mut order = Vec::with_capacity(self.live_tuples);
        for (i, &p) in tuple_pending.iter().enumerate() {
            if p == 0 && self.tuple_live[i] {
                ready.push(TupleId(i as u32));
            }
        }
        // Base derivations have zero sources: fire them immediately.
        let mut deriv_ready: Vec<DerivationId> = deriv_pending
            .iter()
            .enumerate()
            .filter(|&(i, &p)| p == 0 && self.deriv_live[i])
            .map(|(i, _)| DerivationId(i as u32))
            .collect();
        loop {
            // Fire ready derivations: they decrement their targets.
            while let Some(d) = deriv_ready.pop() {
                for &t in &self.derivations[d.index()].targets {
                    tuple_pending[t.index()] -= 1;
                    if tuple_pending[t.index()] == 0 {
                        ready.push(t);
                    }
                }
            }
            match ready.pop() {
                None => break,
                Some(t) => {
                    order.push(t);
                    for &d in self.consumed.neighbors(t.index()) {
                        deriv_pending[d.index()] -= 1;
                        if deriv_pending[d.index()] == 0 {
                            deriv_ready.push(d);
                        }
                    }
                }
            }
        }
        (order.len() == self.live_tuples).then_some(order)
    }

    /// True iff the graph contains a derivation cycle.
    pub fn is_cyclic(&self) -> bool {
        self.topo_order().is_none()
    }

    /// Compact both adjacency directions: merge patch rows into fresh
    /// frozen CSR cores. Bulk constructors call this once at the end;
    /// [`ProvGraph::maybe_compact`] calls it when the patch outgrows its
    /// budget.
    pub fn freeze(&mut self) {
        let n = self.tuples.len();
        self.derived.freeze(n);
        self.consumed.freeze(n);
    }

    /// Apply the compaction policy after delta application:
    ///
    /// * tombstones above ¼ of either node population → rebuild the graph
    ///   densely (drops tombstones, re-numbers ids),
    /// * otherwise, CSR patch rows above ¼ of the frozen edges → freeze
    ///   the adjacency in place (ids stable).
    pub fn maybe_compact(&mut self) {
        let dead_t = self.tuples.len() - self.live_tuples;
        let dead_d = self.derivations.len() - self.live_derivs;
        if dead_t * 4 > self.tuples.len().max(16) || dead_d * 4 > self.derivations.len().max(16) {
            self.rebuild_dense();
            return;
        }
        let patched = self.derived.patched_edges + self.consumed.patched_edges;
        let frozen = self.derived.targets.len() + self.consumed.targets.len();
        if patched * 4 > frozen.max(64) {
            self.freeze();
        }
    }

    /// Re-pack the graph without tombstones (ids are re-assigned).
    fn rebuild_dense(&mut self) {
        let mut g = ProvGraph::new();
        for (i, d) in self.derivations.iter().enumerate() {
            if !self.deriv_live[i] {
                continue;
            }
            let sources = d
                .sources
                .iter()
                .map(|&s| {
                    let t = &self.tuples[s.index()];
                    g.add_tuple(&t.relation, t.key.clone(), t.values.clone())
                })
                .collect();
            let targets = d
                .targets
                .iter()
                .map(|&s| {
                    let t = &self.tuples[s.index()];
                    g.add_tuple(&t.relation, t.key.clone(), t.values.clone())
                })
                .collect();
            g.add_derivation(&d.mapping, d.prov_row.clone(), sources, targets, d.is_base);
        }
        g.freeze();
        *self = g;
    }

    /// Remove the derivation decoded from `(mapping, prov_row)`, if
    /// present: tombstone the node, drop its edges, and tombstone any
    /// tuple node left with no live derivations or consumers (it would
    /// not exist in a from-scratch rebuild either).
    pub fn remove_derivation_row(&mut self, mapping: &str, prov_row: &Tuple) {
        let Some(id) = self.find_derivation(mapping, prov_row) else {
            return;
        };
        self.deriv_index
            .remove(&(mapping.to_string(), prov_row.clone()));
        self.deriv_live[id.index()] = false;
        self.live_derivs -= 1;
        let dead: HashSet<DerivationId> = [id].into_iter().collect();
        let node = &mut self.derivations[id.index()];
        let sources = std::mem::take(&mut node.sources);
        let targets = std::mem::take(&mut node.targets);
        for &s in &sources {
            self.consumed.remove_edges(s.0, &dead);
        }
        for &t in &targets {
            self.derived.remove_edges(t.0, &dead);
        }
        for t in sources.into_iter().chain(targets) {
            let i = t.index();
            if self.tuple_live[i] && self.derived.degree(i) == 0 && self.consumed.degree(i) == 0 {
                self.tuple_live[i] = false;
                self.live_tuples -= 1;
                let node = &self.tuples[i];
                self.tuple_index
                    .remove(&(node.relation.clone(), node.key.clone()));
            }
        }
    }

    /// Patch this graph with one sealed [`GraphDelta`], replayed against
    /// the system state **at the target version** (tuple values and
    /// mapping specs are resolved from `sys`, matching what a
    /// from-scratch rebuild at that version would see). Ops are applied
    /// in the order they were recorded.
    pub fn apply_delta(&mut self, sys: &ProvenanceSystem, delta: &GraphDelta) -> Result<()> {
        for op in &delta.ops {
            match op {
                DeltaOp::AddDerivation { mapping, row } => {
                    let spec = sys
                        .spec_for(mapping)
                        .ok_or_else(|| Error::NotFound(format!("mapping {mapping} in delta")))?;
                    let is_base = sys
                        .rule_for(mapping)
                        .and_then(|r| r.body.first())
                        .map(|a| sys.is_local_relation(&a.relation))
                        .unwrap_or(false);
                    self.add_derivation_from_row(sys, spec, row, is_base)?;
                }
                DeltaOp::RemoveDerivation { mapping, row } => {
                    self.remove_derivation_row(mapping, row);
                }
                DeltaOp::SetValues { relation, key } => {
                    self.refresh_values(sys, relation, key);
                }
            }
        }
        Ok(())
    }

    /// Re-resolve the stored values of the tuple node `(relation, key)`
    /// from the database at its current state. Returns the node's id when
    /// the graph holds such a tuple (callers use it to mark the node dirty
    /// for annotation re-evaluation), `None` when the graph does not
    /// reference that row at all.
    pub fn refresh_values(
        &mut self,
        sys: &ProvenanceSystem,
        relation: &str,
        key: &Tuple,
    ) -> Option<TupleId> {
        let id = self.find_tuple(relation, key)?;
        self.tuples[id.index()].values = sys
            .db
            .table(relation)
            .ok()
            .and_then(|t| t.get_by_key(key))
            .cloned();
        Some(id)
    }

    /// A canonical content digest: a commutative hash over live tuple
    /// nodes (relation, key, values) and live derivation nodes (mapping,
    /// row, base flag, source/target tuple contents in recipe order).
    /// Invariant under node numbering, adjacency layout, tombstones, and
    /// application order — a delta-maintained graph and a from-scratch
    /// rebuild of the same system version digest identically.
    pub fn digest(&self) -> u64 {
        let mut acc: u64 = 0x9e37_79b9_7f4a_7c15;
        for t in self.tuple_ids() {
            let node = self.tuple(t);
            let mut h = Fnv::new();
            h.str(&node.relation);
            h.tuple(&node.key);
            match &node.values {
                Some(v) => {
                    h.u8(1);
                    h.tuple(v);
                }
                None => h.u8(0),
            }
            acc = acc.wrapping_add(h.finish());
        }
        for d in self.derivation_ids() {
            let node = self.derivation(d);
            let mut h = Fnv::new();
            h.str(&node.mapping);
            h.tuple(&node.prov_row);
            h.u8(node.is_base as u8);
            for &s in &node.sources {
                let t = self.tuple(s);
                h.str(&t.relation);
                h.tuple(&t.key);
            }
            h.u8(0xfe);
            for &t in &node.targets {
                let t = self.tuple(t);
                h.str(&t.relation);
                h.tuple(&t.key);
            }
            acc = acc.wrapping_add(h.finish().rotate_left(17));
        }
        acc ^ ((self.live_tuples as u64) << 32 | self.live_derivs as u64)
    }

    /// Decode the full provenance graph of a system from its provenance
    /// relations. Each `P_m` relation is scanned through the columnar
    /// batch executor and decoded column-at-a-time.
    pub fn from_system(sys: &ProvenanceSystem) -> Result<ProvGraph> {
        let mut g = ProvGraph::new();
        for (rule, spec) in sys.program().rules.iter().zip(sys.specs()) {
            let batch = execute_batch(&sys.db, &Plan::scan(spec.prov_rel.clone()))?;
            let is_base = rule
                .body
                .first()
                .map(|a| sys.is_local_relation(&a.relation))
                .unwrap_or(false);
            g.add_derivations_from_batch(sys, spec, &batch, is_base)?;
        }
        g.freeze();
        Ok(g)
    }

    /// Decode a whole batch of provenance rows. Key columns are gathered
    /// once per atom recipe instead of once per row × term.
    pub fn add_derivations_from_batch(
        &mut self,
        sys: &ProvenanceSystem,
        spec: &crate::encode::ProvSpec,
        batch: &RecordBatch,
        is_base: bool,
    ) -> Result<()> {
        use crate::encode::RecipeTerm;
        if batch.is_empty() {
            return Ok(());
        }
        // Resolve every recipe term to a column reference or constant once.
        struct Recipe<'a> {
            relation: &'a str,
            is_source: bool,
            cols: Vec<ResolvedKey<'a>>,
        }
        enum ResolvedKey<'a> {
            Col(&'a proql_storage::batch::Column),
            Const(&'a Value),
        }
        let mut recipes: Vec<Recipe> = Vec::with_capacity(spec.atoms.len());
        for recipe in &spec.atoms {
            if recipe.is_source && is_base {
                // Local-contribution source: not a graph node; the `+`
                // derivation's target carries the base flag.
                continue;
            }
            recipes.push(Recipe {
                relation: &recipe.relation,
                is_source: recipe.is_source,
                cols: recipe
                    .key_recipe
                    .iter()
                    .map(|r| match r {
                        RecipeTerm::Col(c) => ResolvedKey::Col(&batch.columns[*c]),
                        RecipeTerm::Const(v) => ResolvedKey::Const(v),
                    })
                    .collect(),
            });
        }
        for row in 0..batch.len() {
            let mut sources = Vec::new();
            let mut targets = Vec::new();
            for r in &recipes {
                let key = Tuple::new(
                    r.cols
                        .iter()
                        .map(|c| match c {
                            ResolvedKey::Col(col) => col.value(row),
                            ResolvedKey::Const(v) => (*v).clone(),
                        })
                        .collect(),
                );
                let values = sys
                    .db
                    .table(r.relation)
                    .ok()
                    .and_then(|t| t.get_by_key(&key))
                    .cloned();
                let id = self.add_tuple(r.relation, key, values);
                if r.is_source {
                    sources.push(id);
                } else {
                    targets.push(id);
                }
            }
            self.add_derivation(&spec.mapping, batch.row(row), sources, targets, is_base);
        }
        Ok(())
    }

    /// Decode one provenance row into a derivation node (shared by
    /// `from_system`, delta application, and projected-subgraph
    /// construction in `proql`).
    pub fn add_derivation_from_row(
        &mut self,
        sys: &ProvenanceSystem,
        spec: &crate::encode::ProvSpec,
        row: &Tuple,
        is_base: bool,
    ) -> Result<DerivationId> {
        let mut sources = Vec::new();
        let mut targets = Vec::new();
        for recipe in &spec.atoms {
            let key = recipe.key_of(row);
            if recipe.is_source && is_base {
                // Local-contribution source: not a graph node; the `+`
                // derivation's target carries the base flag.
                continue;
            }
            let values = sys
                .db
                .table(&recipe.relation)
                .ok()
                .and_then(|t| t.get_by_key(&key))
                .cloned();
            let id = self.add_tuple(&recipe.relation, key, values);
            if recipe.is_source {
                sources.push(id);
            } else {
                targets.push(id);
            }
        }
        Ok(self.add_derivation(&spec.mapping, row.clone(), sources, targets, is_base))
    }

    /// Project the graph onto a set of derivation ids: the result keeps
    /// those derivations with **all** their source and target tuple nodes
    /// (the paper's requirement that derivation nodes stay "inseparable"
    /// from their endpoints).
    pub fn project(&self, derivs: impl IntoIterator<Item = DerivationId>) -> ProvGraph {
        let mut g = ProvGraph::new();
        for d in derivs {
            let node = &self.derivations[d.index()];
            let sources = node
                .sources
                .iter()
                .map(|&s| {
                    let t = &self.tuples[s.index()];
                    g.add_tuple(&t.relation, t.key.clone(), t.values.clone())
                })
                .collect();
            let targets = node
                .targets
                .iter()
                .map(|&s| {
                    let t = &self.tuples[s.index()];
                    g.add_tuple(&t.relation, t.key.clone(), t.values.clone())
                })
                .collect();
            g.add_derivation(
                &node.mapping,
                node.prov_row.clone(),
                sources,
                targets,
                node.is_base,
            );
        }
        g.freeze();
        g
    }

    /// Render as DOT (GraphViz) for the interactive-browser use case the
    /// paper motivates (§1 "Interactive provenance browsers and viewers").
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut s = String::from("digraph provenance {\n  rankdir=RL;\n");
        for i in self.tuple_ids() {
            let t = self.tuple(i);
            let label = match &t.values {
                Some(v) => format!("{}{}", t.relation, v),
                None => format!("{}{}", t.relation, t.key),
            };
            let style = if self.is_base(i) { ", style=bold" } else { "" };
            let _ = writeln!(s, "  t{} [shape=box, label=\"{label}\"{style}];", i.index());
        }
        for i in self.derivation_ids() {
            let d = self.derivation(i);
            let shape = if d.is_base { "circle" } else { "ellipse" };
            let label = if d.is_base { "+" } else { d.mapping.as_str() };
            let i = i.index();
            let _ = writeln!(s, "  d{i} [shape={shape}, label=\"{label}\"];");
            for src in &d.sources {
                let _ = writeln!(s, "  t{} -> d{i};", src.index());
            }
            for tgt in &d.targets {
                let _ = writeln!(s, "  d{i} -> t{};", tgt.index());
            }
        }
        s.push_str("}\n");
        s
    }
}

/// FNV-1a with tagged, length-delimited encoding of values — the stable
/// hasher behind [`ProvGraph::digest`] (std's `DefaultHasher` makes no
/// cross-version stability promise).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn u8(&mut self, b: u8) {
        self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.u8(b);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn value(&mut self, v: &Value) {
        match v {
            Value::Int(i) => {
                self.u8(1);
                self.u64(*i as u64);
            }
            Value::Float(f) => {
                self.u8(2);
                self.u64(f.to_bits());
            }
            Value::Str(s) => {
                self.u8(3);
                self.str(s);
            }
            Value::Bool(b) => {
                self.u8(4);
                self.u8(*b as u8);
            }
            Value::Null => self.u8(5),
        }
    }

    fn tuple(&mut self, t: &Tuple) {
        self.u64(t.arity() as u64);
        for v in t.iter() {
            self.value(v);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::example_2_1;
    use proql_common::tup;

    #[test]
    fn figure_1_graph_shape() {
        let sys = example_2_1().unwrap();
        let g = ProvGraph::from_system(&sys).unwrap();
        // Base tuples are flagged.
        let a1 = g.find_tuple("A", &tup![1]).unwrap();
        assert!(g.is_base(a1));
        assert!(g.is_leaf(a1));
        // O(cn2, 5) is derived via m5 from A(2) and C(2, cn2).
        let ocn2 = g.find_tuple("O", &tup!["cn2"]).unwrap();
        let derivs = g.derivations_of(ocn2);
        assert!(!derivs.is_empty());
        let via_m5 = derivs
            .iter()
            .map(|&d| g.derivation(d))
            .find(|d| d.mapping == "m5")
            .expect("O(cn2) must have an m5 derivation");
        assert_eq!(via_m5.sources.len(), 2);
        let src_rels: Vec<&str> = via_m5
            .sources
            .iter()
            .map(|&s| g.tuple(s).relation.as_str())
            .collect();
        assert!(src_rels.contains(&"A") && src_rels.contains(&"C"));
    }

    #[test]
    fn full_example_graph_is_cyclic() {
        // C(2,cn2) -> m3 -> N(2,cn2,false) -> m1 -> C(2,cn2).
        let sys = example_2_1().unwrap();
        let g = ProvGraph::from_system(&sys).unwrap();
        assert!(g.is_cyclic());
        assert!(g.topo_order().is_none());
    }

    #[test]
    fn acyclic_projection_topo_orders() {
        let sys = example_2_1().unwrap();
        let g = ProvGraph::from_system(&sys).unwrap();
        // Project onto only the m5 and base derivations: acyclic.
        let derivs: Vec<_> = g
            .derivation_ids()
            .filter(|&d| {
                let n = g.derivation(d);
                n.is_base || n.mapping == "m5"
            })
            .collect();
        let sub = g.project(derivs);
        let order = sub.topo_order().expect("projection is acyclic");
        assert_eq!(order.len(), sub.tuple_count());
        // Sources appear before targets.
        let pos: HashMap<TupleId, usize> = order.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        for d in sub.derivation_ids() {
            let n = sub.derivation(d);
            for &s in &n.sources {
                for &t in &n.targets {
                    assert!(pos[&s] < pos[&t], "source after target");
                }
            }
        }
    }

    #[test]
    fn tuple_nodes_are_interned() {
        let mut g = ProvGraph::new();
        let a = g.add_tuple("R", tup![1], None);
        let b = g.add_tuple("R", tup![1], Some(tup![1, 2]));
        assert_eq!(a, b);
        assert_eq!(g.tuple_count(), 1);
        // Values are backfilled on re-add.
        assert_eq!(g.tuple(a).values, Some(tup![1, 2]));
    }

    #[test]
    fn derivations_are_idempotent() {
        let mut g = ProvGraph::new();
        let t = g.add_tuple("R", tup![1], None);
        let d1 = g.add_derivation("m", tup![1], vec![], vec![t], true);
        let d2 = g.add_derivation("m", tup![1], vec![], vec![t], true);
        assert_eq!(d1, d2);
        assert_eq!(g.derivation_count(), 1);
        assert_eq!(g.derivations_of(t).len(), 1);
    }

    #[test]
    fn leaf_means_only_base_derivations() {
        let sys = example_2_1().unwrap();
        let g = ProvGraph::from_system(&sys).unwrap();
        // N(1, sn1, true) is derived by m2 (not base): not a leaf.
        let n = g.find_tuple("N", &tup![1, "sn1"]).unwrap();
        assert!(!g.is_leaf(n));
        // A tuples are pure base.
        let a = g.find_tuple("A", &tup![2]).unwrap();
        assert!(g.is_leaf(a));
    }

    #[test]
    fn values_resolved_from_public_tables() {
        let sys = example_2_1().unwrap();
        let g = ProvGraph::from_system(&sys).unwrap();
        let a = g.find_tuple("A", &tup![1]).unwrap();
        assert_eq!(g.tuple(a).values, Some(tup![1, "sn1", 7]));
    }

    #[test]
    fn dot_rendering_mentions_nodes() {
        let sys = example_2_1().unwrap();
        let g = ProvGraph::from_system(&sys).unwrap();
        let dot = g.to_dot();
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("m5"));
        assert!(dot.contains("label=\"+\""));
    }

    #[test]
    fn mutation_after_freeze_rebuilds_adjacency() {
        // Regression: traversal reads the patchable CSR; mutating the
        // graph after a freeze must patch the frozen rows so later
        // traversals see the new edges instead of a stale frozen copy.
        let mut g = ProvGraph::new();
        let t1 = g.add_tuple("R", tup![1], None);
        let d1 = g.add_derivation("m", tup![1], vec![], vec![t1], true);
        g.freeze();
        assert_eq!(g.derivations_of(t1), &[d1]);
        assert!(g.consumers_of(t1).is_empty());
        assert!(g.topo_order().is_some());

        // Mutate: a new tuple derived *from* t1, plus a second alternative
        // derivation of t1 itself.
        let t2 = g.add_tuple("R", tup![2], None);
        let d2 = g.add_derivation("m2", tup![2], vec![t1], vec![t2], false);
        let d3 = g.add_derivation("m3", tup![3], vec![], vec![t1], true);

        // Post-mutation traversals reflect the new edges.
        assert_eq!(g.derivations_of(t1), &[d1, d3]);
        assert_eq!(g.consumers_of(t1), &[d2]);
        assert_eq!(g.derivations_of(t2), &[d2]);
        let order = g.topo_order().expect("still acyclic");
        assert_eq!(order.len(), 2);
        let pos: HashMap<TupleId, usize> = order.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        assert!(pos[&t1] < pos[&t2], "source must precede target");
        // And the values backfill path (which must not rebuild edges) still
        // leaves adjacency consistent.
        let t1_again = g.add_tuple("R", tup![1], Some(tup![1, 9]));
        assert_eq!(t1_again, t1);
        assert_eq!(g.derivations_of(t1), &[d1, d3]);
    }

    #[test]
    fn consumers_tracked() {
        let sys = example_2_1().unwrap();
        let g = ProvGraph::from_system(&sys).unwrap();
        let a2 = g.find_tuple("A", &tup![2]).unwrap();
        // A(2) feeds m2, m4, m5 derivations (and m1 via N(2,cn2,false)).
        assert!(!g.consumers_of(a2).is_empty());
    }

    #[test]
    fn remove_derivation_tombstones_and_orphans() {
        let mut g = ProvGraph::new();
        let t1 = g.add_tuple("R", tup![1], None);
        let t2 = g.add_tuple("S", tup![2], None);
        g.add_derivation("base", tup![1], vec![], vec![t1], true);
        g.add_derivation("m", tup![9], vec![t1], vec![t2], false);
        g.freeze();
        assert_eq!((g.tuple_count(), g.derivation_count()), (2, 2));

        // Removing m orphans t2 (no remaining references) but keeps t1.
        g.remove_derivation_row("m", &tup![9]);
        assert_eq!((g.tuple_count(), g.derivation_count()), (1, 1));
        assert!(g.find_tuple("S", &tup![2]).is_none());
        assert!(g.find_tuple("R", &tup![1]).is_some());
        assert!(g.find_derivation("m", &tup![9]).is_none());
        assert!(g.consumers_of(t1).is_empty());
        // Iteration skips tombstones.
        assert_eq!(g.tuple_ids().count(), 1);
        assert_eq!(g.derivation_ids().count(), 1);
        // Removing the base derivation empties the graph.
        g.remove_derivation_row("base", &tup![1]);
        assert_eq!((g.tuple_count(), g.derivation_count()), (0, 0));
        assert!(g.topo_order().unwrap().is_empty());
        // Removing an unknown row is a no-op.
        g.remove_derivation_row("nope", &tup![0]);
    }

    #[test]
    fn digest_ignores_numbering_and_tombstones() {
        let mut a = ProvGraph::new();
        let t1 = a.add_tuple("R", tup![1], Some(tup![1, 5]));
        let t2 = a.add_tuple("S", tup![2], None);
        a.add_derivation("base", tup![1], vec![], vec![t1], true);
        a.add_derivation("m", tup![7], vec![t1], vec![t2], false);

        // Same content built in a different order, with an extra node that
        // is then removed (leaving a tombstone).
        let mut b = ProvGraph::new();
        let u1 = b.add_tuple("R", tup![1], Some(tup![1, 5]));
        let u3 = b.add_tuple("X", tup![9], None);
        b.add_derivation("mx", tup![0], vec![], vec![u3], true);
        let u2 = b.add_tuple("S", tup![2], None);
        b.add_derivation("m", tup![7], vec![u1], vec![u2], false);
        b.add_derivation("base", tup![1], vec![], vec![u1], true);
        b.remove_derivation_row("mx", &tup![0]);

        assert_eq!(a.digest(), b.digest());
        // Content changes change the digest.
        b.remove_derivation_row("m", &tup![7]);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn rebuild_dense_compaction_preserves_content() {
        let mut g = ProvGraph::new();
        let mut keep = ProvGraph::new();
        for i in 0..20i64 {
            let t = g.add_tuple("R", tup![i], None);
            g.add_derivation("base", tup![i], vec![], vec![t], true);
            if i >= 15 {
                let t = keep.add_tuple("R", tup![i], None);
                keep.add_derivation("base", tup![i], vec![], vec![t], true);
            }
        }
        g.freeze();
        for i in 0..15i64 {
            g.remove_derivation_row("base", &tup![i]);
        }
        let before = g.digest();
        g.maybe_compact(); // 75% tombstones: must rebuild densely
        assert_eq!(g.tuple_id_bound(), 5, "compaction must drop tombstones");
        assert_eq!(g.digest(), before);
        assert_eq!(g.digest(), keep.digest());
    }

    #[test]
    fn apply_delta_matches_rebuild_after_insert() {
        let mut sys = example_2_1().unwrap();
        let mut g = ProvGraph::from_system(&sys).unwrap();
        let v0 = sys.version();
        sys.insert_local("A", tup![8, "sn8", 2]).unwrap();
        sys.run_exchange().unwrap();
        for entry in sys
            .delta_entries(v0, sys.version())
            .expect("delta chain available")
        {
            g.apply_delta(&sys, entry).unwrap();
        }
        g.maybe_compact();
        let rebuilt = ProvGraph::from_system(&sys).unwrap();
        assert_eq!(g.digest(), rebuilt.digest());
        assert_eq!(g.tuple_count(), rebuilt.tuple_count());
        assert_eq!(g.derivation_count(), rebuilt.derivation_count());
    }
}
