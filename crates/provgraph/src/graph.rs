//! The in-memory provenance graph (paper Figure 1).
//!
//! A bipartite graph of **tuple nodes** (rectangles: a tuple of some public
//! relation, identified by relation + key) and **derivation nodes**
//! (ellipses: one firing of a mapping, with edges from its source tuples and
//! to its target tuples). Derivations of local-contribution rules are the
//! `+` ovals: they have no source tuple nodes and mark their target as base
//! data.
//!
//! The graph is decoded from the relational encoding (`P_m` rows) and is
//! what the semiring evaluator walks bottom-up.

use crate::system::ProvenanceSystem;
use proql_common::{DerivationId, Result, Tuple, TupleId};
use proql_storage::batch::RecordBatch;
use proql_storage::{execute_batch, Plan};
use std::collections::HashMap;
use std::sync::OnceLock;

/// Compressed-sparse-row adjacency: `targets[offsets[i]..offsets[i+1]]` are
/// node `i`'s neighbors. Two flat vectors instead of one `Vec` per node —
/// the layout the bottom-up semiring walk iterates over.
#[derive(Debug, Clone, Default)]
struct CsrAdj {
    offsets: Vec<u32>,
    targets: Vec<DerivationId>,
}

impl CsrAdj {
    /// Counting-sort `edges` (node → derivation) into CSR form. Edge order
    /// per node is preserved (insertion order, like the old `Vec<Vec<_>>`).
    fn build(n_nodes: usize, edges: &[(u32, DerivationId)]) -> CsrAdj {
        let mut counts = vec![0u32; n_nodes + 1];
        for &(n, _) in edges {
            counts[n as usize + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![DerivationId(0); edges.len()];
        for &(n, d) in edges {
            let pos = cursor[n as usize];
            targets[pos as usize] = d;
            cursor[n as usize] += 1;
        }
        CsrAdj { offsets, targets }
    }

    fn neighbors(&self, i: usize) -> &[DerivationId] {
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    fn degree(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }
}

/// A tuple node.
#[derive(Debug, Clone, PartialEq)]
pub struct TupleNode {
    /// Public relation the tuple belongs to.
    pub relation: String,
    /// Primary-key projection identifying the tuple.
    pub key: Tuple,
    /// Full tuple values when resolvable from the database (used by
    /// `ASSIGNING EACH leaf_node` attribute conditions).
    pub values: Option<Tuple>,
}

/// A derivation node: one row of some provenance relation.
#[derive(Debug, Clone, PartialEq)]
pub struct DerivationNode {
    /// Mapping that produced this derivation.
    pub mapping: String,
    /// The provenance-relation row (variable bindings).
    pub prov_row: Tuple,
    /// Source tuple nodes (joined by the mapping); empty for base (`+`)
    /// derivations.
    pub sources: Vec<TupleId>,
    /// Target tuple nodes.
    pub targets: Vec<TupleId>,
    /// True for local-contribution (`+`) derivations.
    pub is_base: bool,
}

/// The provenance graph.
///
/// Adjacency is kept as flat edge lists while the graph is being built and
/// frozen into **CSR** (compressed sparse row) form on first traversal —
/// the semiring evaluator's bottom-up walk then reads two flat vectors
/// instead of chasing one heap allocation per tuple node. Any mutation
/// invalidates the frozen form; it is rebuilt lazily.
#[derive(Debug, Clone, Default)]
pub struct ProvGraph {
    tuples: Vec<TupleNode>,
    tuple_index: HashMap<(String, Tuple), TupleId>,
    derivations: Vec<DerivationNode>,
    deriv_index: HashMap<(String, Tuple), DerivationId>,
    /// (tuple, derivation *deriving* it) edge list, build order.
    derived_edges: Vec<(u32, DerivationId)>,
    /// (tuple, derivation *consuming* it) edge list, build order.
    consumed_edges: Vec<(u32, DerivationId)>,
    /// Frozen incoming adjacency (lazily built).
    derived_csr: OnceLock<CsrAdj>,
    /// Frozen outgoing adjacency (lazily built).
    consumed_csr: OnceLock<CsrAdj>,
}

impl ProvGraph {
    /// Empty graph.
    pub fn new() -> Self {
        ProvGraph::default()
    }

    /// Number of tuple nodes.
    pub fn tuple_count(&self) -> usize {
        self.tuples.len()
    }

    /// Number of derivation nodes.
    pub fn derivation_count(&self) -> usize {
        self.derivations.len()
    }

    /// Intern a tuple node.
    pub fn add_tuple(&mut self, relation: &str, key: Tuple, values: Option<Tuple>) -> TupleId {
        if let Some(&id) = self.tuple_index.get(&(relation.to_string(), key.clone())) {
            if values.is_some() && self.tuples[id.index()].values.is_none() {
                self.tuples[id.index()].values = values;
            }
            return id;
        }
        let id = TupleId(self.tuples.len() as u32);
        self.tuple_index
            .insert((relation.to_string(), key.clone()), id);
        self.tuples.push(TupleNode {
            relation: relation.to_string(),
            key,
            values,
        });
        self.invalidate_csr();
        id
    }

    /// Drop the frozen adjacency after a mutation; it is rebuilt on the
    /// next traversal.
    fn invalidate_csr(&mut self) {
        self.derived_csr = OnceLock::new();
        self.consumed_csr = OnceLock::new();
    }

    fn derived(&self) -> &CsrAdj {
        self.derived_csr
            .get_or_init(|| CsrAdj::build(self.tuples.len(), &self.derived_edges))
    }

    fn consumed(&self) -> &CsrAdj {
        self.consumed_csr
            .get_or_init(|| CsrAdj::build(self.tuples.len(), &self.consumed_edges))
    }

    /// Add a derivation node (idempotent on (mapping, prov_row)).
    pub fn add_derivation(
        &mut self,
        mapping: &str,
        prov_row: Tuple,
        sources: Vec<TupleId>,
        targets: Vec<TupleId>,
        is_base: bool,
    ) -> DerivationId {
        let dkey = (mapping.to_string(), prov_row.clone());
        if let Some(&id) = self.deriv_index.get(&dkey) {
            return id;
        }
        let id = DerivationId(self.derivations.len() as u32);
        self.deriv_index.insert(dkey, id);
        for &s in &sources {
            self.consumed_edges.push((s.0, id));
        }
        for &t in &targets {
            self.derived_edges.push((t.0, id));
        }
        self.invalidate_csr();
        self.derivations.push(DerivationNode {
            mapping: mapping.to_string(),
            prov_row,
            sources,
            targets,
            is_base,
        });
        id
    }

    /// Tuple node accessor.
    pub fn tuple(&self, id: TupleId) -> &TupleNode {
        &self.tuples[id.index()]
    }

    /// Derivation node accessor.
    pub fn derivation(&self, id: DerivationId) -> &DerivationNode {
        &self.derivations[id.index()]
    }

    /// Find a tuple node by relation and key.
    pub fn find_tuple(&self, relation: &str, key: &Tuple) -> Option<TupleId> {
        self.tuple_index
            .get(&(relation.to_string(), key.clone()))
            .copied()
    }

    /// Derivations deriving a tuple (its alternatives — union). Served
    /// from the CSR adjacency (built lazily after mutations).
    pub fn derivations_of(&self, id: TupleId) -> &[DerivationId] {
        self.derived().neighbors(id.index())
    }

    /// Derivations consuming a tuple.
    pub fn consumers_of(&self, id: TupleId) -> &[DerivationId] {
        self.consumed().neighbors(id.index())
    }

    /// All tuple ids.
    pub fn tuple_ids(&self) -> impl Iterator<Item = TupleId> {
        (0..self.tuples.len()).map(|i| TupleId(i as u32))
    }

    /// All derivation ids.
    pub fn derivation_ids(&self) -> impl Iterator<Item = DerivationId> {
        (0..self.derivations.len()).map(|i| DerivationId(i as u32))
    }

    /// A tuple is a **leaf** when it has no incoming derivations at all, or
    /// only base (`+`) derivations. Leaves are where `ASSIGNING EACH
    /// leaf_node` values plug in.
    pub fn is_leaf(&self, id: TupleId) -> bool {
        self.derivations_of(id)
            .iter()
            .all(|&d| self.derivations[d.index()].is_base)
    }

    /// True iff the tuple is backed by base data (has a `+` derivation).
    pub fn is_base(&self, id: TupleId) -> bool {
        self.derivations_of(id)
            .iter()
            .any(|&d| self.derivations[d.index()].is_base)
    }

    /// Topological order of tuple nodes (sources before targets through
    /// derivations), or `None` if the graph is cyclic. Derivations are
    /// ordered implicitly: a derivation is ready when all its sources are.
    pub fn topo_order(&self) -> Option<Vec<TupleId>> {
        // In-degree of each derivation = #sources not yet emitted;
        // in-degree of each tuple = #derivations not yet emitted.
        let mut deriv_pending: Vec<usize> =
            self.derivations.iter().map(|d| d.sources.len()).collect();
        let derived = self.derived();
        let consumed = self.consumed();
        let mut tuple_pending: Vec<usize> =
            (0..self.tuples.len()).map(|i| derived.degree(i)).collect();
        let mut ready: Vec<TupleId> = Vec::new();
        let mut order = Vec::with_capacity(self.tuples.len());
        for (i, &p) in tuple_pending.iter().enumerate() {
            if p == 0 {
                ready.push(TupleId(i as u32));
            }
        }
        // Base derivations have zero sources: fire them immediately.
        let mut deriv_ready: Vec<DerivationId> = deriv_pending
            .iter()
            .enumerate()
            .filter(|(_, &p)| p == 0)
            .map(|(i, _)| DerivationId(i as u32))
            .collect();
        loop {
            // Fire ready derivations: they decrement their targets.
            while let Some(d) = deriv_ready.pop() {
                for &t in &self.derivations[d.index()].targets {
                    tuple_pending[t.index()] -= 1;
                    if tuple_pending[t.index()] == 0 {
                        ready.push(t);
                    }
                }
            }
            match ready.pop() {
                None => break,
                Some(t) => {
                    order.push(t);
                    for &d in consumed.neighbors(t.index()) {
                        deriv_pending[d.index()] -= 1;
                        if deriv_pending[d.index()] == 0 {
                            deriv_ready.push(d);
                        }
                    }
                }
            }
        }
        (order.len() == self.tuples.len()).then_some(order)
    }

    /// True iff the graph contains a derivation cycle.
    pub fn is_cyclic(&self) -> bool {
        self.topo_order().is_none()
    }

    /// Decode the full provenance graph of a system from its provenance
    /// relations. Each `P_m` relation is scanned through the columnar
    /// batch executor and decoded column-at-a-time.
    pub fn from_system(sys: &ProvenanceSystem) -> Result<ProvGraph> {
        let mut g = ProvGraph::new();
        for (rule, spec) in sys.program().rules.iter().zip(sys.specs()) {
            let batch = execute_batch(&sys.db, &Plan::scan(spec.prov_rel.clone()))?;
            let is_base = rule
                .body
                .first()
                .map(|a| sys.is_local_relation(&a.relation))
                .unwrap_or(false);
            g.add_derivations_from_batch(sys, spec, &batch, is_base)?;
        }
        Ok(g)
    }

    /// Decode a whole batch of provenance rows. Key columns are gathered
    /// once per atom recipe instead of once per row × term.
    pub fn add_derivations_from_batch(
        &mut self,
        sys: &ProvenanceSystem,
        spec: &crate::encode::ProvSpec,
        batch: &RecordBatch,
        is_base: bool,
    ) -> Result<()> {
        use crate::encode::RecipeTerm;
        if batch.is_empty() {
            return Ok(());
        }
        // Resolve every recipe term to a column reference or constant once.
        struct Recipe<'a> {
            relation: &'a str,
            is_source: bool,
            cols: Vec<ResolvedKey<'a>>,
        }
        enum ResolvedKey<'a> {
            Col(&'a proql_storage::batch::Column),
            Const(&'a proql_common::Value),
        }
        let mut recipes: Vec<Recipe> = Vec::with_capacity(spec.atoms.len());
        for recipe in &spec.atoms {
            if recipe.is_source && is_base {
                // Local-contribution source: not a graph node; the `+`
                // derivation's target carries the base flag.
                continue;
            }
            recipes.push(Recipe {
                relation: &recipe.relation,
                is_source: recipe.is_source,
                cols: recipe
                    .key_recipe
                    .iter()
                    .map(|r| match r {
                        RecipeTerm::Col(c) => ResolvedKey::Col(&batch.columns[*c]),
                        RecipeTerm::Const(v) => ResolvedKey::Const(v),
                    })
                    .collect(),
            });
        }
        for row in 0..batch.len() {
            let mut sources = Vec::new();
            let mut targets = Vec::new();
            for r in &recipes {
                let key = Tuple::new(
                    r.cols
                        .iter()
                        .map(|c| match c {
                            ResolvedKey::Col(col) => col.value(row),
                            ResolvedKey::Const(v) => (*v).clone(),
                        })
                        .collect(),
                );
                let values = sys
                    .db
                    .table(r.relation)
                    .ok()
                    .and_then(|t| t.get_by_key(&key))
                    .cloned();
                let id = self.add_tuple(r.relation, key, values);
                if r.is_source {
                    sources.push(id);
                } else {
                    targets.push(id);
                }
            }
            self.add_derivation(&spec.mapping, batch.row(row), sources, targets, is_base);
        }
        Ok(())
    }

    /// Decode one provenance row into a derivation node (shared by
    /// `from_system` and by projected-subgraph construction in `proql`).
    pub fn add_derivation_from_row(
        &mut self,
        sys: &ProvenanceSystem,
        spec: &crate::encode::ProvSpec,
        row: &Tuple,
        is_base: bool,
    ) -> Result<DerivationId> {
        let mut sources = Vec::new();
        let mut targets = Vec::new();
        for recipe in &spec.atoms {
            let key = recipe.key_of(row);
            if recipe.is_source && is_base {
                // Local-contribution source: not a graph node; the `+`
                // derivation's target carries the base flag.
                continue;
            }
            let values = sys
                .db
                .table(&recipe.relation)
                .ok()
                .and_then(|t| t.get_by_key(&key))
                .cloned();
            let id = self.add_tuple(&recipe.relation, key, values);
            if recipe.is_source {
                sources.push(id);
            } else {
                targets.push(id);
            }
        }
        Ok(self.add_derivation(&spec.mapping, row.clone(), sources, targets, is_base))
    }

    /// Project the graph onto a set of derivation ids: the result keeps
    /// those derivations with **all** their source and target tuple nodes
    /// (the paper's requirement that derivation nodes stay "inseparable"
    /// from their endpoints).
    pub fn project(&self, derivs: impl IntoIterator<Item = DerivationId>) -> ProvGraph {
        let mut g = ProvGraph::new();
        for d in derivs {
            let node = &self.derivations[d.index()];
            let sources = node
                .sources
                .iter()
                .map(|&s| {
                    let t = &self.tuples[s.index()];
                    g.add_tuple(&t.relation, t.key.clone(), t.values.clone())
                })
                .collect();
            let targets = node
                .targets
                .iter()
                .map(|&s| {
                    let t = &self.tuples[s.index()];
                    g.add_tuple(&t.relation, t.key.clone(), t.values.clone())
                })
                .collect();
            g.add_derivation(
                &node.mapping,
                node.prov_row.clone(),
                sources,
                targets,
                node.is_base,
            );
        }
        g
    }

    /// Render as DOT (GraphViz) for the interactive-browser use case the
    /// paper motivates (§1 "Interactive provenance browsers and viewers").
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut s = String::from("digraph provenance {\n  rankdir=RL;\n");
        for (i, t) in self.tuples.iter().enumerate() {
            let label = match &t.values {
                Some(v) => format!("{}{}", t.relation, v),
                None => format!("{}{}", t.relation, t.key),
            };
            let style = if self.is_base(TupleId(i as u32)) {
                ", style=bold"
            } else {
                ""
            };
            let _ = writeln!(s, "  t{i} [shape=box, label=\"{label}\"{style}];");
        }
        for (i, d) in self.derivations.iter().enumerate() {
            let shape = if d.is_base { "circle" } else { "ellipse" };
            let label = if d.is_base { "+" } else { d.mapping.as_str() };
            let _ = writeln!(s, "  d{i} [shape={shape}, label=\"{label}\"];");
            for src in &d.sources {
                let _ = writeln!(s, "  t{} -> d{i};", src.index());
            }
            for tgt in &d.targets {
                let _ = writeln!(s, "  d{i} -> t{};", tgt.index());
            }
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::example_2_1;
    use proql_common::tup;

    #[test]
    fn figure_1_graph_shape() {
        let sys = example_2_1().unwrap();
        let g = ProvGraph::from_system(&sys).unwrap();
        // Base tuples are flagged.
        let a1 = g.find_tuple("A", &tup![1]).unwrap();
        assert!(g.is_base(a1));
        assert!(g.is_leaf(a1));
        // O(cn2, 5) is derived via m5 from A(2) and C(2, cn2).
        let ocn2 = g.find_tuple("O", &tup!["cn2"]).unwrap();
        let derivs = g.derivations_of(ocn2);
        assert!(!derivs.is_empty());
        let via_m5 = derivs
            .iter()
            .map(|&d| g.derivation(d))
            .find(|d| d.mapping == "m5")
            .expect("O(cn2) must have an m5 derivation");
        assert_eq!(via_m5.sources.len(), 2);
        let src_rels: Vec<&str> = via_m5
            .sources
            .iter()
            .map(|&s| g.tuple(s).relation.as_str())
            .collect();
        assert!(src_rels.contains(&"A") && src_rels.contains(&"C"));
    }

    #[test]
    fn full_example_graph_is_cyclic() {
        // C(2,cn2) -> m3 -> N(2,cn2,false) -> m1 -> C(2,cn2).
        let sys = example_2_1().unwrap();
        let g = ProvGraph::from_system(&sys).unwrap();
        assert!(g.is_cyclic());
        assert!(g.topo_order().is_none());
    }

    #[test]
    fn acyclic_projection_topo_orders() {
        let sys = example_2_1().unwrap();
        let g = ProvGraph::from_system(&sys).unwrap();
        // Project onto only the m5 and base derivations: acyclic.
        let derivs: Vec<_> = g
            .derivation_ids()
            .filter(|&d| {
                let n = g.derivation(d);
                n.is_base || n.mapping == "m5"
            })
            .collect();
        let sub = g.project(derivs);
        let order = sub.topo_order().expect("projection is acyclic");
        assert_eq!(order.len(), sub.tuple_count());
        // Sources appear before targets.
        let pos: HashMap<TupleId, usize> = order.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        for d in sub.derivation_ids() {
            let n = sub.derivation(d);
            for &s in &n.sources {
                for &t in &n.targets {
                    assert!(pos[&s] < pos[&t], "source after target");
                }
            }
        }
    }

    #[test]
    fn tuple_nodes_are_interned() {
        let mut g = ProvGraph::new();
        let a = g.add_tuple("R", tup![1], None);
        let b = g.add_tuple("R", tup![1], Some(tup![1, 2]));
        assert_eq!(a, b);
        assert_eq!(g.tuple_count(), 1);
        // Values are backfilled on re-add.
        assert_eq!(g.tuple(a).values, Some(tup![1, 2]));
    }

    #[test]
    fn derivations_are_idempotent() {
        let mut g = ProvGraph::new();
        let t = g.add_tuple("R", tup![1], None);
        let d1 = g.add_derivation("m", tup![1], vec![], vec![t], true);
        let d2 = g.add_derivation("m", tup![1], vec![], vec![t], true);
        assert_eq!(d1, d2);
        assert_eq!(g.derivation_count(), 1);
        assert_eq!(g.derivations_of(t).len(), 1);
    }

    #[test]
    fn leaf_means_only_base_derivations() {
        let sys = example_2_1().unwrap();
        let g = ProvGraph::from_system(&sys).unwrap();
        // N(1, sn1, true) is derived by m2 (not base): not a leaf.
        let n = g.find_tuple("N", &tup![1, "sn1"]).unwrap();
        assert!(!g.is_leaf(n));
        // A tuples are pure base.
        let a = g.find_tuple("A", &tup![2]).unwrap();
        assert!(g.is_leaf(a));
    }

    #[test]
    fn values_resolved_from_public_tables() {
        let sys = example_2_1().unwrap();
        let g = ProvGraph::from_system(&sys).unwrap();
        let a = g.find_tuple("A", &tup![1]).unwrap();
        assert_eq!(g.tuple(a).values, Some(tup![1, "sn1", 7]));
    }

    #[test]
    fn dot_rendering_mentions_nodes() {
        let sys = example_2_1().unwrap();
        let g = ProvGraph::from_system(&sys).unwrap();
        let dot = g.to_dot();
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("m5"));
        assert!(dot.contains("label=\"+\""));
    }

    #[test]
    fn mutation_after_freeze_rebuilds_adjacency() {
        // Regression: traversal freezes the CSR adjacency lazily; mutating
        // the graph afterwards must invalidate it so later traversals see
        // the new edges instead of a stale frozen copy.
        let mut g = ProvGraph::new();
        let t1 = g.add_tuple("R", tup![1], None);
        let d1 = g.add_derivation("m", tup![1], vec![], vec![t1], true);
        // Freeze both adjacency directions.
        assert_eq!(g.derivations_of(t1), &[d1]);
        assert!(g.consumers_of(t1).is_empty());
        assert!(g.topo_order().is_some());

        // Mutate: a new tuple derived *from* t1, plus a second alternative
        // derivation of t1 itself.
        let t2 = g.add_tuple("R", tup![2], None);
        let d2 = g.add_derivation("m2", tup![2], vec![t1], vec![t2], false);
        let d3 = g.add_derivation("m3", tup![3], vec![], vec![t1], true);

        // Post-mutation traversals reflect the new edges.
        assert_eq!(g.derivations_of(t1), &[d1, d3]);
        assert_eq!(g.consumers_of(t1), &[d2]);
        assert_eq!(g.derivations_of(t2), &[d2]);
        let order = g.topo_order().expect("still acyclic");
        assert_eq!(order.len(), 2);
        let pos: HashMap<TupleId, usize> = order.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        assert!(pos[&t1] < pos[&t2], "source must precede target");
        // And the values backfill path (which must not rebuild edges) still
        // leaves adjacency consistent.
        let t1_again = g.add_tuple("R", tup![1], Some(tup![1, 9]));
        assert_eq!(t1_again, t1);
        assert_eq!(g.derivations_of(t1), &[d1, d3]);
    }

    #[test]
    fn consumers_tracked() {
        let sys = example_2_1().unwrap();
        let g = ProvGraph::from_system(&sys).unwrap();
        let a2 = g.find_tuple("A", &tup![2]).unwrap();
        // A(2) feeds m2, m4, m5 derivations (and m1 via N(2,cn2,false)).
        assert!(!g.consumers_of(a2).is_empty());
    }
}
