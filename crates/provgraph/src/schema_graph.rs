//! The provenance schema graph (paper §4.2.1, Figure 3).
//!
//! Relation nodes and mapping nodes; a mapping points at the relations it
//! derives (targets) and is pointed at by the relations it reads (sources).
//! ProQL path patterns are matched against this graph to decide which
//! mappings participate in a query.

use crate::system::ProvenanceSystem;
use proql_datalog::ast::Program;
use std::collections::{HashMap, HashSet, VecDeque};

/// The schema-level provenance graph.
#[derive(Debug, Clone, Default)]
pub struct SchemaGraph {
    relations: Vec<String>,
    rel_idx: HashMap<String, usize>,
    mappings: Vec<String>,
    map_idx: HashMap<String, usize>,
    /// mapping index → source relation indices (body atoms).
    sources_of: Vec<Vec<usize>>,
    /// mapping index → target relation indices (head atoms).
    targets_of: Vec<Vec<usize>>,
    /// relation index → mappings that derive it.
    derived_by: Vec<Vec<usize>>,
    /// relation index → mappings that consume it.
    feeds: Vec<Vec<usize>>,
    /// mappings that are local-contribution copies (`L_*` rules).
    is_local: Vec<bool>,
}

impl SchemaGraph {
    /// Build from a program, marking rules in `local_rules` as local copies.
    pub fn from_program(program: &Program, local_rules: &HashSet<String>) -> Self {
        let mut g = SchemaGraph::default();
        for rule in &program.rules {
            let name = rule.name.clone().unwrap_or_else(|| "?".into());
            let mi = g.intern_mapping(&name);
            g.is_local[mi] = local_rules.contains(&name);
            for atom in &rule.body {
                let ri = g.intern_relation(&atom.relation);
                if !g.sources_of[mi].contains(&ri) {
                    g.sources_of[mi].push(ri);
                    g.feeds[ri].push(mi);
                }
            }
            for atom in &rule.heads {
                let ri = g.intern_relation(&atom.relation);
                if !g.targets_of[mi].contains(&ri) {
                    g.targets_of[mi].push(ri);
                    g.derived_by[ri].push(mi);
                }
            }
        }
        g
    }

    /// Build from a provenance system (local `L_*` rules marked local; their
    /// source relations — the `_l` tables — appear as relation nodes feeding
    /// them, which is how patterns reach EDB leaves).
    pub fn from_system(sys: &ProvenanceSystem) -> Self {
        let locals: HashSet<String> = sys
            .program()
            .rules
            .iter()
            .filter_map(|r| r.name.clone())
            .filter(|n| n.starts_with("L_"))
            .collect();
        SchemaGraph::from_program(sys.program(), &locals)
    }

    fn intern_relation(&mut self, name: &str) -> usize {
        if let Some(&i) = self.rel_idx.get(name) {
            return i;
        }
        let i = self.relations.len();
        self.relations.push(name.to_string());
        self.rel_idx.insert(name.to_string(), i);
        self.derived_by.push(Vec::new());
        self.feeds.push(Vec::new());
        i
    }

    fn intern_mapping(&mut self, name: &str) -> usize {
        if let Some(&i) = self.map_idx.get(name) {
            return i;
        }
        let i = self.mappings.len();
        self.mappings.push(name.to_string());
        self.map_idx.insert(name.to_string(), i);
        self.sources_of.push(Vec::new());
        self.targets_of.push(Vec::new());
        self.is_local.push(false);
        i
    }

    /// All relation names.
    pub fn relations(&self) -> &[String] {
        &self.relations
    }

    /// All mapping names.
    pub fn mappings(&self) -> &[String] {
        &self.mappings
    }

    /// True iff the mapping is a local-contribution copy rule.
    pub fn is_local_mapping(&self, mapping: &str) -> bool {
        self.map_idx
            .get(mapping)
            .map(|&i| self.is_local[i])
            .unwrap_or(false)
    }

    /// Names of mappings deriving `relation` (incoming edges).
    pub fn mappings_deriving(&self, relation: &str) -> Vec<&str> {
        self.rel_idx
            .get(relation)
            .map(|&ri| {
                self.derived_by[ri]
                    .iter()
                    .map(|&mi| self.mappings[mi].as_str())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Names of mappings consuming `relation` (outgoing edges).
    pub fn mappings_using(&self, relation: &str) -> Vec<&str> {
        self.rel_idx
            .get(relation)
            .map(|&ri| {
                self.feeds[ri]
                    .iter()
                    .map(|&mi| self.mappings[mi].as_str())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Source relations of a mapping.
    pub fn sources_of(&self, mapping: &str) -> Vec<&str> {
        self.map_idx
            .get(mapping)
            .map(|&mi| {
                self.sources_of[mi]
                    .iter()
                    .map(|&ri| self.relations[ri].as_str())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Target relations of a mapping.
    pub fn targets_of(&self, mapping: &str) -> Vec<&str> {
        self.map_idx
            .get(mapping)
            .map(|&mi| {
                self.targets_of[mi]
                    .iter()
                    .map(|&ri| self.relations[ri].as_str())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// True iff `relation` exists in the graph.
    pub fn has_relation(&self, relation: &str) -> bool {
        self.rel_idx.contains_key(relation)
    }

    /// True iff `mapping` exists in the graph.
    pub fn has_mapping(&self, mapping: &str) -> bool {
        self.map_idx.contains_key(mapping)
    }

    /// All relations and mappings backward-reachable from `relation`
    /// (everything that can contribute to its derivations). Returns
    /// `(relations, mappings)` including `relation` itself.
    pub fn backward_reachable(&self, relation: &str) -> (Vec<String>, Vec<String>) {
        let mut rels: HashSet<usize> = HashSet::new();
        let mut maps: HashSet<usize> = HashSet::new();
        let mut queue = VecDeque::new();
        if let Some(&ri) = self.rel_idx.get(relation) {
            rels.insert(ri);
            queue.push_back(ri);
        }
        while let Some(ri) = queue.pop_front() {
            for &mi in &self.derived_by[ri] {
                if maps.insert(mi) {
                    for &si in &self.sources_of[mi] {
                        if rels.insert(si) {
                            queue.push_back(si);
                        }
                    }
                }
            }
        }
        let mut rel_names: Vec<String> = rels.iter().map(|&i| self.relations[i].clone()).collect();
        let mut map_names: Vec<String> = maps.iter().map(|&i| self.mappings[i].clone()).collect();
        rel_names.sort();
        map_names.sort();
        (rel_names, map_names)
    }

    /// True iff the schema graph has a directed cycle (recursive mappings).
    pub fn is_cyclic(&self) -> bool {
        // DFS over relation nodes through mapping nodes.
        #[derive(Clone, Copy, PartialEq)]
        enum State {
            White,
            Grey,
            Black,
        }
        let mut state = vec![State::White; self.relations.len()];
        for start in 0..self.relations.len() {
            if state[start] != State::White {
                continue;
            }
            // Iterative DFS with an explicit stack of (node, next-child).
            let mut stack = vec![(start, 0usize)];
            state[start] = State::Grey;
            while let Some(&mut (ri, ref mut child)) = stack.last_mut() {
                // successors of relation ri: targets of mappings it feeds.
                let succs: Vec<usize> = self.feeds[ri]
                    .iter()
                    .flat_map(|&mi| self.targets_of[mi].iter().copied())
                    .collect();
                if *child < succs.len() {
                    let next = succs[*child];
                    *child += 1;
                    match state[next] {
                        State::Grey => return true,
                        State::White => {
                            state[next] = State::Grey;
                            stack.push((next, 0));
                        }
                        State::Black => {}
                    }
                } else {
                    state[ri] = State::Black;
                    stack.pop();
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::example_2_1;
    use proql_datalog::parse::parse_program;

    #[test]
    fn figure_3_structure() {
        let sys = example_2_1().unwrap();
        let g = sys.schema_graph();
        // O derived by m4, m5; N by m2, m3 (+local); C by m1 (+local).
        let mut o = g.mappings_deriving("O");
        o.sort();
        assert_eq!(o, vec!["L_O", "m4", "m5"]);
        assert_eq!(g.sources_of("m5"), vec!["A", "C"]);
        assert_eq!(g.targets_of("m5"), vec!["O"]);
        assert!(g.is_local_mapping("L_A"));
        assert!(!g.is_local_mapping("m1"));
    }

    #[test]
    fn backward_reachability_from_o() {
        let sys = example_2_1().unwrap();
        let g = sys.schema_graph();
        let (rels, maps) = g.backward_reachable("O");
        // All public relations and local tables reach O.
        for r in ["O", "A", "C", "N", "A_l", "C_l", "N_l", "O_l"] {
            assert!(rels.contains(&r.to_string()), "missing {r}");
        }
        for m in ["m1", "m2", "m3", "m4", "m5", "L_A"] {
            assert!(maps.contains(&m.to_string()), "missing {m}");
        }
    }

    #[test]
    fn example_2_1_is_cyclic_via_m1_m3() {
        // C -> m3 -> N -> m1 -> C is a schema-level cycle.
        let sys = example_2_1().unwrap();
        assert!(sys.schema_graph().is_cyclic());
    }

    #[test]
    fn chain_program_is_acyclic() {
        let p = parse_program(
            "m1: B(x) :- A(x)
             m2: Cc(x) :- B(x)",
        )
        .unwrap();
        let g = SchemaGraph::from_program(&p, &HashSet::new());
        assert!(!g.is_cyclic());
        let (rels, maps) = g.backward_reachable("Cc");
        assert_eq!(rels, vec!["A", "B", "Cc"]);
        assert_eq!(maps, vec!["m1", "m2"]);
    }

    #[test]
    fn unknown_names_are_safe() {
        let sys = example_2_1().unwrap();
        let g = sys.schema_graph();
        assert!(g.mappings_deriving("Zzz").is_empty());
        assert!(g.sources_of("m99").is_empty());
        assert!(!g.has_relation("Zzz"));
        assert!(!g.has_mapping("m99"));
        let (rels, maps) = g.backward_reachable("Zzz");
        assert!(rels.is_empty() && maps.is_empty());
    }

    #[test]
    fn mappings_using_tracks_outgoing_edges() {
        let sys = example_2_1().unwrap();
        let g = sys.schema_graph();
        let mut using_a = g.mappings_using("A");
        using_a.sort();
        assert_eq!(using_a, vec!["m1", "m2", "m4", "m5"]);
    }
}
