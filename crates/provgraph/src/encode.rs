//! Relational encoding of provenance (paper §4.1).
//!
//! Each schema mapping `m` gets a provenance relation `P_m` with **one row
//! per derivation**. Columns are the distinct variables occurring in a key
//! position of any source or target atom — attributes constrained by the
//! mapping to be equal are stored once. Constants in key positions are not
//! stored: they are reconstructed from the mapping definition.
//!
//! When a mapping has a single source atom (a projection, like the paper's
//! `m2`), its provenance relation is *superfluous*: it is exactly a
//! projection of the source relation and is created as a virtual view
//! instead of a table.

use proql_common::{Attribute, Error, Result, Schema, Tuple, Value, ValueType};
use proql_datalog::ast::{Atom, Rule, Term};
use proql_datalog::compile::compile_body;
use proql_storage::{Database, Expr, Plan};

/// How to reconstruct one key attribute of an atom from a `P_m` row.
#[derive(Debug, Clone, PartialEq)]
pub enum RecipeTerm {
    /// Read the provenance-relation column at this position.
    Col(usize),
    /// The mapping pins this key attribute to a constant.
    Const(Value),
}

/// How to reconstruct the key of one atom (source or target) of a mapping
/// from a row of its provenance relation.
#[derive(Debug, Clone, PartialEq)]
pub struct AtomRecipe {
    /// The atom's relation.
    pub relation: String,
    /// True for body (source) atoms, false for head (target) atoms.
    pub is_source: bool,
    /// One entry per key attribute of `relation`, in key order.
    pub key_recipe: Vec<RecipeTerm>,
}

impl AtomRecipe {
    /// Reconstruct the atom's key from a provenance row.
    pub fn key_of(&self, prov_row: &Tuple) -> Tuple {
        Tuple::new(
            self.key_recipe
                .iter()
                .map(|r| match r {
                    RecipeTerm::Col(c) => prov_row.get(*c).clone(),
                    RecipeTerm::Const(v) => v.clone(),
                })
                .collect(),
        )
    }
}

/// The provenance-relation specification of one mapping.
#[derive(Debug, Clone)]
pub struct ProvSpec {
    /// Mapping name (`m1`, `L1`, ...).
    pub mapping: String,
    /// Name of the provenance relation (`P_m1`).
    pub prov_rel: String,
    /// Column variables, in order.
    pub columns: Vec<String>,
    /// Reconstruction recipes: sources first (body order), then targets.
    pub atoms: Vec<AtomRecipe>,
    /// True when `P_m` is a view over the single source relation.
    pub superfluous: bool,
}

impl ProvSpec {
    /// The schema of the provenance relation: all columns, all-key (a
    /// derivation is identified by its full variable binding).
    pub fn schema(&self) -> Schema {
        Schema::new(
            &self.prov_rel,
            self.columns
                .iter()
                .map(|c| Attribute::new(c.clone(), ValueType::Null))
                .collect(),
            (0..self.columns.len()).collect(),
        )
        .expect("provenance schema construction cannot fail")
    }

    /// Column index of a variable.
    pub fn column_of(&self, var: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == var)
    }

    /// Recipes of the source atoms.
    pub fn sources(&self) -> impl Iterator<Item = &AtomRecipe> {
        self.atoms.iter().filter(|a| a.is_source)
    }

    /// Recipes of the target atoms.
    pub fn targets(&self) -> impl Iterator<Item = &AtomRecipe> {
        self.atoms.iter().filter(|a| !a.is_source)
    }

    /// The body atoms of the ProQL-translation rule for this mapping: the
    /// provenance atom `P_m(columns...)` followed by the source atoms with
    /// their original terms (paper Example 4.2:
    /// `O(n,h,true) :- P5(i,n), A(i,_,h), C(i,n)`).
    pub fn translation_body(&self, rule: &Rule) -> Vec<Atom> {
        let mut body = Vec::with_capacity(1 + rule.body.len());
        body.push(Atom::new(
            self.prov_rel.clone(),
            self.columns.iter().map(|c| Term::var(c.clone())).collect(),
        ));
        body.extend(rule.body.iter().cloned());
        body
    }
}

/// Compute the provenance spec for `rule`. Every atom's relation must exist
/// in `db` (needed for key positions), and no key position may hold a Skolem
/// term (its value would not be reconstructible from stored columns).
pub fn spec_for_rule(db: &Database, rule: &Rule) -> Result<ProvSpec> {
    let name = rule
        .name
        .clone()
        .ok_or_else(|| Error::Datalog("mappings must be named".into()))?;
    let mut columns: Vec<String> = Vec::new();
    let mut atoms: Vec<AtomRecipe> = Vec::new();

    // First pass: collect distinct key variables, body atoms first.
    let all_atoms: Vec<(&Atom, bool)> = rule
        .body
        .iter()
        .map(|a| (a, true))
        .chain(rule.heads.iter().map(|a| (a, false)))
        .collect();
    for (atom, _) in &all_atoms {
        let schema = db.schema_of(&atom.relation)?;
        if schema.arity() != atom.arity() {
            return Err(Error::Datalog(format!(
                "atom {atom} arity mismatch with relation {}",
                atom.relation
            )));
        }
        for &kpos in &schema.effective_key() {
            match &atom.terms[kpos] {
                Term::Var(v) => {
                    if !columns.contains(v) {
                        columns.push(v.clone());
                    }
                }
                Term::Const(_) => {}
                Term::Skolem(..) => {
                    return Err(Error::Datalog(format!(
                        "mapping {name}: Skolem term in key position of {atom}; \
                         provenance would not be reconstructible"
                    )));
                }
            }
        }
    }

    // Second pass: build recipes.
    for (atom, is_source) in &all_atoms {
        let schema = db.schema_of(&atom.relation)?;
        let key_recipe = schema
            .effective_key()
            .iter()
            .map(|&kpos| match &atom.terms[kpos] {
                Term::Var(v) => RecipeTerm::Col(
                    columns
                        .iter()
                        .position(|c| c == v)
                        .expect("collected above"),
                ),
                Term::Const(v) => RecipeTerm::Const(v.clone()),
                Term::Skolem(..) => unreachable!("rejected above"),
            })
            .collect();
        atoms.push(AtomRecipe {
            relation: atom.relation.clone(),
            is_source: *is_source,
            key_recipe,
        });
    }

    Ok(ProvSpec {
        prov_rel: format!("P_{name}"),
        mapping: name,
        columns,
        atoms,
        superfluous: rule.body.len() == 1,
    })
}

/// Create the provenance relation for `spec` in `db`: a base table for
/// multi-source mappings, or a view over the single source relation for
/// superfluous ones.
pub fn create_prov_relation(db: &mut Database, spec: &ProvSpec, rule: &Rule) -> Result<()> {
    if !spec.superfluous {
        db.create_table(spec.schema())?;
        return Ok(());
    }
    // View: project the single body atom onto the spec's columns.
    let bp = compile_body(db, &rule.body)?;
    let exprs: Vec<Expr> = spec
        .columns
        .iter()
        .map(|v| bp.col(v).map(Expr::Col))
        .collect::<Result<_>>()?;
    let plan = Plan::Project {
        input: Box::new(bp.plan),
        exprs,
        names: spec.columns.clone(),
    };
    db.create_view(&spec.prov_rel, plan, spec.schema())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proql_common::tup;
    use proql_datalog::parse::parse_rule;
    use proql_storage::execute;

    /// The running-example catalog: A(id*, sn, len), C(id*, name*),
    /// N(id*, name*, canon), O(name*, h, isAnimal).
    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            Schema::build(
                "A",
                &[
                    ("id", ValueType::Int),
                    ("sn", ValueType::Str),
                    ("len", ValueType::Int),
                ],
                &[0],
            )
            .unwrap(),
        )
        .unwrap();
        db.create_table(
            Schema::build(
                "C",
                &[("id", ValueType::Int), ("name", ValueType::Str)],
                &[0, 1],
            )
            .unwrap(),
        )
        .unwrap();
        db.create_table(
            Schema::build(
                "N",
                &[
                    ("id", ValueType::Int),
                    ("name", ValueType::Str),
                    ("c", ValueType::Bool),
                ],
                &[0, 1],
            )
            .unwrap(),
        )
        .unwrap();
        db.create_table(
            Schema::build(
                "O",
                &[
                    ("name", ValueType::Str),
                    ("h", ValueType::Int),
                    ("an", ValueType::Bool),
                ],
                &[0],
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn m1_spec_matches_paper_figure_2() {
        // m1: C(i, n) :- A(i, s, _), N(i, n, false)  =>  P_m1(i, n)
        let db = db();
        let rule = parse_rule("m1: C(i, n) :- A(i, s, _), N(i, n, false)").unwrap();
        let spec = spec_for_rule(&db, &rule).unwrap();
        assert_eq!(spec.prov_rel, "P_m1");
        assert_eq!(spec.columns, vec!["i", "n"]);
        assert!(!spec.superfluous); // two source atoms
                                    // Recipes: A's key is (i) -> Col(0); N's key (i, n) -> Col(0), Col(1);
                                    // target C's key (i, n).
        assert_eq!(spec.atoms.len(), 3);
        assert_eq!(spec.atoms[0].key_recipe, vec![RecipeTerm::Col(0)]);
        assert_eq!(
            spec.atoms[1].key_recipe,
            vec![RecipeTerm::Col(0), RecipeTerm::Col(1)]
        );
        assert!(!spec.atoms[2].is_source);
    }

    #[test]
    fn m5_spec_matches_paper_figure_2() {
        // m5: O(n, h, true) :- A(i, _, h), C(i, n)  =>  P_m5(i, n)
        let db = db();
        let rule = parse_rule("m5: O(n, h, true) :- A(i, _, h), C(i, n)").unwrap();
        let spec = spec_for_rule(&db, &rule).unwrap();
        assert_eq!(spec.columns, vec!["i", "n"]);
        assert!(!spec.superfluous);
        // O's key is (name) = var n -> Col(1).
        let target = spec.targets().next().unwrap();
        assert_eq!(target.key_recipe, vec![RecipeTerm::Col(1)]);
    }

    #[test]
    fn m2_is_superfluous_projection_view() {
        // m2: N(i, n, true) :- A(i, n, _) — single source, view over A.
        let mut db = db();
        db.insert("A", tup![1, "sn1", 7]).unwrap();
        db.insert("A", tup![2, "sn2", 5]).unwrap();
        let rule = parse_rule("m2: N(i, n, true) :- A(i, n, _)").unwrap();
        let spec = spec_for_rule(&db, &rule).unwrap();
        assert!(spec.superfluous);
        assert_eq!(spec.columns, vec!["i", "n"]);
        create_prov_relation(&mut db, &spec, &rule).unwrap();
        assert!(!db.has_table("P_m2")); // it is a view
        let rel = execute(&db, &Plan::scan("P_m2")).unwrap();
        assert_eq!(rel.sorted_rows(), vec![tup![1, "sn1"], tup![2, "sn2"]]);
    }

    #[test]
    fn constants_in_key_positions_are_reconstructed_not_stored() {
        let db = db();
        // Target N key includes the constant-less pair (i, n); source uses a
        // constant in C's key position `name`.
        let rule = parse_rule("mx: O(n, 1, true) :- C(i, n), N(i, n, false)").unwrap();
        let spec = spec_for_rule(&db, &rule).unwrap();
        assert_eq!(spec.columns, vec!["i", "n"]);
        let row = tup![42, "cn"];
        assert_eq!(spec.atoms[0].key_of(&row), tup![42, "cn"]);
        // Constant key example: target O's key is (n).
        let t = spec.targets().next().unwrap();
        assert_eq!(t.key_of(&row), tup!["cn"]);
    }

    #[test]
    fn constant_key_recipe() {
        let db = db();
        let rule = parse_rule("mc: O('fixed', h, true) :- A(i, s, h)").unwrap();
        let spec = spec_for_rule(&db, &rule).unwrap();
        let t = spec.targets().next().unwrap();
        assert_eq!(t.key_recipe, vec![RecipeTerm::Const(Value::str("fixed"))]);
        assert_eq!(t.key_of(&tup![9]), tup!["fixed"]);
    }

    #[test]
    fn skolem_in_key_position_rejected() {
        let db = db();
        let rule = parse_rule("ms: O(!f(i), h, true) :- A(i, s, h)").unwrap();
        assert!(spec_for_rule(&db, &rule).is_err());
    }

    #[test]
    fn unnamed_mapping_rejected() {
        let db = db();
        let rule = parse_rule("O(n, h, true) :- A(i, n, h)").unwrap();
        assert!(spec_for_rule(&db, &rule).is_err());
    }

    #[test]
    fn prov_schema_keys_all_columns() {
        let db = db();
        let rule = parse_rule("m5: O(n, h, true) :- A(i, _, h), C(i, n)").unwrap();
        let spec = spec_for_rule(&db, &rule).unwrap();
        let schema = spec.schema();
        assert_eq!(schema.name(), "P_m5");
        assert_eq!(schema.key(), &[0, 1]);
    }

    #[test]
    fn translation_body_prepends_prov_atom() {
        let db = db();
        let rule = parse_rule("m5: O(n, h, true) :- A(i, _dc, h), C(i, n)").unwrap();
        let spec = spec_for_rule(&db, &rule).unwrap();
        let body = spec.translation_body(&rule);
        assert_eq!(body.len(), 3);
        assert_eq!(body[0].to_string(), "P_m5(i, n)");
        assert_eq!(body[1].relation, "A");
    }

    #[test]
    fn superfluous_view_applies_constant_filters() {
        let mut db = db();
        db.insert("N", tup![1, "x", true]).unwrap();
        db.insert("N", tup![2, "y", false]).unwrap();
        // m3-like with a constant in the body: only canon=false rows derive.
        let rule = parse_rule("m3: C(i, n) :- N(i, n, false)").unwrap();
        let spec = spec_for_rule(&db, &rule).unwrap();
        create_prov_relation(&mut db, &spec, &rule).unwrap();
        let rel = execute(&db, &Plan::scan("P_m3")).unwrap();
        assert_eq!(rel.rows, vec![tup![2, "y"]]);
    }
}
