//! Relational encoding of provenance (paper §4.1).
//!
//! Each schema mapping `m` gets a provenance relation `P_m` with **one row
//! per derivation**. Columns are the distinct variables occurring in a key
//! position of any source or target atom — attributes constrained by the
//! mapping to be equal are stored once. Constants in key positions are not
//! stored: they are reconstructed from the mapping definition.
//!
//! When a mapping has a single source atom (a projection, like the paper's
//! `m2`), its provenance relation is *superfluous*: it is exactly a
//! projection of the source relation and is created as a virtual view
//! instead of a table.

use proql_common::{Attribute, Error, Result, Schema, Tuple, Value, ValueType};
use proql_datalog::ast::{Atom, Rule, Term};
use proql_datalog::compile::compile_body;
use proql_storage::{Database, Expr, Plan};

/// How to reconstruct one key attribute of an atom from a `P_m` row.
#[derive(Debug, Clone, PartialEq)]
pub enum RecipeTerm {
    /// Read the provenance-relation column at this position.
    Col(usize),
    /// The mapping pins this key attribute to a constant.
    Const(Value),
}

/// How to reconstruct the key of one atom (source or target) of a mapping
/// from a row of its provenance relation.
#[derive(Debug, Clone, PartialEq)]
pub struct AtomRecipe {
    /// The atom's relation.
    pub relation: String,
    /// True for body (source) atoms, false for head (target) atoms.
    pub is_source: bool,
    /// One entry per key attribute of `relation`, in key order.
    pub key_recipe: Vec<RecipeTerm>,
}

impl AtomRecipe {
    /// Reconstruct the atom's key from a provenance row.
    pub fn key_of(&self, prov_row: &Tuple) -> Tuple {
        Tuple::new(
            self.key_recipe
                .iter()
                .map(|r| match r {
                    RecipeTerm::Col(c) => prov_row.get(*c).clone(),
                    RecipeTerm::Const(v) => v.clone(),
                })
                .collect(),
        )
    }
}

/// The provenance-relation specification of one mapping.
#[derive(Debug, Clone)]
pub struct ProvSpec {
    /// Mapping name (`m1`, `L1`, ...).
    pub mapping: String,
    /// Name of the provenance relation (`P_m1`).
    pub prov_rel: String,
    /// Column variables, in order.
    pub columns: Vec<String>,
    /// Reconstruction recipes: sources first (body order), then targets.
    pub atoms: Vec<AtomRecipe>,
    /// True when `P_m` is a view over the single source relation.
    pub superfluous: bool,
}

impl ProvSpec {
    /// The schema of the provenance relation: all columns, all-key (a
    /// derivation is identified by its full variable binding).
    pub fn schema(&self) -> Schema {
        Schema::new(
            &self.prov_rel,
            self.columns
                .iter()
                .map(|c| Attribute::new(c.clone(), ValueType::Null))
                .collect(),
            (0..self.columns.len()).collect(),
        )
        .expect("provenance schema construction cannot fail")
    }

    /// Column index of a variable.
    pub fn column_of(&self, var: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == var)
    }

    /// Recipes of the source atoms.
    pub fn sources(&self) -> impl Iterator<Item = &AtomRecipe> {
        self.atoms.iter().filter(|a| a.is_source)
    }

    /// Recipes of the target atoms.
    pub fn targets(&self) -> impl Iterator<Item = &AtomRecipe> {
        self.atoms.iter().filter(|a| !a.is_source)
    }

    /// The body atoms of the ProQL-translation rule for this mapping: the
    /// provenance atom `P_m(columns...)` followed by the source atoms with
    /// their original terms (paper Example 4.2:
    /// `O(n,h,true) :- P5(i,n), A(i,_,h), C(i,n)`).
    pub fn translation_body(&self, rule: &Rule) -> Vec<Atom> {
        let mut body = Vec::with_capacity(1 + rule.body.len());
        body.push(Atom::new(
            self.prov_rel.clone(),
            self.columns.iter().map(|c| Term::var(c.clone())).collect(),
        ));
        body.extend(rule.body.iter().cloned());
        body
    }
}

/// Compute the provenance spec for `rule`. Every atom's relation must exist
/// in `db` (needed for key positions), and no key position may hold a Skolem
/// term (its value would not be reconstructible from stored columns).
pub fn spec_for_rule(db: &Database, rule: &Rule) -> Result<ProvSpec> {
    let name = rule
        .name
        .clone()
        .ok_or_else(|| Error::Datalog("mappings must be named".into()))?;
    let mut columns: Vec<String> = Vec::new();
    let mut atoms: Vec<AtomRecipe> = Vec::new();

    // First pass: collect distinct key variables, body atoms first.
    let all_atoms: Vec<(&Atom, bool)> = rule
        .body
        .iter()
        .map(|a| (a, true))
        .chain(rule.heads.iter().map(|a| (a, false)))
        .collect();
    for (atom, _) in &all_atoms {
        let schema = db.schema_of(&atom.relation)?;
        if schema.arity() != atom.arity() {
            return Err(Error::Datalog(format!(
                "atom {atom} arity mismatch with relation {}",
                atom.relation
            )));
        }
        for &kpos in &schema.effective_key() {
            match &atom.terms[kpos] {
                Term::Var(v) => {
                    if !columns.contains(v) {
                        columns.push(v.clone());
                    }
                }
                Term::Const(_) => {}
                Term::Skolem(..) => {
                    return Err(Error::Datalog(format!(
                        "mapping {name}: Skolem term in key position of {atom}; \
                         provenance would not be reconstructible"
                    )));
                }
            }
        }
    }

    // Second pass: build recipes.
    for (atom, is_source) in &all_atoms {
        let schema = db.schema_of(&atom.relation)?;
        let key_recipe = schema
            .effective_key()
            .iter()
            .map(|&kpos| match &atom.terms[kpos] {
                Term::Var(v) => RecipeTerm::Col(
                    columns
                        .iter()
                        .position(|c| c == v)
                        .expect("collected above"),
                ),
                Term::Const(v) => RecipeTerm::Const(v.clone()),
                Term::Skolem(..) => unreachable!("rejected above"),
            })
            .collect();
        atoms.push(AtomRecipe {
            relation: atom.relation.clone(),
            is_source: *is_source,
            key_recipe,
        });
    }

    Ok(ProvSpec {
        prov_rel: format!("P_{name}"),
        mapping: name,
        columns,
        atoms,
        superfluous: rule.body.len() == 1,
    })
}

/// Create the provenance relation for `spec` in `db`: a base table for
/// multi-source mappings, or a view over the single source relation for
/// superfluous ones.
pub fn create_prov_relation(db: &mut Database, spec: &ProvSpec, rule: &Rule) -> Result<()> {
    if !spec.superfluous {
        db.create_table(spec.schema())?;
        return Ok(());
    }
    // View: project the single body atom onto the spec's columns.
    let bp = compile_body(db, &rule.body)?;
    let exprs: Vec<Expr> = spec
        .columns
        .iter()
        .map(|v| bp.col(v).map(Expr::Col))
        .collect::<Result<_>>()?;
    let plan = Plan::Project {
        input: Box::new(bp.plan),
        exprs,
        names: spec.columns.clone(),
    };
    db.create_view(&spec.prov_rel, plan, spec.schema())
}

pub mod wire {
    //! Byte-level wire encoding of sealed [`GraphDelta`]s and snapshot
    //! transfers — the payload format of the replication stream's
    //! `REPL_DELTA` / `REPL_SNAPSHOT` frames (see `proql-service`).
    //!
    //! All integers are little-endian and fixed-width; strings are
    //! length-prefixed UTF-8. Every payload starts with a one-byte format
    //! version ([`WIRE_VERSION`]) so the stream format can evolve
    //! independently of the frame-layer protocol version. Decoding is
    //! total: truncated or corrupt payloads yield `Err`, never a panic —
    //! replicas treat a decode failure like a broken chain and fall back
    //! to a snapshot transfer.
    //!
    //! A delta frame carries `(version, digest, sealed_at_micros,
    //! GraphDelta)` where `digest` is the primary's provenance-graph
    //! digest **at** `version` (0 when not computed, e.g. mid-catch-up)
    //! and `sealed_at_micros` is the primary's wall clock at send time
    //! (for apply-lag measurement). The delta's `touched` set doubles as
    //! the mutation's write set — replicas feed it to their result-cache
    //! maintenance exactly like a local write's.
    //!
    //! Since wire v2, snapshot frames are **dictionary-encoded**: each
    //! table is prefixed with its distinct strings (first-occurrence
    //! order) and string cells in rows are 4-byte code references (tag 5)
    //! into that dictionary, so a snapshot ships every distinct string
    //! exactly once — mirroring the storage layer's dictionary-encoded
    //! columns. Delta frames are small and keep inline strings.

    use super::{Error, Result, Tuple, Value};
    use crate::delta::{DeltaOp, GraphDelta, RowChange};

    /// Format version byte leading every wire payload.
    pub const WIRE_VERSION: u8 = 2;

    /// A decoded `REPL_DELTA` payload.
    #[derive(Debug, Clone, PartialEq)]
    pub struct DeltaFrame {
        /// The version this delta seals (applies on top of `version - 1`).
        pub version: u64,
        /// Provenance-graph digest at `version`; 0 when not computed.
        pub digest: u64,
        /// Primary wall clock (µs since the UNIX epoch) at send time.
        pub sealed_at_micros: u64,
        /// The sealed change set (its `touched` set is the write set).
        pub delta: GraphDelta,
    }

    /// A decoded `REPL_SNAPSHOT` payload: full stored-table contents.
    #[derive(Debug, Clone, PartialEq)]
    pub struct SnapshotFrame {
        /// The version the snapshot captures.
        pub version: u64,
        /// Provenance-graph digest at `version`; 0 when not computed.
        pub digest: u64,
        /// Primary wall clock (µs since the UNIX epoch) at send time.
        pub sealed_at_micros: u64,
        /// Every stored table's full contents, sorted by name.
        pub tables: Vec<(String, Vec<Tuple>)>,
    }

    fn put_u32(buf: &mut Vec<u8>, v: u32) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64(buf: &mut Vec<u8>, v: u64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_str(buf: &mut Vec<u8>, s: &str) {
        put_u32(buf, s.len() as u32);
        buf.extend_from_slice(s.as_bytes());
    }

    fn put_value(buf: &mut Vec<u8>, v: &Value) {
        match v {
            Value::Null => buf.push(0),
            Value::Bool(b) => {
                buf.push(1);
                buf.push(*b as u8);
            }
            Value::Int(i) => {
                buf.push(2);
                buf.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(f) => {
                buf.push(3);
                buf.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                buf.push(4);
                put_str(buf, s);
            }
        }
    }

    fn put_tuple(buf: &mut Vec<u8>, t: &Tuple) {
        put_u32(buf, t.arity() as u32);
        for v in t.values() {
            put_value(buf, v);
        }
    }

    fn put_delta(buf: &mut Vec<u8>, d: &GraphDelta) {
        put_u32(buf, d.ops.len() as u32);
        for op in &d.ops {
            match op {
                DeltaOp::AddDerivation { mapping, row } => {
                    buf.push(0);
                    put_str(buf, mapping);
                    put_tuple(buf, row);
                }
                DeltaOp::RemoveDerivation { mapping, row } => {
                    buf.push(1);
                    put_str(buf, mapping);
                    put_tuple(buf, row);
                }
                DeltaOp::SetValues { relation, key } => {
                    buf.push(2);
                    put_str(buf, relation);
                    put_tuple(buf, key);
                }
            }
        }
        put_u32(buf, d.rows.len() as u32);
        for rc in &d.rows {
            put_str(buf, &rc.table);
            buf.push(rc.added as u8);
            put_tuple(buf, &rc.row);
        }
        put_u32(buf, d.touched.len() as u32);
        for t in &d.touched {
            put_str(buf, t);
        }
    }

    /// A bounds-checked little-endian reader over a wire payload.
    struct Reader<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        fn new(buf: &'a [u8]) -> Self {
            Reader { buf, pos: 0 }
        }

        fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
            let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
            let end = end.ok_or_else(|| Error::Other("truncated replication payload".into()))?;
            let out = &self.buf[self.pos..end];
            self.pos = end;
            Ok(out)
        }

        fn u8(&mut self) -> Result<u8> {
            Ok(self.bytes(1)?[0])
        }

        fn u32(&mut self) -> Result<u32> {
            Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
        }

        fn u64(&mut self) -> Result<u64> {
            Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
        }

        /// A collection length, sanity-capped against the bytes actually
        /// remaining so corrupt lengths cannot trigger huge allocations.
        fn len(&mut self, min_elem_bytes: usize) -> Result<usize> {
            let n = self.u32()? as usize;
            let remaining = self.buf.len() - self.pos;
            if n.saturating_mul(min_elem_bytes.max(1)) > remaining {
                return Err(Error::Other(format!(
                    "replication payload declares {n} elements with {remaining} bytes left"
                )));
            }
            Ok(n)
        }

        fn str(&mut self) -> Result<String> {
            let n = self.len(1)?;
            let raw = self.bytes(n)?;
            String::from_utf8(raw.to_vec())
                .map_err(|_| Error::Other("non-UTF-8 string in replication payload".into()))
        }

        fn value(&mut self) -> Result<Value> {
            Ok(match self.u8()? {
                0 => Value::Null,
                1 => Value::Bool(self.u8()? != 0),
                2 => Value::Int(i64::from_le_bytes(self.bytes(8)?.try_into().unwrap())),
                3 => Value::Float(f64::from_bits(self.u64()?)),
                4 => Value::Str(self.str()?.into()),
                t => {
                    return Err(Error::Other(format!(
                        "unknown value tag {t} in replication payload"
                    )))
                }
            })
        }

        fn tuple(&mut self) -> Result<Tuple> {
            let n = self.len(1)?;
            let mut vals = Vec::with_capacity(n);
            for _ in 0..n {
                vals.push(self.value()?);
            }
            Ok(Tuple::new(vals))
        }

        /// A value in snapshot-row context, where tag 5 is a code
        /// reference into the table's string dictionary. Out-of-range
        /// codes are a decode error, never a panic.
        fn value_coded(&mut self, dict: &[Value]) -> Result<Value> {
            if self.buf.get(self.pos) == Some(&5) {
                self.pos += 1;
                let code = self.u32()? as usize;
                return dict.get(code).cloned().ok_or_else(|| {
                    Error::Other(format!(
                        "snapshot dictionary code {code} out of range ({} entries)",
                        dict.len()
                    ))
                });
            }
            self.value()
        }

        fn tuple_coded(&mut self, dict: &[Value]) -> Result<Tuple> {
            let n = self.len(1)?;
            let mut vals = Vec::with_capacity(n);
            for _ in 0..n {
                vals.push(self.value_coded(dict)?);
            }
            Ok(Tuple::new(vals))
        }

        fn delta(&mut self) -> Result<GraphDelta> {
            let mut d = GraphDelta::default();
            let n_ops = self.len(5)?;
            for _ in 0..n_ops {
                let tag = self.u8()?;
                let name = self.str()?;
                let t = self.tuple()?;
                d.ops.push(match tag {
                    0 => DeltaOp::AddDerivation {
                        mapping: name,
                        row: t,
                    },
                    1 => DeltaOp::RemoveDerivation {
                        mapping: name,
                        row: t,
                    },
                    2 => DeltaOp::SetValues {
                        relation: name,
                        key: t,
                    },
                    x => {
                        return Err(Error::Other(format!(
                            "unknown delta op tag {x} in replication payload"
                        )))
                    }
                });
            }
            let n_rows = self.len(6)?;
            for _ in 0..n_rows {
                let table = self.str()?;
                let added = self.u8()? != 0;
                let row = self.tuple()?;
                d.rows.push(RowChange { table, row, added });
            }
            let n_touched = self.len(5)?;
            for _ in 0..n_touched {
                d.touched.insert(self.str()?);
            }
            Ok(d)
        }

        fn header(&mut self, what: &str) -> Result<(u64, u64, u64)> {
            let ver = self.u8()?;
            if ver != WIRE_VERSION {
                return Err(Error::Other(format!(
                    "unsupported {what} wire format version {ver} (expected {WIRE_VERSION})"
                )));
            }
            Ok((self.u64()?, self.u64()?, self.u64()?))
        }
    }

    /// Encode a `REPL_DELTA` payload from borrowed parts — the streaming
    /// hot path, which must not clone the sealed delta per subscriber.
    /// The delta must not be overflowed (overflowed entries carry no ops
    /// and cannot be replayed; primaries ship a snapshot instead).
    pub fn encode_delta_parts(
        version: u64,
        digest: u64,
        sealed_at_micros: u64,
        delta: &GraphDelta,
    ) -> Vec<u8> {
        debug_assert!(!delta.is_overflowed());
        let mut buf = Vec::with_capacity(64);
        buf.push(WIRE_VERSION);
        put_u64(&mut buf, version);
        put_u64(&mut buf, digest);
        put_u64(&mut buf, sealed_at_micros);
        put_delta(&mut buf, delta);
        buf
    }

    /// Encode a `REPL_DELTA` payload (see [`encode_delta_parts`]).
    pub fn encode_delta_frame(f: &DeltaFrame) -> Vec<u8> {
        encode_delta_parts(f.version, f.digest, f.sealed_at_micros, &f.delta)
    }

    /// Decode a `REPL_DELTA` payload.
    pub fn decode_delta_frame(buf: &[u8]) -> Result<DeltaFrame> {
        let mut r = Reader::new(buf);
        let (version, digest, sealed_at_micros) = r.header("delta")?;
        let delta = r.delta()?;
        Ok(DeltaFrame {
            version,
            digest,
            sealed_at_micros,
            delta,
        })
    }

    /// Encode a `REPL_SNAPSHOT` payload from borrowed parts.
    ///
    /// Each table is dictionary-encoded: its distinct strings are written
    /// once, in first-occurrence order across the table's rows, and every
    /// string cell in a row is a 4-byte code reference (tag 5) into that
    /// dictionary. A snapshot therefore ships each distinct string exactly
    /// once per table regardless of how many rows repeat it.
    pub fn encode_snapshot_parts(
        version: u64,
        digest: u64,
        sealed_at_micros: u64,
        tables: &[(String, Vec<Tuple>)],
    ) -> Vec<u8> {
        let mut buf = Vec::with_capacity(256);
        buf.push(WIRE_VERSION);
        put_u64(&mut buf, version);
        put_u64(&mut buf, digest);
        put_u64(&mut buf, sealed_at_micros);
        put_u32(&mut buf, tables.len() as u32);
        for (name, rows) in tables {
            put_str(&mut buf, name);
            let mut index: std::collections::HashMap<&str, u32> = std::collections::HashMap::new();
            let mut dict: Vec<&str> = Vec::new();
            for row in rows {
                for v in row.values() {
                    if let Value::Str(s) = v {
                        index.entry(s.as_ref()).or_insert_with(|| {
                            dict.push(s.as_ref());
                            (dict.len() - 1) as u32
                        });
                    }
                }
            }
            put_u32(&mut buf, dict.len() as u32);
            for s in &dict {
                put_str(&mut buf, s);
            }
            put_u32(&mut buf, rows.len() as u32);
            for row in rows {
                put_u32(&mut buf, row.arity() as u32);
                for v in row.values() {
                    match v {
                        Value::Str(s) => {
                            buf.push(5);
                            put_u32(&mut buf, index[s.as_ref()]);
                        }
                        other => put_value(&mut buf, other),
                    }
                }
            }
        }
        buf
    }

    /// Encode a `REPL_SNAPSHOT` payload (see [`encode_snapshot_parts`]).
    pub fn encode_snapshot_frame(f: &SnapshotFrame) -> Vec<u8> {
        encode_snapshot_parts(f.version, f.digest, f.sealed_at_micros, &f.tables)
    }

    /// Decode a `REPL_SNAPSHOT` payload. Code references are resolved
    /// against the table's dictionary, so the returned frame holds plain
    /// [`Value::Str`] tuples; rows that repeat a string share one
    /// allocation.
    pub fn decode_snapshot_frame(buf: &[u8]) -> Result<SnapshotFrame> {
        let mut r = Reader::new(buf);
        let (version, digest, sealed_at_micros) = r.header("snapshot")?;
        let n_tables = r.len(8)?;
        let mut tables = Vec::with_capacity(n_tables);
        for _ in 0..n_tables {
            let name = r.str()?;
            let n_dict = r.len(4)?;
            let mut dict: Vec<Value> = Vec::with_capacity(n_dict);
            for _ in 0..n_dict {
                dict.push(Value::Str(r.str()?.into()));
            }
            let n_rows = r.len(4)?;
            let mut rows = Vec::with_capacity(n_rows);
            for _ in 0..n_rows {
                rows.push(r.tuple_coded(&dict)?);
            }
            tables.push((name, rows));
        }
        Ok(SnapshotFrame {
            version,
            digest,
            sealed_at_micros,
            tables,
        })
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use proql_common::tup;

        fn sample_delta() -> GraphDelta {
            let mut d = GraphDelta::default();
            d.ops.push(DeltaOp::AddDerivation {
                mapping: "m1".into(),
                row: tup![1, "x", 2.5],
            });
            d.ops.push(DeltaOp::RemoveDerivation {
                mapping: "m2".into(),
                row: tup![3],
            });
            d.ops.push(DeltaOp::SetValues {
                relation: "A".into(),
                key: tup![7, true],
            });
            d.rows.push(RowChange {
                table: "A_l".into(),
                row: tup![7, true, "payload"],
                added: true,
            });
            d.rows.push(RowChange {
                table: "P_m1".into(),
                row: Tuple::new(vec![Value::Null, Value::Float(f64::NAN)]),
                added: false,
            });
            d.touched.insert("A".into());
            d.touched.insert("A_l".into());
            d
        }

        #[test]
        fn delta_frame_roundtrips() {
            let f = DeltaFrame {
                version: 42,
                digest: 0xDEAD_BEEF_CAFE_F00D,
                sealed_at_micros: 1_700_000_000_000_000,
                delta: sample_delta(),
            };
            let bytes = encode_delta_frame(&f);
            let back = decode_delta_frame(&bytes).unwrap();
            assert_eq!(back.version, f.version);
            assert_eq!(back.digest, f.digest);
            assert_eq!(back.sealed_at_micros, f.sealed_at_micros);
            assert_eq!(back.delta, f.delta);
        }

        #[test]
        fn snapshot_frame_roundtrips() {
            let f = SnapshotFrame {
                version: 9,
                digest: 17,
                sealed_at_micros: 3,
                tables: vec![
                    ("A".into(), vec![tup![1, "a"], tup![2, "b"]]),
                    ("B".into(), vec![]),
                ],
            };
            let bytes = encode_snapshot_frame(&f);
            assert_eq!(decode_snapshot_frame(&bytes).unwrap(), f);
        }

        #[test]
        fn truncation_and_corruption_error_cleanly() {
            let f = DeltaFrame {
                version: 1,
                digest: 2,
                sealed_at_micros: 3,
                delta: sample_delta(),
            };
            let bytes = encode_delta_frame(&f);
            for cut in 0..bytes.len() {
                assert!(
                    decode_delta_frame(&bytes[..cut]).is_err(),
                    "prefix of {cut} bytes must fail to decode"
                );
            }
            let mut wrong_ver = bytes.clone();
            wrong_ver[0] = WIRE_VERSION + 1;
            assert!(decode_delta_frame(&wrong_ver).is_err());
            // A corrupt length cannot trigger a huge allocation.
            let mut huge = bytes;
            let off = 25; // first collection length (ops count)
            huge[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
            assert!(decode_delta_frame(&huge).is_err());
        }

        #[test]
        fn snapshot_dictionary_ships_each_string_once() {
            let shared = "a-reasonably-long-shared-string-value";
            let rows: Vec<Tuple> = (0..500).map(|i| tup![i, shared]).collect();
            let f = SnapshotFrame {
                version: 5,
                digest: 6,
                sealed_at_micros: 7,
                tables: vec![("A".into(), rows)],
            };
            let bytes = encode_snapshot_frame(&f);
            assert_eq!(decode_snapshot_frame(&bytes).unwrap(), f);
            // Inline encoding would pay the string body per row; the
            // dictionary pays it once plus a 4-byte code per row.
            assert!(
                bytes.len() < 500 * shared.len(),
                "dictionary-encoded snapshot is {} bytes, inline floor is {}",
                bytes.len(),
                500 * shared.len()
            );
        }

        #[test]
        fn snapshot_truncation_and_corruption_error_cleanly() {
            let f = SnapshotFrame {
                version: 1,
                digest: 2,
                sealed_at_micros: 3,
                tables: vec![
                    ("A".into(), vec![tup![1, "x"], tup![2, "y"], tup![3, "x"]]),
                    ("B".into(), vec![tup![true, 2.5, "z"]]),
                ],
            };
            let bytes = encode_snapshot_frame(&f);
            assert_eq!(decode_snapshot_frame(&bytes).unwrap(), f);
            for cut in 0..bytes.len() {
                assert!(
                    decode_snapshot_frame(&bytes[..cut]).is_err(),
                    "prefix of {cut} bytes must fail to decode"
                );
            }
            // The last cell of the last row is a string, so the payload
            // ends with its 4-byte dictionary code; an out-of-range code
            // must be a clean error, never a panic or wrong string.
            let mut bad_code = bytes.clone();
            let n = bad_code.len();
            bad_code[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
            assert!(decode_snapshot_frame(&bad_code).is_err());
            let mut wrong_ver = bytes;
            wrong_ver[0] = WIRE_VERSION + 1;
            assert!(decode_snapshot_frame(&wrong_ver).is_err());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proql_common::tup;
    use proql_datalog::parse::parse_rule;
    use proql_storage::execute;

    /// The running-example catalog: A(id*, sn, len), C(id*, name*),
    /// N(id*, name*, canon), O(name*, h, isAnimal).
    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            Schema::build(
                "A",
                &[
                    ("id", ValueType::Int),
                    ("sn", ValueType::Str),
                    ("len", ValueType::Int),
                ],
                &[0],
            )
            .unwrap(),
        )
        .unwrap();
        db.create_table(
            Schema::build(
                "C",
                &[("id", ValueType::Int), ("name", ValueType::Str)],
                &[0, 1],
            )
            .unwrap(),
        )
        .unwrap();
        db.create_table(
            Schema::build(
                "N",
                &[
                    ("id", ValueType::Int),
                    ("name", ValueType::Str),
                    ("c", ValueType::Bool),
                ],
                &[0, 1],
            )
            .unwrap(),
        )
        .unwrap();
        db.create_table(
            Schema::build(
                "O",
                &[
                    ("name", ValueType::Str),
                    ("h", ValueType::Int),
                    ("an", ValueType::Bool),
                ],
                &[0],
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn m1_spec_matches_paper_figure_2() {
        // m1: C(i, n) :- A(i, s, _), N(i, n, false)  =>  P_m1(i, n)
        let db = db();
        let rule = parse_rule("m1: C(i, n) :- A(i, s, _), N(i, n, false)").unwrap();
        let spec = spec_for_rule(&db, &rule).unwrap();
        assert_eq!(spec.prov_rel, "P_m1");
        assert_eq!(spec.columns, vec!["i", "n"]);
        assert!(!spec.superfluous); // two source atoms
                                    // Recipes: A's key is (i) -> Col(0); N's key (i, n) -> Col(0), Col(1);
                                    // target C's key (i, n).
        assert_eq!(spec.atoms.len(), 3);
        assert_eq!(spec.atoms[0].key_recipe, vec![RecipeTerm::Col(0)]);
        assert_eq!(
            spec.atoms[1].key_recipe,
            vec![RecipeTerm::Col(0), RecipeTerm::Col(1)]
        );
        assert!(!spec.atoms[2].is_source);
    }

    #[test]
    fn m5_spec_matches_paper_figure_2() {
        // m5: O(n, h, true) :- A(i, _, h), C(i, n)  =>  P_m5(i, n)
        let db = db();
        let rule = parse_rule("m5: O(n, h, true) :- A(i, _, h), C(i, n)").unwrap();
        let spec = spec_for_rule(&db, &rule).unwrap();
        assert_eq!(spec.columns, vec!["i", "n"]);
        assert!(!spec.superfluous);
        // O's key is (name) = var n -> Col(1).
        let target = spec.targets().next().unwrap();
        assert_eq!(target.key_recipe, vec![RecipeTerm::Col(1)]);
    }

    #[test]
    fn m2_is_superfluous_projection_view() {
        // m2: N(i, n, true) :- A(i, n, _) — single source, view over A.
        let mut db = db();
        db.insert("A", tup![1, "sn1", 7]).unwrap();
        db.insert("A", tup![2, "sn2", 5]).unwrap();
        let rule = parse_rule("m2: N(i, n, true) :- A(i, n, _)").unwrap();
        let spec = spec_for_rule(&db, &rule).unwrap();
        assert!(spec.superfluous);
        assert_eq!(spec.columns, vec!["i", "n"]);
        create_prov_relation(&mut db, &spec, &rule).unwrap();
        assert!(!db.has_table("P_m2")); // it is a view
        let rel = execute(&db, &Plan::scan("P_m2")).unwrap();
        assert_eq!(rel.sorted_rows(), vec![tup![1, "sn1"], tup![2, "sn2"]]);
    }

    #[test]
    fn constants_in_key_positions_are_reconstructed_not_stored() {
        let db = db();
        // Target N key includes the constant-less pair (i, n); source uses a
        // constant in C's key position `name`.
        let rule = parse_rule("mx: O(n, 1, true) :- C(i, n), N(i, n, false)").unwrap();
        let spec = spec_for_rule(&db, &rule).unwrap();
        assert_eq!(spec.columns, vec!["i", "n"]);
        let row = tup![42, "cn"];
        assert_eq!(spec.atoms[0].key_of(&row), tup![42, "cn"]);
        // Constant key example: target O's key is (n).
        let t = spec.targets().next().unwrap();
        assert_eq!(t.key_of(&row), tup!["cn"]);
    }

    #[test]
    fn constant_key_recipe() {
        let db = db();
        let rule = parse_rule("mc: O('fixed', h, true) :- A(i, s, h)").unwrap();
        let spec = spec_for_rule(&db, &rule).unwrap();
        let t = spec.targets().next().unwrap();
        assert_eq!(t.key_recipe, vec![RecipeTerm::Const(Value::str("fixed"))]);
        assert_eq!(t.key_of(&tup![9]), tup!["fixed"]);
    }

    #[test]
    fn skolem_in_key_position_rejected() {
        let db = db();
        let rule = parse_rule("ms: O(!f(i), h, true) :- A(i, s, h)").unwrap();
        assert!(spec_for_rule(&db, &rule).is_err());
    }

    #[test]
    fn unnamed_mapping_rejected() {
        let db = db();
        let rule = parse_rule("O(n, h, true) :- A(i, n, h)").unwrap();
        assert!(spec_for_rule(&db, &rule).is_err());
    }

    #[test]
    fn prov_schema_keys_all_columns() {
        let db = db();
        let rule = parse_rule("m5: O(n, h, true) :- A(i, _, h), C(i, n)").unwrap();
        let spec = spec_for_rule(&db, &rule).unwrap();
        let schema = spec.schema();
        assert_eq!(schema.name(), "P_m5");
        assert_eq!(schema.key(), &[0, 1]);
    }

    #[test]
    fn translation_body_prepends_prov_atom() {
        let db = db();
        let rule = parse_rule("m5: O(n, h, true) :- A(i, _dc, h), C(i, n)").unwrap();
        let spec = spec_for_rule(&db, &rule).unwrap();
        let body = spec.translation_body(&rule);
        assert_eq!(body.len(), 3);
        assert_eq!(body[0].to_string(), "P_m5(i, n)");
        assert_eq!(body[1].relation, "A");
    }

    #[test]
    fn superfluous_view_applies_constant_filters() {
        let mut db = db();
        db.insert("N", tup![1, "x", true]).unwrap();
        db.insert("N", tup![2, "y", false]).unwrap();
        // m3-like with a constant in the body: only canon=false rows derive.
        let rule = parse_rule("m3: C(i, n) :- N(i, n, false)").unwrap();
        let spec = spec_for_rule(&db, &rule).unwrap();
        create_prov_relation(&mut db, &spec, &rule).unwrap();
        let rel = execute(&db, &Plan::scan("P_m3")).unwrap();
        assert_eq!(rel.rows, vec![tup![2, "y"]]);
    }
}
