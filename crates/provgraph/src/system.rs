//! The provenance system: database + mappings + provenance capture.
//!
//! [`ProvenanceSystem`] owns the relational [`Database`], the mapping
//! program, and the per-mapping provenance specs. Running
//! [`ProvenanceSystem::run_exchange`] materializes all public relations
//! (data exchange, §2) while recording one provenance row per derivation
//! through the Datalog engine's firing hook.
//!
//! # The delta-tracked write path
//!
//! Every mutation through this type's API stages a [`GraphDelta`] — the
//! exact change it makes to the decoded provenance graph — and **seals**
//! it when the mutation completes: the version counter bumps by one and
//! the delta is appended to a bounded [`DeltaLog`]. Consumers holding a
//! graph built at an older version patch it forward through
//! [`ProvenanceSystem::delta_entries`] instead of rebuilding; the query
//! service derives write sets from the same entries
//! ([`ProvenanceSystem::write_set_since`]). Out-of-band mutations
//! (writing `db` directly + [`ProvenanceSystem::bump_version`], schema
//! changes) break the chain, forcing one full rebuild.
//!
//! Repeated exchanges are **incremental**: once a fixpoint has been
//! reached, later [`ProvenanceSystem::run_exchange`] calls seed the
//! semi-naive evaluation with only the local rows inserted since, so the
//! cost of exchanging a point write is proportional to what it derives,
//! not to the database.

use crate::delta::{DeltaLog, DeltaOp, GraphDelta};
use crate::encode::{create_prov_relation, spec_for_rule, ProvSpec};
use crate::schema_graph::SchemaGraph;
use proql_common::{Error, Result, Schema, Tuple, Value};
use proql_datalog::ast::{Program, Rule, Term};
use proql_datalog::eval::{run_program, run_program_seeded, Bindings, EvalStats, FiringHook};
use proql_datalog::parse::parse_rule;
use proql_storage::Database;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Suffix of local-contribution tables: relation `A` gets `A_l`.
pub const LOCAL_SUFFIX: &str = "_l";

/// A CDSS-style provenance system.
#[derive(Debug, Clone, Default)]
pub struct ProvenanceSystem {
    /// The backing database: public relations, local contribution tables,
    /// and provenance relations (tables or views).
    pub db: Database,
    program: Program,
    specs: Vec<ProvSpec>,
    local_rels: HashSet<String>,
    exchanged: bool,
    version: u64,
    /// Row-level matchers for superfluous (view-backed) provenance
    /// relations: given a base-table row, produce the view row it
    /// contributes, so writes to the base table translate to graph deltas.
    matchers: Vec<SuperfluousMatcher>,
    /// Ops staged by the mutation currently in progress.
    staged: GraphDelta,
    /// Sealed per-version deltas (bounded history).
    deltas: DeltaLog,
    /// False when some superfluous mapping could not be compiled into a
    /// matcher: deltas would be incomplete, so sealing resets the chain.
    trackable: bool,
    /// Local rows inserted since the last exchange — the seeds of the
    /// next incremental exchange round.
    pending_exchange: Vec<(String, Tuple)>,
    /// True when the database is known to be at the program's fixpoint
    /// modulo `pending_exchange` (enables incremental exchange).
    at_fixpoint: bool,
}

impl ProvenanceSystem {
    /// Empty system.
    pub fn new() -> Self {
        ProvenanceSystem {
            trackable: true,
            deltas: DeltaLog::from_env(),
            ..ProvenanceSystem::default()
        }
    }

    /// Monotonically increasing mutation counter. Every mutation through
    /// this type's API bumps it; consumers that cache anything derived
    /// from the system (the engine's provenance graph, the query
    /// service's result cache) compare versions instead of relying on
    /// explicit invalidation calls.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Record an out-of-band mutation (a caller writing through the
    /// public `db` field directly). Bumps [`ProvenanceSystem::version`]
    /// so cached derived state is dropped on next use, and **breaks the
    /// delta chain** — the next graph consumer rebuilds from scratch, and
    /// the next exchange runs a full bootstrap.
    pub fn bump_version(&mut self) {
        self.version += 1;
        self.staged = GraphDelta::default();
        self.deltas.reset(self.version);
        self.at_fixpoint = false;
        self.pending_exchange.clear();
    }

    /// A version bump for tracked schema-level changes (rare, setup-time):
    /// the graph delta chain restarts, but incremental-exchange state is
    /// preserved by the caller where sound.
    fn bump_untracked(&mut self) {
        self.version += 1;
        self.staged = GraphDelta::default();
        self.deltas.reset(self.version);
        self.at_fixpoint = false;
    }

    /// Seal the staged delta: bump the version once (unconditionally —
    /// callers that want a no-op to skip the bump guard with
    /// [`ProvenanceSystem::commit_tracked_mutation`]) and append the
    /// entry covering it. An untrackable or op-overflowed entry resets
    /// the chain instead — consumers rebuild once.
    fn seal_delta(&mut self) {
        self.version += 1;
        let staged = std::mem::take(&mut self.staged);
        if self.trackable && !staged.overflowed {
            self.deltas.push(self.version, staged);
        } else {
            self.deltas.reset(self.version);
        }
    }

    /// Seal the staged delta **iff** the current tracked mutation changed
    /// anything, bumping the version exactly once. Multi-step mutators
    /// (CDSS deletion propagation) route every row change through
    /// [`ProvenanceSystem::delete_row_tracked`] and call this at the end —
    /// on the error path too, so partially applied cascades still
    /// invalidate version-checked caches. Returns whether a bump happened.
    pub fn commit_tracked_mutation(&mut self) -> bool {
        if self.staged.is_empty() {
            return false;
        }
        self.seal_delta();
        true
    }

    /// Caller asserts the database is at the mapping program's fixpoint
    /// (modulo pending local inserts), re-enabling **seeded** incremental
    /// exchanges after tracked deletions cleared the flag. CDSS deletion
    /// calls this when its cascade completes cleanly: the remaining
    /// instance is closed under the (monotone) mappings — every firing
    /// over surviving tuples derives a tuple whose derivation's sources
    /// survived, hence derivable, hence kept by the garbage collection.
    /// Asserting this on a state that is *not* a fixpoint makes later
    /// seeded exchanges silently diverge from a full bootstrap.
    pub fn assert_exchange_fixpoint(&mut self) {
        if self.exchanged {
            self.at_fixpoint = true;
        }
    }

    /// Bucketed fingerprint of the optimizer statistics behind
    /// `relations` (see [`proql_storage::stats`]). Consumers caching
    /// anything cost-derived (prepared query plans) pair this with
    /// [`ProvenanceSystem::version`]: same version ⇒ trivially fresh;
    /// version drift with an unchanged fingerprint ⇒ the cached artifact
    /// is stale in time but still cost-optimal, so it can be revalidated
    /// instead of rebuilt. Views hash by name only — their statistics
    /// derive from base tables, which callers include by passing a read
    /// set expanded down to base tables.
    pub fn stats_fingerprint<'a>(&self, relations: impl IntoIterator<Item = &'a str>) -> u64 {
        proql_storage::stats::db_fingerprint(&self.db, relations)
    }

    /// The sealed graph deltas covering `(from, to]`, or `None` when the
    /// chain cannot bridge that span (history trimmed or broken by an
    /// untracked mutation) — the caller then rebuilds from scratch.
    pub fn delta_entries(&self, from: u64, to: u64) -> Option<impl Iterator<Item = &GraphDelta>> {
        self.deltas.span(from, to)
    }

    /// Lifetime count of delta-log entries dropped to stay within the
    /// retention budget (see [`DeltaLog`]). Surfaced through service
    /// statistics as the delta-log compaction count.
    pub fn delta_compactions(&self) -> u64 {
        self.deltas.compactions()
    }

    /// Union of the write sets of every mutation after `from` (up to the
    /// current version), straight off the delta log. `None` when the log
    /// cannot bridge the span; callers should then assume everything was
    /// written.
    pub fn write_set_since(&self, from: u64) -> Option<BTreeSet<String>> {
        let mut out = BTreeSet::new();
        for entry in self.deltas.span(from, self.version)? {
            out.extend(entry.touched.iter().cloned());
        }
        Some(out)
    }

    /// Retained delta-log depth (sealed entries currently held).
    pub fn delta_log_depth(&self) -> usize {
        self.deltas.depth()
    }

    /// The delta log's trimmed low watermark: the oldest version the log
    /// can still patch (or replicate) **from**.
    pub fn delta_log_base(&self) -> u64 {
        self.deltas.base()
    }

    /// The delta log's configured retention bound, in entries.
    pub fn delta_log_capacity(&self) -> usize {
        self.deltas.capacity()
    }

    /// Change the delta log's retention bound (minimum 1), trimming
    /// retained history immediately if it exceeds the new bound.
    pub fn set_delta_log_capacity(&mut self, max_entries: usize) {
        self.deltas.set_capacity(max_entries);
    }

    /// Apply one replicated delta sealed by a primary at `to_version`.
    ///
    /// This is the replica-side write path: the raw [`crate::RowChange`]s are
    /// patched into the stored tables (CoW-shared tables split here, not
    /// on the read path), the version adopts the primary's, and the delta
    /// is appended to the local chain so graph consumers patch forward
    /// with [`crate::ProvGraph::apply_delta`] exactly as they would after
    /// a local write. No exchange runs — the delta already carries the
    /// fixpoint the primary computed.
    ///
    /// Fails without modifying anything when the delta is not contiguous
    /// with the local version (`to_version != version + 1`) or was
    /// op-overflowed at the primary; the caller must then fall back to a
    /// snapshot transfer.
    pub fn apply_replica_delta(&mut self, to_version: u64, delta: &GraphDelta) -> Result<()> {
        if to_version != self.version + 1 {
            return Err(Error::Other(format!(
                "replica delta gap: local version {} cannot apply delta sealing version {}",
                self.version, to_version
            )));
        }
        if delta.is_overflowed() {
            return Err(Error::Other(format!(
                "replica delta for version {to_version} overflowed at the primary; \
                 snapshot transfer required"
            )));
        }
        for rc in &delta.rows {
            let table = self.db.table_mut(&rc.table)?;
            if rc.added {
                table.insert(rc.row.clone())?;
            } else {
                let key = table.schema().key_of(&rc.row);
                table.delete_by_key(&key);
            }
        }
        self.version = to_version;
        self.staged = GraphDelta::default();
        self.deltas.push(to_version, delta.clone());
        self.pending_exchange.clear();
        self.at_fixpoint = true;
        Ok(())
    }

    /// Full contents of every stored table — the payload of a replication
    /// snapshot transfer.
    pub fn snapshot_tables(&self) -> Vec<(String, Vec<Tuple>)> {
        let mut names: Vec<String> = self.db.table_names().map(|s| s.to_string()).collect();
        names.sort();
        names
            .into_iter()
            .filter_map(|n| {
                let rows = self.db.table(&n).ok()?.scan();
                Some((n, rows))
            })
            .collect()
    }

    /// Replace every stored table's contents with a primary's snapshot and
    /// adopt its `version`. The delta chain restarts at `version` (the
    /// replica can stream contiguously from here); graph consumers rebuild
    /// once. The schema and mapping program are **not** shipped — replicas
    /// bootstrap them identically and only the data is transferred; a
    /// snapshot naming an unknown table is an error.
    pub fn install_snapshot(
        &mut self,
        version: u64,
        tables: &[(String, Vec<Tuple>)],
    ) -> Result<()> {
        for (name, _) in tables {
            self.db.table(name)?; // validate before mutating anything
        }
        for (name, rows) in tables {
            let table = self.db.table_mut(name)?;
            table.truncate();
            for row in rows {
                table.insert(row.clone())?;
            }
        }
        self.version = version;
        self.staged = GraphDelta::default();
        self.deltas.reset(version);
        self.pending_exchange.clear();
        self.exchanged = true;
        self.at_fixpoint = true;
        Ok(())
    }

    /// Register a public relation together with its local-contribution table
    /// (named `{name}_l`) and the copying rule `L_{name}` (the paper's
    /// `L1..L4` rules).
    pub fn add_relation_with_local(&mut self, schema: Schema) -> Result<()> {
        let name = schema.name().to_string();
        let local = format!("{name}{LOCAL_SUFFIX}");
        self.bump_untracked();
        self.db.create_table(schema.clone())?;
        self.db.create_table(schema.renamed(&local))?;
        self.local_rels.insert(local.clone());
        let vars: Vec<String> = (0..schema.arity()).map(|i| format!("x{i}")).collect();
        let rule = parse_rule(&format!(
            "L_{name}: {name}({args}) :- {local}({args})",
            args = vars.join(", ")
        ))?;
        self.register_mapping(rule)
    }

    /// Register a public relation with no local contributions (a purely
    /// derived relation).
    pub fn add_relation(&mut self, schema: Schema) -> Result<()> {
        self.bump_untracked();
        self.db.create_table(schema)
    }

    /// Register a schema mapping from its paper-style text form, e.g.
    /// `"m5: O(n, h, true) :- A(i, _, h), C(i, n)"`.
    pub fn add_mapping_text(&mut self, text: &str) -> Result<()> {
        self.register_mapping(parse_rule(text)?)
    }

    /// Register a schema mapping.
    pub fn add_mapping(&mut self, rule: Rule) -> Result<()> {
        self.register_mapping(rule)
    }

    fn register_mapping(&mut self, rule: Rule) -> Result<()> {
        if self.exchanged {
            return Err(Error::Other(
                "cannot add mappings after exchange has run".into(),
            ));
        }
        let spec = spec_for_rule(&self.db, &rule)?;
        if self.specs.iter().any(|s| s.mapping == spec.mapping) {
            return Err(Error::AlreadyExists(format!("mapping {}", spec.mapping)));
        }
        create_prov_relation(&mut self.db, &spec, &rule)?;
        if spec.superfluous {
            match SuperfluousMatcher::build(&spec, &rule) {
                Some(m) => self.matchers.push(m),
                // No row-level matcher ⇒ deltas for this mapping cannot be
                // captured; fall back to full rebuilds forever.
                None => self.trackable = false,
            }
        }
        self.specs.push(spec);
        self.program.rules.push(rule);
        self.bump_untracked();
        Ok(())
    }

    /// Insert a tuple into a relation's local-contribution table.
    pub fn insert_local(&mut self, relation: &str, tuple: Tuple) -> Result<bool> {
        let local = format!("{relation}{LOCAL_SUFFIX}");
        if !self.local_rels.contains(&local) {
            return Err(Error::NotFound(format!(
                "relation {relation} has no local-contribution table"
            )));
        }
        let inserted = self.db.insert(&local, tuple.clone())?;
        // A duplicate insert is a no-op under set semantics: nothing
        // changed, so version-checked caches stay valid.
        if inserted {
            record_row_change(
                &self.db,
                &self.specs,
                &self.matchers,
                &self.local_rels,
                &mut self.staged,
                &local,
                &tuple,
                true,
            );
            self.pending_exchange.push((local, tuple));
            self.seal_delta();
        }
        Ok(inserted)
    }

    /// Delete one row from a base table, staging the graph-delta ops and
    /// write-set entry it implies. Does **not** bump the version: callers
    /// performing a multi-step mutation (CDSS deletion propagation) batch
    /// any number of tracked deletes and then seal once with
    /// [`ProvenanceSystem::commit_tracked_mutation`].
    pub fn delete_row_tracked(&mut self, table: &str, key: &Tuple) -> Result<Option<Tuple>> {
        let Some(removed) = self.db.table_mut(table)?.delete_by_key(key) else {
            return Ok(None);
        };
        // A pending incremental-exchange seed for this exact row must die
        // with it, or the next seeded exchange would derive from a local
        // row that no longer exists.
        self.pending_exchange
            .retain(|(rel, row)| !(rel == table && row == &removed));
        // A bare row deletion invalidates the fixpoint assumption the
        // seeded exchange relies on: a full bootstrap would re-derive a
        // still-derivable row, a seeded one would not. CDSS deletion
        // garbage-collects exactly the underivable rows and re-asserts
        // the fixpoint when its cascade completes cleanly.
        self.at_fixpoint = false;
        record_row_change(
            &self.db,
            &self.specs,
            &self.matchers,
            &self.local_rels,
            &mut self.staged,
            table,
            &removed,
            false,
        );
        Ok(Some(removed))
    }

    /// The write set staged by the tracked mutation currently in progress
    /// (sealed — and cleared — by
    /// [`ProvenanceSystem::commit_tracked_mutation`]).
    pub fn staged_write_set(&self) -> BTreeSet<String> {
        self.staged.touched.clone()
    }

    /// The provenance rows `row` contributes to superfluous (view-backed)
    /// provenance relations whose definition reads `table`, as
    /// `(mapping, view row)` pairs. CDSS deletion uses this to mask the
    /// seed's `+` derivations out of a cached graph instead of rebuilding.
    pub fn superfluous_prov_rows(&self, table: &str, row: &Tuple) -> Vec<(String, Tuple)> {
        self.matchers
            .iter()
            .filter(|m| m.body_rel == table)
            .filter_map(|m| m.project(row).map(|r| (m.mapping.clone(), r)))
            .collect()
    }

    /// Run data exchange: evaluate all mappings to fixpoint, recording
    /// provenance. Can be called repeatedly (e.g. after more local
    /// inserts). Once a fixpoint exists, later rounds are **incremental**:
    /// semi-naive evaluation is seeded with only the local rows inserted
    /// since the previous exchange, so a point write's exchange touches
    /// what it derives, not the whole database.
    pub fn run_exchange(&mut self) -> Result<EvalStats> {
        let mut hook = ProvenanceHook {
            specs: &self.specs,
            matchers: &self.matchers,
            local_rels: &self.local_rels,
            staged: GraphDelta::default(),
        };
        let seeds = if self.exchanged && self.at_fixpoint {
            let mut by_rel: HashMap<String, Vec<Tuple>> = HashMap::new();
            for (rel, row) in self.pending_exchange.drain(..) {
                by_rel.entry(rel).or_default().push(row);
            }
            Some(by_rel)
        } else {
            self.pending_exchange.clear();
            None
        };
        let result = match seeds {
            Some(seeds) => run_program_seeded(&mut self.db, &self.program, &mut hook, seeds),
            None => run_program(&mut self.db, &self.program, &mut hook),
        };
        let hook_staged = hook.staged;
        self.staged.ops.extend(hook_staged.ops);
        self.staged.rows.extend(hook_staged.rows);
        self.staged.touched.extend(hook_staged.touched);
        if hook_staged.overflowed {
            // The hook dropped records; the merged entry is incomplete and
            // must reset the chain when sealed.
            self.staged.overflowed = true;
        }
        match result {
            Ok(stats) => {
                self.exchanged = true;
                self.at_fixpoint = true;
                self.seal_delta();
                Ok(stats)
            }
            Err(e) => {
                // Partial head insertions may have landed; the staged ops
                // cannot be trusted to describe them exactly, so bump and
                // break the chain (consumers rebuild once).
                self.bump_version();
                Err(e)
            }
        }
    }

    /// The mapping program (local rules + schema mappings).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// All provenance specs, parallel to `program().rules`.
    pub fn specs(&self) -> &[ProvSpec] {
        &self.specs
    }

    /// The spec of a mapping by name.
    pub fn spec_for(&self, mapping: &str) -> Option<&ProvSpec> {
        self.specs.iter().find(|s| s.mapping == mapping)
    }

    /// The rule of a mapping by name.
    pub fn rule_for(&self, mapping: &str) -> Option<&Rule> {
        self.program.rule_named(mapping)
    }

    /// True iff `relation` is a local-contribution table.
    pub fn is_local_relation(&self, relation: &str) -> bool {
        self.local_rels.contains(relation)
    }

    /// Local-contribution table name of a public relation, if registered.
    pub fn local_of(&self, relation: &str) -> Option<String> {
        let local = format!("{relation}{LOCAL_SUFFIX}");
        self.local_rels.contains(&local).then_some(local)
    }

    /// Build the provenance schema graph (Figure 3) for this system.
    pub fn schema_graph(&self) -> SchemaGraph {
        SchemaGraph::from_system(self)
    }

    /// Names of all public relations that have local tables.
    pub fn relations_with_locals(&self) -> Vec<String> {
        self.local_rels
            .iter()
            .map(|l| l.trim_end_matches(LOCAL_SUFFIX).to_string())
            .collect()
    }

    /// A clone with **no** shared table storage (the old O(database)
    /// write-path clone; benchmarks use it as the baseline against the
    /// O(#relations) copy-on-write [`Clone`]).
    pub fn deep_clone(&self) -> ProvenanceSystem {
        let mut out = self.clone();
        out.db = self.db.deep_clone();
        out
    }

    /// Total provenance rows stored (materialized `P_m` tables only; views
    /// contribute zero storage — that is the point of superfluity).
    pub fn provenance_rows(&self) -> usize {
        self.specs
            .iter()
            .filter(|s| !s.superfluous)
            .filter_map(|s| self.db.table(&s.prov_rel).ok())
            .map(|t| t.len())
            .sum()
    }
}

/// Row-level compilation of a superfluous provenance view: decides whether
/// a base-table row qualifies under the single body atom's constants and
/// repeated variables, and projects it onto the spec's columns.
#[derive(Debug, Clone)]
struct SuperfluousMatcher {
    mapping: String,
    body_rel: String,
    /// `(position, constant)` equality requirements.
    consts: Vec<(usize, Value)>,
    /// Repeated-variable equality requirements `(first, other)`.
    eqs: Vec<(usize, usize)>,
    /// For each spec column: the body position holding its value.
    cols: Vec<usize>,
}

impl SuperfluousMatcher {
    fn build(spec: &ProvSpec, rule: &Rule) -> Option<SuperfluousMatcher> {
        let atom = rule.body.first()?;
        let mut first_pos: HashMap<&str, usize> = HashMap::new();
        let mut consts = Vec::new();
        let mut eqs = Vec::new();
        for (i, term) in atom.terms.iter().enumerate() {
            match term {
                Term::Const(v) => consts.push((i, v.clone())),
                Term::Var(v) => {
                    if let Some(&p) = first_pos.get(v.as_str()) {
                        eqs.push((p, i));
                    } else {
                        first_pos.insert(v, i);
                    }
                }
                Term::Skolem(..) => return None,
            }
        }
        let cols = spec
            .columns
            .iter()
            .map(|c| first_pos.get(c.as_str()).copied())
            .collect::<Option<Vec<_>>>()?;
        Some(SuperfluousMatcher {
            mapping: spec.mapping.clone(),
            body_rel: atom.relation.clone(),
            consts,
            eqs,
            cols,
        })
    }

    /// The view row `row` contributes, or `None` when it does not qualify.
    fn project(&self, row: &Tuple) -> Option<Tuple> {
        for (i, v) in &self.consts {
            if row.try_get(*i) != Some(v) {
                return None;
            }
        }
        for (a, b) in &self.eqs {
            if row.try_get(*a) != row.try_get(*b) {
                return None;
            }
        }
        Some(Tuple::new(
            self.cols.iter().map(|&i| row.get(i).clone()).collect(),
        ))
    }
}

/// Stage the graph-delta ops implied by one base-table row change:
/// materialized provenance rows map to derivation ops directly, rows of
/// tables read by superfluous views map through the matchers, and public
/// rows additionally refresh their tuple node's resolved values.
#[allow(clippy::too_many_arguments)]
fn record_row_change(
    db: &Database,
    specs: &[ProvSpec],
    matchers: &[SuperfluousMatcher],
    local_rels: &HashSet<String>,
    staged: &mut GraphDelta,
    table: &str,
    row: &Tuple,
    added: bool,
) {
    staged.touched.insert(table.to_string());
    // The raw row-level record: what incremental view maintenance seeds
    // delta evaluation with. Recorded for every stored-table change —
    // graph ops below only cover the decoded provenance graph.
    staged.push_row(table, row, added);
    let make = |mapping: &str, row: Tuple| -> DeltaOp {
        if added {
            DeltaOp::AddDerivation {
                mapping: mapping.to_string(),
                row,
            }
        } else {
            DeltaOp::RemoveDerivation {
                mapping: mapping.to_string(),
                row,
            }
        }
    };
    let mut is_prov = false;
    if let Some(spec) = specs.iter().find(|s| !s.superfluous && s.prov_rel == table) {
        is_prov = true;
        staged.push_op(make(&spec.mapping, row.clone()));
    }
    for m in matchers.iter().filter(|m| m.body_rel == table) {
        if let Some(prow) = m.project(row) {
            staged.push_op(make(&m.mapping, prow));
        }
    }
    if !is_prov && !local_rels.contains(table) {
        if let Ok(t) = db.table(table) {
            staged.push_op(DeltaOp::SetValues {
                relation: table.to_string(),
                key: t.schema().key_of(row),
            });
        }
    }
}

/// The firing hook: one provenance row per firing of a non-superfluous
/// mapping, plus delta capture — newly inserted head tuples and provenance
/// rows are staged as graph-delta ops. Idempotent because provenance
/// relations are keyed on all columns.
struct ProvenanceHook<'a> {
    specs: &'a [ProvSpec],
    matchers: &'a [SuperfluousMatcher],
    local_rels: &'a HashSet<String>,
    staged: GraphDelta,
}

impl FiringHook for ProvenanceHook<'_> {
    fn on_firing(
        &mut self,
        db: &mut Database,
        rule_index: usize,
        rule: &Rule,
        bindings: &Bindings<'_>,
    ) -> Result<()> {
        // Head tuples the evaluator is about to insert: the hook runs just
        // before the insertion, so "key absent now" means "this firing adds
        // the row" (set semantics; the first writer wins).
        for h in &rule.heads {
            let tuple = bindings.instantiate(h)?;
            let t = db.table(&h.relation)?;
            if t.schema().check(&tuple).is_ok()
                && t.get_by_key(&t.schema().key_of(&tuple)).is_none()
            {
                record_row_change(
                    db,
                    self.specs,
                    self.matchers,
                    self.local_rels,
                    &mut self.staged,
                    &h.relation,
                    &tuple,
                    true,
                );
            }
        }
        let spec = &self.specs[rule_index];
        if spec.superfluous {
            return Ok(()); // the view covers it
        }
        let mut vals = Vec::with_capacity(spec.columns.len());
        for var in &spec.columns {
            vals.push(bindings.get(var)?.clone());
        }
        let row = Tuple::new(vals);
        if db.table_mut(&spec.prov_rel)?.insert(row.clone())? {
            record_row_change(
                db,
                self.specs,
                self.matchers,
                self.local_rels,
                &mut self.staged,
                &spec.prov_rel,
                &row,
                true,
            );
        }
        Ok(())
    }
}

/// Build the complete running example of the paper (Example 2.1 + Figure 1):
/// relations `A`, `C`, `N`, `O` with local tables, mappings `m1..m5`, and
/// the base data of Figure 1, exchanged with provenance.
///
/// Used by tests, examples, and the Table 1 bench.
pub fn example_2_1() -> Result<ProvenanceSystem> {
    use proql_common::ValueType::*;
    let mut sys = ProvenanceSystem::new();
    sys.add_relation_with_local(Schema::build(
        "A",
        &[("id", Int), ("sn", Str), ("len", Int)],
        &[0],
    )?)?;
    sys.add_relation_with_local(Schema::build("C", &[("id", Int), ("name", Str)], &[0, 1])?)?;
    sys.add_relation_with_local(Schema::build(
        "N",
        &[("id", Int), ("name", Str), ("canon", Bool)],
        &[0, 1],
    )?)?;
    sys.add_relation_with_local(Schema::build(
        "O",
        &[("name", Str), ("h", Int), ("animal", Bool)],
        &[0],
    )?)?;
    sys.add_mapping_text("m1: C(i, n) :- A(i, s, _), N(i, n, false)")?;
    sys.add_mapping_text("m2: N(i, n, true) :- A(i, n, _)")?;
    sys.add_mapping_text("m3: N(i, n, false) :- C(i, n)")?;
    sys.add_mapping_text("m4: O(n, h, true) :- A(i, n, h)")?;
    sys.add_mapping_text("m5: O(n, h, true) :- A(i, _, h), C(i, n)")?;

    // Base data of Figure 1 (boldface tuples).
    use proql_common::tup;
    sys.insert_local("A", tup![1, "sn1", 7])?;
    sys.insert_local("A", tup![2, "sn2", 5])?;
    sys.insert_local("N", tup![1, "cn1", false])?;
    sys.insert_local("C", tup![2, "cn2"])?;
    sys.run_exchange()?;
    Ok(sys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proql_common::tup;
    use proql_storage::{execute, Plan};

    #[test]
    fn example_exchange_materializes_views() {
        let sys = example_2_1().unwrap();
        // O receives sn1/sn2 via m4 and cn1/cn2 via m5.
        let o = sys.db.table("O").unwrap();
        assert!(o.contains(&tup!["sn1", 7, true]));
        assert!(o.contains(&tup!["sn2", 5, true]));
        assert!(o.contains(&tup!["cn1", 7, true]));
        assert!(o.contains(&tup!["cn2", 5, true]));
        // N gets canonical names via m2 and non-canonical via m3.
        let n = sys.db.table("N").unwrap();
        assert!(n.contains(&tup![1, "sn1", true]));
        assert!(n.contains(&tup![1, "cn1", false]));
        assert!(n.contains(&tup![2, "cn2", false]));
        // C gets cn1 via m1 (A(1) join N(1,cn1,false)).
        let c = sys.db.table("C").unwrap();
        assert!(c.contains(&tup![1, "cn1"]));
        assert!(c.contains(&tup![2, "cn2"]));
    }

    #[test]
    fn provenance_relations_match_figure_2() {
        let sys = example_2_1().unwrap();
        // P_m1 and P_m5 are materialized; P_m2/P_m3/P_m4 are views.
        assert!(sys.db.has_table("P_m1"));
        assert!(sys.db.has_table("P_m5"));
        assert!(!sys.db.has_table("P_m2"));
        assert!(sys.db.has_relation("P_m2"));
        let p1 = execute(&sys.db, &Plan::scan("P_m1")).unwrap();
        assert_eq!(p1.sorted_rows(), vec![tup![1, "cn1"], tup![2, "cn2"]]);
        let p5 = execute(&sys.db, &Plan::scan("P_m5")).unwrap();
        assert_eq!(p5.sorted_rows(), vec![tup![1, "cn1"], tup![2, "cn2"]]);
    }

    #[test]
    fn local_rules_are_superfluous_views() {
        let sys = example_2_1().unwrap();
        assert!(sys.db.has_relation("P_L_A"));
        assert!(!sys.db.has_table("P_L_A"));
        let pla = execute(&sys.db, &Plan::scan("P_L_A")).unwrap();
        assert_eq!(pla.len(), 2); // two locally inserted A tuples
    }

    #[test]
    fn exchange_is_idempotent() {
        let mut sys = example_2_1().unwrap();
        let before = sys.db.total_rows();
        let stats = sys.run_exchange().unwrap();
        assert_eq!(stats.inserted, 0);
        assert_eq!(sys.db.total_rows(), before);
    }

    #[test]
    fn incremental_local_insert_propagates() {
        let mut sys = example_2_1().unwrap();
        sys.insert_local("A", tup![3, "sn3", 9]).unwrap();
        sys.run_exchange().unwrap();
        assert!(sys.db.table("O").unwrap().contains(&tup!["sn3", 9, true]));
    }

    #[test]
    fn incremental_exchange_matches_full_bootstrap() {
        // The incremental (seeded) exchange must reach exactly the state a
        // full re-bootstrap reaches — including through the m1/m3 cycle.
        let mut inc = example_2_1().unwrap();
        let mut full = example_2_1().unwrap();
        for t in [tup![3, "sn3", 9], tup![4, "sn4", 9]] {
            inc.insert_local("A", t.clone()).unwrap();
            full.insert_local("A", t).unwrap();
        }
        inc.insert_local("N", tup![3, "cn3", false]).unwrap();
        full.insert_local("N", tup![3, "cn3", false]).unwrap();
        inc.run_exchange().unwrap(); // seeded with the three new rows
        full.bump_version(); // chain break ⇒ full bootstrap
        full.run_exchange().unwrap();
        for rel in ["A", "C", "N", "O", "P_m1", "P_m5"] {
            let a = execute(&inc.db, &Plan::scan(rel)).unwrap().sorted_rows();
            let b = execute(&full.db, &Plan::scan(rel)).unwrap().sorted_rows();
            assert_eq!(a, b, "relation {rel} diverged");
        }
    }

    #[test]
    fn tracked_delete_disables_seeded_exchange() {
        // Deleting a still-derivable PUBLIC row outside the CDSS cascade
        // leaves the instance below the fixpoint: the next exchange must
        // bootstrap fully and re-derive it (a seeded run would not).
        let mut sys = example_2_1().unwrap();
        let key = tup!["sn1"];
        assert!(sys.db.table("O").unwrap().get_by_key(&key).is_some());
        sys.delete_row_tracked("O", &key).unwrap().unwrap();
        sys.commit_tracked_mutation();
        sys.insert_local("A", tup![9, "sn9", 4]).unwrap();
        sys.run_exchange().unwrap();
        assert!(
            sys.db.table("O").unwrap().get_by_key(&key).is_some(),
            "the exchange after a bare tracked delete must re-derive"
        );
    }

    #[test]
    fn duplicate_mapping_name_rejected() {
        let mut sys = example_2_1().unwrap();
        // Already exchanged: adding mappings is rejected outright.
        assert!(sys
            .add_mapping_text("m1: C(i, n) :- N(i, n, false)")
            .is_err());
    }

    #[test]
    fn insert_local_requires_local_table() {
        let mut sys = ProvenanceSystem::new();
        sys.add_relation(
            Schema::build("X", &[("id", proql_common::ValueType::Int)], &[0]).unwrap(),
        )
        .unwrap();
        assert!(sys.insert_local("X", tup![1]).is_err());
    }

    #[test]
    fn provenance_rows_counts_materialized_only() {
        let sys = example_2_1().unwrap();
        // P_m1 has 2 rows, P_m5 has 2 rows; views don't count.
        assert_eq!(sys.provenance_rows(), 4);
    }

    #[test]
    fn version_bumps_on_every_mutation() {
        let mut sys = ProvenanceSystem::new();
        assert_eq!(sys.version(), 0);
        sys.add_relation_with_local(
            Schema::build("X", &[("id", proql_common::ValueType::Int)], &[0]).unwrap(),
        )
        .unwrap();
        let after_schema = sys.version();
        assert!(after_schema > 0);
        sys.insert_local("X", tup![1]).unwrap();
        let after_insert = sys.version();
        assert!(after_insert > after_schema);
        sys.run_exchange().unwrap();
        let after_exchange = sys.version();
        assert!(after_exchange > after_insert);
        sys.bump_version();
        assert_eq!(sys.version(), after_exchange + 1);
        // Clones carry the version.
        assert_eq!(sys.clone().version(), sys.version());
    }

    #[test]
    fn deltas_cover_tracked_mutations_only() {
        let mut sys = example_2_1().unwrap();
        let v0 = sys.version();
        sys.insert_local("A", tup![7, "sn7", 3]).unwrap();
        sys.run_exchange().unwrap();
        let v1 = sys.version();
        assert_eq!(v1, v0 + 2, "insert + exchange seal one entry each");
        let entries: Vec<_> = sys.delta_entries(v0, v1).unwrap().collect();
        assert_eq!(entries.len(), 2);
        // The insert's entry carries the local base derivation.
        assert!(entries[0]
            .ops
            .iter()
            .any(|op| matches!(op, DeltaOp::AddDerivation { mapping, .. } if mapping == "L_A")));
        assert!(entries[0].touched.contains("A_l"));
        // The exchange's entry touches the public tables it filled.
        assert!(entries[1].touched.contains("A"));
        assert!(entries[1].touched.contains("O"));
        // Write sets ride the same entries.
        let ws = sys.write_set_since(v0).unwrap();
        assert!(ws.contains("A_l") && ws.contains("O"));
        // An untracked bump breaks the chain.
        sys.bump_version();
        assert!(sys.delta_entries(v0, sys.version()).is_none());
        assert!(sys.write_set_since(v0).is_none());
        assert!(sys.delta_entries(sys.version(), sys.version()).is_some());
    }

    #[test]
    fn deltas_record_raw_row_changes() {
        let mut sys = example_2_1().unwrap();
        let v0 = sys.version();
        sys.insert_local("A", tup![7, "sn7", 3]).unwrap();
        sys.run_exchange().unwrap();
        let v1 = sys.version();
        let entries: Vec<_> = sys.delta_entries(v0, v1).unwrap().collect();
        // The insert's entry carries the raw local row.
        assert!(entries[0]
            .rows
            .iter()
            .any(|r| r.table == "A_l" && r.row == tup![7, "sn7", 3] && r.added));
        // The exchange's entry carries the public rows it derived, plus the
        // materialized provenance rows.
        assert!(entries[1]
            .rows
            .iter()
            .any(|r| r.table == "A" && r.row == tup![7, "sn7", 3] && r.added));
        assert!(entries[1].rows.iter().any(|r| r.table == "O" && r.added));
        // Tracked deletes stage removals.
        let v2 = sys.version();
        sys.delete_row_tracked("A_l", &tup![7]).unwrap().unwrap();
        sys.commit_tracked_mutation();
        let entries: Vec<_> = sys.delta_entries(v2, sys.version()).unwrap().collect();
        assert!(entries[0]
            .rows
            .iter()
            .any(|r| r.table == "A_l" && r.row == tup![7, "sn7", 3] && !r.added));
    }

    #[test]
    fn tracked_delete_stages_until_committed() {
        let mut sys = example_2_1().unwrap();
        let v0 = sys.version();
        let removed = sys.delete_row_tracked("A_l", &tup![1]).unwrap().unwrap();
        assert_eq!(removed, tup![1, "sn1", 7]);
        assert_eq!(sys.version(), v0, "tracked deletes do not bump eagerly");
        assert!(sys.commit_tracked_mutation());
        assert_eq!(sys.version(), v0 + 1);
        let entries: Vec<_> = sys.delta_entries(v0, v0 + 1).unwrap().collect();
        assert!(entries[0]
            .ops
            .iter()
            .any(|op| matches!(op, DeltaOp::RemoveDerivation { mapping, .. } if mapping == "L_A")));
        // Nothing staged ⇒ no bump.
        assert!(!sys.commit_tracked_mutation());
        assert_eq!(sys.version(), v0 + 1);
        // Deleting a missing row stages nothing.
        assert!(sys.delete_row_tracked("A_l", &tup![99]).unwrap().is_none());
        assert!(!sys.commit_tracked_mutation());
    }

    #[test]
    fn superfluous_rows_projected_through_matchers() {
        let sys = example_2_1().unwrap();
        // m4: O(n, h, true) :- A(i, n, h) — P_m4 columns are (i, n, h)?
        // Columns are the distinct key vars: A's key (i), O's key (n).
        let rows = sys.superfluous_prov_rows("A", &tup![1, "sn1", 7]);
        assert!(rows.iter().any(|(m, _)| m == "m4"));
        assert!(rows.iter().any(|(m, _)| m == "m2"));
        // Local table rows feed the L_A view.
        let rows = sys.superfluous_prov_rows("A_l", &tup![1, "sn1", 7]);
        assert!(rows.iter().any(|(m, _)| m == "L_A"));
        // m3 reads C: every C row qualifies (projection on its key).
        let rows = sys.superfluous_prov_rows("C", &tup![2, "cn2"]);
        assert!(rows.iter().any(|(m, r)| m == "m3" && *r == tup![2, "cn2"]));

        // Constant filters in the body atom gate the projection.
        let mut sys = ProvenanceSystem::new();
        use proql_common::ValueType::*;
        sys.add_relation_with_local(
            Schema::build("N2", &[("id", Int), ("canon", Bool)], &[0]).unwrap(),
        )
        .unwrap();
        sys.add_relation(Schema::build("X", &[("id", Int)], &[0]).unwrap())
            .unwrap();
        sys.add_mapping_text("mc: X(i) :- N2(i, false)").unwrap();
        assert!(!sys
            .superfluous_prov_rows("N2", &tup![1, true])
            .iter()
            .any(|(m, _)| m == "mc"));
        assert!(sys
            .superfluous_prov_rows("N2", &tup![1, false])
            .iter()
            .any(|(m, _)| m == "mc"));
    }

    #[test]
    fn spec_and_rule_lookup() {
        let sys = example_2_1().unwrap();
        assert!(sys.spec_for("m5").is_some());
        assert!(sys.rule_for("m5").is_some());
        assert!(sys.spec_for("m99").is_none());
        assert!(sys.is_local_relation("A_l"));
        assert_eq!(sys.local_of("A"), Some("A_l".into()));
        assert_eq!(sys.local_of("P_m1"), None);
    }

    #[test]
    fn cow_clone_shares_until_written() {
        let sys = example_2_1().unwrap();
        let mut snap = sys.clone();
        assert!(sys.db.shares_table_storage(&snap.db, "A"));
        snap.insert_local("A", tup![9, "sn9", 1]).unwrap();
        assert!(!sys.db.shares_table_storage(&snap.db, "A_l"));
        assert!(sys.db.shares_table_storage(&snap.db, "O"));
        let deep = sys.deep_clone();
        assert!(!sys.db.shares_table_storage(&deep.db, "O"));
    }
}
