//! The provenance system: database + mappings + provenance capture.
//!
//! [`ProvenanceSystem`] owns the relational [`Database`], the mapping
//! program, and the per-mapping provenance specs. Running
//! [`ProvenanceSystem::run_exchange`] materializes all public relations
//! (data exchange, §2) while recording one provenance row per derivation
//! through the Datalog engine's firing hook.

use crate::encode::{create_prov_relation, spec_for_rule, ProvSpec};
use crate::schema_graph::SchemaGraph;
use proql_common::{Error, Result, Schema, Tuple};
use proql_datalog::ast::{Program, Rule};
use proql_datalog::eval::{run_program, Bindings, EvalStats, FiringHook};
use proql_datalog::parse::parse_rule;
use proql_storage::Database;
use std::collections::HashSet;

/// Suffix of local-contribution tables: relation `A` gets `A_l`.
pub const LOCAL_SUFFIX: &str = "_l";

/// A CDSS-style provenance system.
#[derive(Debug, Clone, Default)]
pub struct ProvenanceSystem {
    /// The backing database: public relations, local contribution tables,
    /// and provenance relations (tables or views).
    pub db: Database,
    program: Program,
    specs: Vec<ProvSpec>,
    local_rels: HashSet<String>,
    exchanged: bool,
    version: u64,
}

impl ProvenanceSystem {
    /// Empty system.
    pub fn new() -> Self {
        ProvenanceSystem::default()
    }

    /// Monotonically increasing mutation counter. Every mutation through
    /// this type's API bumps it; consumers that cache anything derived
    /// from the system (the engine's provenance graph, the query
    /// service's result cache) compare versions instead of relying on
    /// explicit invalidation calls.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Record an out-of-band mutation (a caller writing through the
    /// public `db` field directly, e.g. CDSS deletion propagation).
    /// Bumps [`ProvenanceSystem::version`] so cached derived state is
    /// dropped on next use.
    pub fn bump_version(&mut self) {
        self.version += 1;
    }

    /// Bucketed fingerprint of the optimizer statistics behind
    /// `relations` (see [`proql_storage::stats`]). Consumers caching
    /// anything cost-derived (prepared query plans) pair this with
    /// [`ProvenanceSystem::version`]: same version ⇒ trivially fresh;
    /// version drift with an unchanged fingerprint ⇒ the cached artifact
    /// is stale in time but still cost-optimal, so it can be revalidated
    /// instead of rebuilt. Views hash by name only — their statistics
    /// derive from base tables, which callers include by passing a read
    /// set expanded down to base tables.
    pub fn stats_fingerprint<'a>(&self, relations: impl IntoIterator<Item = &'a str>) -> u64 {
        proql_storage::stats::db_fingerprint(&self.db, relations)
    }

    /// Register a public relation together with its local-contribution table
    /// (named `{name}_l`) and the copying rule `L_{name}` (the paper's
    /// `L1..L4` rules).
    pub fn add_relation_with_local(&mut self, schema: Schema) -> Result<()> {
        let name = schema.name().to_string();
        let local = format!("{name}{LOCAL_SUFFIX}");
        self.version += 1;
        self.db.create_table(schema.clone())?;
        self.db.create_table(schema.renamed(&local))?;
        self.local_rels.insert(local.clone());
        let vars: Vec<String> = (0..schema.arity()).map(|i| format!("x{i}")).collect();
        let rule = parse_rule(&format!(
            "L_{name}: {name}({args}) :- {local}({args})",
            args = vars.join(", ")
        ))?;
        self.register_mapping(rule)
    }

    /// Register a public relation with no local contributions (a purely
    /// derived relation).
    pub fn add_relation(&mut self, schema: Schema) -> Result<()> {
        self.version += 1;
        self.db.create_table(schema)
    }

    /// Register a schema mapping from its paper-style text form, e.g.
    /// `"m5: O(n, h, true) :- A(i, _, h), C(i, n)"`.
    pub fn add_mapping_text(&mut self, text: &str) -> Result<()> {
        self.register_mapping(parse_rule(text)?)
    }

    /// Register a schema mapping.
    pub fn add_mapping(&mut self, rule: Rule) -> Result<()> {
        self.register_mapping(rule)
    }

    fn register_mapping(&mut self, rule: Rule) -> Result<()> {
        if self.exchanged {
            return Err(Error::Other(
                "cannot add mappings after exchange has run".into(),
            ));
        }
        let spec = spec_for_rule(&self.db, &rule)?;
        if self.specs.iter().any(|s| s.mapping == spec.mapping) {
            return Err(Error::AlreadyExists(format!("mapping {}", spec.mapping)));
        }
        create_prov_relation(&mut self.db, &spec, &rule)?;
        self.specs.push(spec);
        self.program.rules.push(rule);
        self.version += 1;
        Ok(())
    }

    /// Insert a tuple into a relation's local-contribution table.
    pub fn insert_local(&mut self, relation: &str, tuple: Tuple) -> Result<bool> {
        let local = format!("{relation}{LOCAL_SUFFIX}");
        if !self.local_rels.contains(&local) {
            return Err(Error::NotFound(format!(
                "relation {relation} has no local-contribution table"
            )));
        }
        let inserted = self.db.insert(&local, tuple)?;
        // A duplicate insert is a no-op under set semantics: nothing
        // changed, so version-checked caches stay valid.
        if inserted {
            self.version += 1;
        }
        Ok(inserted)
    }

    /// Run data exchange: evaluate all mappings to fixpoint, recording
    /// provenance. Can be called repeatedly (e.g. after more local inserts);
    /// evaluation is incremental in the sense that set semantics make
    /// re-derivations no-ops.
    pub fn run_exchange(&mut self) -> Result<EvalStats> {
        let mut hook = ProvenanceHook { specs: &self.specs };
        let stats = run_program(&mut self.db, &self.program, &mut hook)?;
        self.exchanged = true;
        self.version += 1;
        Ok(stats)
    }

    /// The mapping program (local rules + schema mappings).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// All provenance specs, parallel to `program().rules`.
    pub fn specs(&self) -> &[ProvSpec] {
        &self.specs
    }

    /// The spec of a mapping by name.
    pub fn spec_for(&self, mapping: &str) -> Option<&ProvSpec> {
        self.specs.iter().find(|s| s.mapping == mapping)
    }

    /// The rule of a mapping by name.
    pub fn rule_for(&self, mapping: &str) -> Option<&Rule> {
        self.program.rule_named(mapping)
    }

    /// True iff `relation` is a local-contribution table.
    pub fn is_local_relation(&self, relation: &str) -> bool {
        self.local_rels.contains(relation)
    }

    /// Local-contribution table name of a public relation, if registered.
    pub fn local_of(&self, relation: &str) -> Option<String> {
        let local = format!("{relation}{LOCAL_SUFFIX}");
        self.local_rels.contains(&local).then_some(local)
    }

    /// Build the provenance schema graph (Figure 3) for this system.
    pub fn schema_graph(&self) -> SchemaGraph {
        SchemaGraph::from_system(self)
    }

    /// Names of all public relations that have local tables.
    pub fn relations_with_locals(&self) -> Vec<String> {
        self.local_rels
            .iter()
            .map(|l| l.trim_end_matches(LOCAL_SUFFIX).to_string())
            .collect()
    }

    /// Total provenance rows stored (materialized `P_m` tables only; views
    /// contribute zero storage — that is the point of superfluity).
    pub fn provenance_rows(&self) -> usize {
        self.specs
            .iter()
            .filter(|s| !s.superfluous)
            .filter_map(|s| self.db.table(&s.prov_rel).ok())
            .map(|t| t.len())
            .sum()
    }
}

/// The firing hook: one provenance row per firing of a non-superfluous
/// mapping. Idempotent because provenance relations are keyed on all
/// columns.
struct ProvenanceHook<'a> {
    specs: &'a [ProvSpec],
}

impl FiringHook for ProvenanceHook<'_> {
    fn on_firing(
        &mut self,
        db: &mut Database,
        rule_index: usize,
        _rule: &Rule,
        bindings: &Bindings<'_>,
    ) -> Result<()> {
        let spec = &self.specs[rule_index];
        if spec.superfluous {
            return Ok(()); // the view covers it
        }
        let mut vals = Vec::with_capacity(spec.columns.len());
        for var in &spec.columns {
            vals.push(bindings.get(var)?.clone());
        }
        db.table_mut(&spec.prov_rel)?.insert(Tuple::new(vals))?;
        Ok(())
    }
}

/// Build the complete running example of the paper (Example 2.1 + Figure 1):
/// relations `A`, `C`, `N`, `O` with local tables, mappings `m1..m5`, and
/// the base data of Figure 1, exchanged with provenance.
///
/// Used by tests, examples, and the Table 1 bench.
pub fn example_2_1() -> Result<ProvenanceSystem> {
    use proql_common::ValueType::*;
    let mut sys = ProvenanceSystem::new();
    sys.add_relation_with_local(Schema::build(
        "A",
        &[("id", Int), ("sn", Str), ("len", Int)],
        &[0],
    )?)?;
    sys.add_relation_with_local(Schema::build("C", &[("id", Int), ("name", Str)], &[0, 1])?)?;
    sys.add_relation_with_local(Schema::build(
        "N",
        &[("id", Int), ("name", Str), ("canon", Bool)],
        &[0, 1],
    )?)?;
    sys.add_relation_with_local(Schema::build(
        "O",
        &[("name", Str), ("h", Int), ("animal", Bool)],
        &[0],
    )?)?;
    sys.add_mapping_text("m1: C(i, n) :- A(i, s, _), N(i, n, false)")?;
    sys.add_mapping_text("m2: N(i, n, true) :- A(i, n, _)")?;
    sys.add_mapping_text("m3: N(i, n, false) :- C(i, n)")?;
    sys.add_mapping_text("m4: O(n, h, true) :- A(i, n, h)")?;
    sys.add_mapping_text("m5: O(n, h, true) :- A(i, _, h), C(i, n)")?;

    // Base data of Figure 1 (boldface tuples).
    use proql_common::tup;
    sys.insert_local("A", tup![1, "sn1", 7])?;
    sys.insert_local("A", tup![2, "sn2", 5])?;
    sys.insert_local("N", tup![1, "cn1", false])?;
    sys.insert_local("C", tup![2, "cn2"])?;
    sys.run_exchange()?;
    Ok(sys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proql_common::tup;
    use proql_storage::{execute, Plan};

    #[test]
    fn example_exchange_materializes_views() {
        let sys = example_2_1().unwrap();
        // O receives sn1/sn2 via m4 and cn1/cn2 via m5.
        let o = sys.db.table("O").unwrap();
        assert!(o.contains(&tup!["sn1", 7, true]));
        assert!(o.contains(&tup!["sn2", 5, true]));
        assert!(o.contains(&tup!["cn1", 7, true]));
        assert!(o.contains(&tup!["cn2", 5, true]));
        // N gets canonical names via m2 and non-canonical via m3.
        let n = sys.db.table("N").unwrap();
        assert!(n.contains(&tup![1, "sn1", true]));
        assert!(n.contains(&tup![1, "cn1", false]));
        assert!(n.contains(&tup![2, "cn2", false]));
        // C gets cn1 via m1 (A(1) join N(1,cn1,false)).
        let c = sys.db.table("C").unwrap();
        assert!(c.contains(&tup![1, "cn1"]));
        assert!(c.contains(&tup![2, "cn2"]));
    }

    #[test]
    fn provenance_relations_match_figure_2() {
        let sys = example_2_1().unwrap();
        // P_m1 and P_m5 are materialized; P_m2/P_m3/P_m4 are views.
        assert!(sys.db.has_table("P_m1"));
        assert!(sys.db.has_table("P_m5"));
        assert!(!sys.db.has_table("P_m2"));
        assert!(sys.db.has_relation("P_m2"));
        let p1 = execute(&sys.db, &Plan::scan("P_m1")).unwrap();
        assert_eq!(p1.sorted_rows(), vec![tup![1, "cn1"], tup![2, "cn2"]]);
        let p5 = execute(&sys.db, &Plan::scan("P_m5")).unwrap();
        assert_eq!(p5.sorted_rows(), vec![tup![1, "cn1"], tup![2, "cn2"]]);
    }

    #[test]
    fn local_rules_are_superfluous_views() {
        let sys = example_2_1().unwrap();
        assert!(sys.db.has_relation("P_L_A"));
        assert!(!sys.db.has_table("P_L_A"));
        let pla = execute(&sys.db, &Plan::scan("P_L_A")).unwrap();
        assert_eq!(pla.len(), 2); // two locally inserted A tuples
    }

    #[test]
    fn exchange_is_idempotent() {
        let mut sys = example_2_1().unwrap();
        let before = sys.db.total_rows();
        let stats = sys.run_exchange().unwrap();
        assert_eq!(stats.inserted, 0);
        assert_eq!(sys.db.total_rows(), before);
    }

    #[test]
    fn incremental_local_insert_propagates() {
        let mut sys = example_2_1().unwrap();
        sys.insert_local("A", tup![3, "sn3", 9]).unwrap();
        sys.run_exchange().unwrap();
        assert!(sys.db.table("O").unwrap().contains(&tup!["sn3", 9, true]));
    }

    #[test]
    fn duplicate_mapping_name_rejected() {
        let mut sys = example_2_1().unwrap();
        // Already exchanged: adding mappings is rejected outright.
        assert!(sys
            .add_mapping_text("m1: C(i, n) :- N(i, n, false)")
            .is_err());
    }

    #[test]
    fn insert_local_requires_local_table() {
        let mut sys = ProvenanceSystem::new();
        sys.add_relation(
            Schema::build("X", &[("id", proql_common::ValueType::Int)], &[0]).unwrap(),
        )
        .unwrap();
        assert!(sys.insert_local("X", tup![1]).is_err());
    }

    #[test]
    fn provenance_rows_counts_materialized_only() {
        let sys = example_2_1().unwrap();
        // P_m1 has 2 rows, P_m5 has 2 rows; views don't count.
        assert_eq!(sys.provenance_rows(), 4);
    }

    #[test]
    fn version_bumps_on_every_mutation() {
        let mut sys = ProvenanceSystem::new();
        assert_eq!(sys.version(), 0);
        sys.add_relation_with_local(
            Schema::build("X", &[("id", proql_common::ValueType::Int)], &[0]).unwrap(),
        )
        .unwrap();
        let after_schema = sys.version();
        assert!(after_schema > 0);
        sys.insert_local("X", tup![1]).unwrap();
        let after_insert = sys.version();
        assert!(after_insert > after_schema);
        sys.run_exchange().unwrap();
        let after_exchange = sys.version();
        assert!(after_exchange > after_insert);
        sys.bump_version();
        assert_eq!(sys.version(), after_exchange + 1);
        // Clones carry the version.
        assert_eq!(sys.clone().version(), sys.version());
    }

    #[test]
    fn spec_and_rule_lookup() {
        let sys = example_2_1().unwrap();
        assert!(sys.spec_for("m5").is_some());
        assert!(sys.rule_for("m5").is_some());
        assert!(sys.spec_for("m99").is_none());
        assert!(sys.is_local_relation("A_l"));
        assert_eq!(sys.local_of("A"), Some("A_l".into()));
        assert_eq!(sys.local_of("P_m1"), None);
    }
}
