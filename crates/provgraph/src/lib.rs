//! # proql-provgraph
//!
//! Provenance graphs and their relational encoding (paper §2, §4.1):
//!
//! * [`encode`] — per-mapping provenance relation schemas (`P_m`): one row
//!   per derivation, storing one column per distinct variable in a key
//!   position of any source/target atom; *superfluous* provenance relations
//!   (single-source projections) are virtualized as views,
//! * [`system`] — [`ProvenanceSystem`]: a database + mapping program that
//!   runs data exchange while recording provenance through the Datalog
//!   engine's firing hook,
//! * [`graph`] — the in-memory bipartite provenance graph of Figure 1
//!   (tuple nodes and derivation nodes, `+`-flagged base derivations),
//!   maintained incrementally through [`delta`]s with periodic compaction,
//! * [`delta`] — [`GraphDelta`]/[`DeltaLog`]: the per-mutation change sets
//!   the system stages and seals, letting graph consumers patch forward
//!   instead of rebuilding and letting the query service derive write sets,
//! * [`schema_graph`] — the provenance *schema* graph of Figure 3 (relation
//!   and mapping nodes), the structure ProQL patterns are matched against.

pub mod delta;
pub mod encode;
pub mod graph;
pub mod schema_graph;
pub mod system;

pub use delta::{DeltaLog, DeltaOp, GraphDelta, RowChange};
pub use encode::{AtomRecipe, ProvSpec, RecipeTerm};
pub use graph::{DerivationNode, ProvGraph, TupleNode};
pub use schema_graph::SchemaGraph;
pub use system::ProvenanceSystem;
