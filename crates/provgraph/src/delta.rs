//! Graph deltas: the unit of incremental provenance-graph maintenance.
//!
//! Every mutation of a [`ProvenanceSystem`] — local inserts, update
//! exchange, CDSS deletion propagation — stages a [`GraphDelta`]
//! describing exactly how the decoded provenance graph changes: which
//! derivation rows appeared or disappeared, and which tuple nodes'
//! resolved values must be refreshed. Sealing a mutation bumps the
//! system's version counter and appends the staged delta to the bounded
//! [`DeltaLog`], so a consumer holding a graph built at version `v` can
//! patch it forward to version `w` by applying the contiguous entries of
//! `(v, w]` instead of rebuilding from the relational encoding.
//!
//! Out-of-band mutations ([`ProvenanceSystem::bump_version`], schema
//! changes) **reset** the log: the chain is broken at that version and
//! consumers fall back to a full rebuild once.
//!
//! [`ProvenanceSystem`]: crate::ProvenanceSystem
//! [`ProvenanceSystem::bump_version`]: crate::ProvenanceSystem::bump_version

use proql_common::Tuple;
use std::collections::{BTreeSet, VecDeque};

/// One atomic change to the decoded provenance graph.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaOp {
    /// A provenance row appeared: decode it into a derivation node (and
    /// any tuple nodes it references). `row` is the `P_m` row of
    /// `mapping`, whether materialized or served by a superfluous view.
    AddDerivation {
        /// The mapping whose provenance relation gained the row.
        mapping: String,
        /// The provenance row (full variable binding).
        row: Tuple,
    },
    /// A provenance row disappeared: remove its derivation node and any
    /// tuple nodes left unreferenced.
    RemoveDerivation {
        /// The mapping whose provenance relation lost the row.
        mapping: String,
        /// The provenance row that was removed.
        row: Tuple,
    },
    /// A base-table row appeared or disappeared: re-resolve the values of
    /// the tuple node `(relation, key)` from the database at apply time.
    SetValues {
        /// The public relation whose row changed.
        relation: String,
        /// Primary key of the changed row.
        key: Tuple,
    },
}

/// One physical row-level change to a stored table: the raw material of
/// incremental view maintenance. Unlike [`DeltaOp`] — which describes the
/// decoded provenance *graph* — a `RowChange` records exactly which stored
/// row appeared or disappeared in which table, so a maintainer can seed
/// delta evaluation of an unfolded query with precisely the changed rows.
#[derive(Debug, Clone, PartialEq)]
pub struct RowChange {
    /// The stored table (public, local `*_l`, or materialized `P_m`).
    pub table: String,
    /// The full row that was inserted or deleted.
    pub row: Tuple,
    /// `true` for an insert, `false` for a delete.
    pub added: bool,
}

/// The staged/sealed change set of one system mutation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GraphDelta {
    /// Graph changes, in the order they happened.
    pub ops: Vec<DeltaOp>,
    /// Raw row-level changes to stored tables, in the order they happened.
    /// Shares the per-entry ops budget (`ENTRY_OPS_CAP`) with `ops`.
    pub rows: Vec<RowChange>,
    /// Every base table the mutation physically modified — the mutation's
    /// **write set**, which the query service intersects with cached
    /// answers' read sets.
    pub touched: BTreeSet<String>,
    /// Set when the mutation staged more ops than [`ENTRY_OPS_CAP`]: the
    /// ops were dropped (a bulk load patches no faster than a rebuild)
    /// and sealing resets the chain instead of pushing. `touched` stays
    /// exact either way.
    pub(crate) overflowed: bool,
}

/// Per-mutation op budget: a single mutation staging more than this many
/// graph ops (a bulk load, a full exchange bootstrap) stops recording and
/// marks the delta overflowed — patching such an entry would not beat a
/// rebuild, and the bounded [`DeltaLog`] could not retain it anyway.
pub(crate) const ENTRY_OPS_CAP: usize = 32_768;

impl GraphDelta {
    /// True when the mutation changed nothing.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty() && self.rows.is_empty() && self.touched.is_empty()
    }

    /// Combined record count, charged against [`ENTRY_OPS_CAP`] and the
    /// [`DeltaLog`] op budget.
    pub(crate) fn weight(&self) -> usize {
        self.ops.len() + self.rows.len()
    }

    fn overflow(&mut self) {
        self.overflowed = true;
        self.ops = Vec::new();
        self.rows = Vec::new();
    }

    /// Stage one op, honoring [`ENTRY_OPS_CAP`].
    pub(crate) fn push_op(&mut self, op: DeltaOp) {
        if self.overflowed {
            return;
        }
        if self.weight() >= ENTRY_OPS_CAP {
            self.overflow();
            return;
        }
        self.ops.push(op);
    }

    /// True when the mutation staged more ops than the per-entry budget
    /// and the recorded ops were dropped. An overflowed delta cannot be
    /// replayed (on a replica or a cached graph) — consumers must fall
    /// back to a rebuild / snapshot transfer.
    pub fn is_overflowed(&self) -> bool {
        self.overflowed
    }

    /// Stage one raw row change, honoring the shared [`ENTRY_OPS_CAP`].
    pub(crate) fn push_row(&mut self, table: &str, row: &Tuple, added: bool) {
        if self.overflowed {
            return;
        }
        if self.weight() >= ENTRY_OPS_CAP {
            self.overflow();
            return;
        }
        self.rows.push(RowChange {
            table: table.to_string(),
            row: row.clone(),
            added,
        });
    }
}

/// Default cap on retained entries; spans falling off the log fall back
/// to a full graph rebuild (or, for replicas, a snapshot transfer).
pub const DEFAULT_MAX_ENTRIES: usize = 256;

/// Op budget retained per log entry slot: the total-op cap scales with
/// the entry cap so `PROQL_DELTA_LOG_CAP` tunes both together.
const OPS_PER_ENTRY: usize = 256;

/// A bounded, contiguous log of sealed [`GraphDelta`]s.
///
/// Entry `i` describes the mutation that took the system from version
/// `base + i` to `base + i + 1`.
///
/// The retention bound defaults to [`DEFAULT_MAX_ENTRIES`] and is
/// configurable — per instance via [`DeltaLog::with_capacity`] /
/// [`DeltaLog::set_capacity`], or process-wide via the
/// `PROQL_DELTA_LOG_CAP` environment variable (read by
/// [`DeltaLog::from_env`], which the system constructor uses). Deeper
/// logs let replicas catch up over longer disconnections without a
/// snapshot transfer, at the cost of retained memory.
#[derive(Debug, Clone)]
pub struct DeltaLog {
    base: u64,
    entries: VecDeque<GraphDelta>,
    total_ops: usize,
    compactions: u64,
    max_entries: usize,
    max_ops: usize,
}

impl Default for DeltaLog {
    fn default() -> Self {
        DeltaLog::with_capacity(DEFAULT_MAX_ENTRIES)
    }
}

impl DeltaLog {
    /// An empty log retaining at most `max_entries` entries (minimum 1)
    /// and `max_entries * 256` total ops.
    pub fn with_capacity(max_entries: usize) -> Self {
        let max_entries = max_entries.max(1);
        DeltaLog {
            base: 0,
            entries: VecDeque::new(),
            total_ops: 0,
            compactions: 0,
            max_entries,
            max_ops: max_entries.saturating_mul(OPS_PER_ENTRY),
        }
    }

    /// An empty log whose retention bound comes from the
    /// `PROQL_DELTA_LOG_CAP` environment variable (entries; defaults to
    /// [`DEFAULT_MAX_ENTRIES`] when unset or unparsable).
    pub fn from_env() -> Self {
        let cap = std::env::var("PROQL_DELTA_LOG_CAP")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_MAX_ENTRIES);
        DeltaLog::with_capacity(cap)
    }

    /// Oldest version the log can patch **from**.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Retained entry count (the log's current depth).
    pub fn depth(&self) -> usize {
        self.entries.len()
    }

    /// The configured retention bound, in entries.
    pub fn capacity(&self) -> usize {
        self.max_entries
    }

    /// Change the retention bound (minimum 1), trimming immediately if
    /// the retained history exceeds the new bound.
    pub fn set_capacity(&mut self, max_entries: usize) {
        self.max_entries = max_entries.max(1);
        self.max_ops = self.max_entries.saturating_mul(OPS_PER_ENTRY);
        self.trim();
    }

    /// Newest version the log can patch **to**.
    pub fn head(&self) -> u64 {
        self.base + self.entries.len() as u64
    }

    /// Lifetime count of entries dropped to stay within the retention
    /// budget (each drop shrinks the patchable span by one version).
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Drop all history and restart the chain at `version` (an untracked
    /// mutation happened — consumers must rebuild once).
    pub fn reset(&mut self, version: u64) {
        self.base = version;
        self.entries.clear();
        self.total_ops = 0;
    }

    /// Append the delta that produced `to_version`. If the log is not
    /// contiguous with it (should not happen through the system's API),
    /// the chain conservatively restarts at `to_version`.
    pub fn push(&mut self, to_version: u64, delta: GraphDelta) {
        if self.head() + 1 != to_version {
            self.reset(to_version);
            return;
        }
        self.total_ops += delta.weight();
        self.entries.push_back(delta);
        self.trim();
    }

    fn trim(&mut self) {
        while self.entries.len() > self.max_entries || self.total_ops > self.max_ops {
            if let Some(dropped) = self.entries.pop_front() {
                self.total_ops -= dropped.weight();
                self.base += 1;
                self.compactions += 1;
            } else {
                break;
            }
        }
    }

    /// The contiguous entries covering `(from, to]`, or `None` when the
    /// log cannot bridge that span (history trimmed, or the chain was
    /// broken by an untracked mutation).
    pub fn span(&self, from: u64, to: u64) -> Option<impl Iterator<Item = &GraphDelta>> {
        if from < self.base || to > self.head() || from > to {
            return None;
        }
        let a = (from - self.base) as usize;
        let b = (to - self.base) as usize;
        Some(self.entries.range(a..b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(n_ops: usize) -> GraphDelta {
        GraphDelta {
            ops: (0..n_ops)
                .map(|i| DeltaOp::SetValues {
                    relation: "R".into(),
                    key: Tuple::new(vec![proql_common::Value::Int(i as i64)]),
                })
                .collect(),
            rows: Vec::new(),
            touched: ["R".to_string()].into_iter().collect(),
            overflowed: false,
        }
    }

    #[test]
    fn push_op_caps_and_overflows() {
        let mut d = GraphDelta::default();
        for i in 0..(ENTRY_OPS_CAP + 10) {
            d.push_op(DeltaOp::SetValues {
                relation: "R".into(),
                key: Tuple::new(vec![proql_common::Value::Int(i as i64)]),
            });
        }
        assert!(d.overflowed);
        assert!(d.ops.is_empty(), "overflowed ops are dropped, not kept");
        assert!(!d.is_empty() || d.touched.is_empty());
    }

    #[test]
    fn rows_share_the_op_budget() {
        let mut d = GraphDelta::default();
        let row = Tuple::new(vec![proql_common::Value::Int(1)]);
        for _ in 0..(ENTRY_OPS_CAP / 2) {
            d.push_op(DeltaOp::SetValues {
                relation: "R".into(),
                key: row.clone(),
            });
            d.push_row("R", &row, true);
        }
        assert!(!d.overflowed);
        // One more record of either kind tips the shared budget over.
        d.push_row("R", &row, false);
        assert!(d.overflowed);
        assert!(d.ops.is_empty() && d.rows.is_empty());
        // Further pushes stay ignored.
        d.push_op(DeltaOp::SetValues {
            relation: "R".into(),
            key: row.clone(),
        });
        assert!(d.ops.is_empty());
    }

    #[test]
    fn contiguous_push_and_span() {
        let mut log = DeltaLog::default();
        log.reset(10);
        log.push(11, delta(1));
        log.push(12, delta(2));
        assert_eq!(log.base(), 10);
        assert_eq!(log.head(), 12);
        assert_eq!(log.span(10, 12).unwrap().count(), 2);
        assert_eq!(log.span(11, 12).unwrap().count(), 1);
        assert_eq!(log.span(12, 12).unwrap().count(), 0);
        assert!(log.span(9, 12).is_none());
        assert!(log.span(10, 13).is_none());
    }

    #[test]
    fn non_contiguous_push_resets() {
        let mut log = DeltaLog::default();
        log.reset(0);
        log.push(1, delta(1));
        log.push(5, delta(1)); // gap: chain restarts at 5
        assert_eq!(log.base(), 5);
        assert_eq!(log.head(), 5);
        assert!(log.span(0, 1).is_none());
    }

    #[test]
    fn trimming_advances_base() {
        let mut log = DeltaLog::default();
        log.reset(0);
        for v in 1..=(DEFAULT_MAX_ENTRIES as u64 + 10) {
            log.push(v, delta(0));
        }
        assert_eq!(log.head(), DEFAULT_MAX_ENTRIES as u64 + 10);
        assert_eq!(log.base(), 10);
        assert!(log.span(0, log.head()).is_none());
        assert!(log.span(log.base(), log.head()).is_some());
    }

    #[test]
    fn op_budget_trims() {
        let mut log = DeltaLog::default();
        log.reset(0);
        log.push(1, delta(DEFAULT_MAX_ENTRIES * OPS_PER_ENTRY - 1));
        log.push(2, delta(2));
        assert_eq!(log.base(), 1, "oversized history must drop the oldest");
    }

    #[test]
    fn configured_capacity_bounds_depth_and_shrinking_trims() {
        let mut log = DeltaLog::with_capacity(4);
        assert_eq!(log.capacity(), 4);
        log.reset(0);
        for v in 1..=10u64 {
            log.push(v, delta(1));
        }
        assert_eq!(log.depth(), 4);
        assert_eq!(log.base(), 6, "base is the trimmed low watermark");
        assert!(log.span(5, 10).is_none());
        assert!(log.span(6, 10).is_some());
        // Shrinking the bound trims retained history immediately.
        log.set_capacity(2);
        assert_eq!(log.depth(), 2);
        assert_eq!(log.base(), 8);
    }

    #[test]
    fn env_capacity_is_honored() {
        std::env::set_var("PROQL_DELTA_LOG_CAP", "7");
        let log = DeltaLog::from_env();
        std::env::remove_var("PROQL_DELTA_LOG_CAP");
        assert_eq!(log.capacity(), 7);
        assert_eq!(DeltaLog::from_env().capacity(), DEFAULT_MAX_ENTRIES);
    }
}
