//! Incrementally-maintained table statistics for the cost-based optimizer.
//!
//! The paper delegates query optimization to the backing DBMS; our embedded
//! engine has to bring its own statistics. Every [`crate::table::Table`]
//! maintains a [`TableStats`]: the live row count plus, per column, the
//! number of distinct values and the min/max — updated **incrementally** on
//! every insert and delete, so the optimizer never scans data to estimate
//! cardinalities. Distinct values are tracked exactly (a `BTreeMap` of
//! value → live count), which also yields min/max for range-selectivity
//! interpolation.
//!
//! Plan caches compare statistics across system versions through
//! [`TableStats::fingerprint`]: a **bucketed** digest (log₂ of row count
//! and per-column NDV) that stays stable under small mutations, so a
//! prepared plan survives point writes and is re-optimized only when the
//! relevant tables change by enough to move a cost estimate.

use proql_common::{Tuple, Value};
use std::collections::BTreeMap;

/// Distinct-value and min/max statistics of one column.
///
/// `NULL`s are excluded from the distinct map (and from min/max) and
/// counted separately, mirroring SQL semantics where `NULL` never joins
/// or compares.
///
/// Columns backed by a table dictionary key their counts by `u32` code
/// instead of cloning full `Value::Str` keys — the NDV (what the optimizer
/// actually reads for strings) is identical, since a dictionary code *is*
/// a distinct string, and the per-entry footprint drops from a boxed
/// string to four bytes.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    counts: Counts,
    nulls: usize,
}

/// The distinct-count map, keyed by value or by dictionary code.
#[derive(Debug, Clone)]
enum Counts {
    Values(BTreeMap<Value, u32>),
    Codes(BTreeMap<u32, u32>),
}

impl Default for ColumnStats {
    fn default() -> Self {
        ColumnStats {
            counts: Counts::Values(BTreeMap::new()),
            nulls: 0,
        }
    }
}

impl ColumnStats {
    /// Number of distinct non-NULL values currently live.
    pub fn ndv(&self) -> usize {
        match &self.counts {
            Counts::Values(m) => m.len(),
            Counts::Codes(m) => m.len(),
        }
    }

    /// Number of live NULLs.
    pub fn null_count(&self) -> usize {
        self.nulls
    }

    /// Smallest live non-NULL value. `None` for code-keyed (string)
    /// columns — only numeric range interpolation reads bounds, and string
    /// columns never interpolate (see [`ColumnStats::fraction_below`]).
    pub fn min(&self) -> Option<&Value> {
        match &self.counts {
            Counts::Values(m) => m.keys().next(),
            Counts::Codes(_) => None,
        }
    }

    /// Largest live non-NULL value (see [`ColumnStats::min`]).
    pub fn max(&self) -> Option<&Value> {
        match &self.counts {
            Counts::Values(m) => m.keys().next_back(),
            Counts::Codes(_) => None,
        }
    }

    fn add(&mut self, v: &Value, code: Option<u32>) {
        if v.is_null() {
            self.nulls += 1;
            return;
        }
        match (&mut self.counts, code) {
            (Counts::Values(m), None) => *m.entry(v.clone()).or_insert(0) += 1,
            (Counts::Codes(m), Some(c)) => *m.entry(c).or_insert(0) += 1,
            // First coded value on a fresh column: switch to code keys.
            (Counts::Values(m), Some(c)) if m.is_empty() => {
                let mut codes = BTreeMap::new();
                codes.insert(c, 1);
                self.counts = Counts::Codes(codes);
            }
            // Mixed feeds (shouldn't happen — a column is either
            // dictionary-backed for its whole life or never): fall back to
            // value keys so counts stay exact.
            (Counts::Values(m), Some(_)) => *m.entry(v.clone()).or_insert(0) += 1,
            (Counts::Codes(_), None) => {
                let mut vals = BTreeMap::new();
                vals.insert(v.clone(), 1);
                if let Counts::Codes(m) = &self.counts {
                    debug_assert!(m.is_empty(), "uncoded value on a code-keyed column");
                }
                self.counts = Counts::Values(vals);
            }
        }
    }

    fn remove(&mut self, v: &Value, code: Option<u32>) {
        if v.is_null() {
            self.nulls = self.nulls.saturating_sub(1);
            return;
        }
        match (&mut self.counts, code) {
            (Counts::Codes(m), Some(c)) => {
                if let Some(n) = m.get_mut(&c) {
                    if *n <= 1 {
                        m.remove(&c);
                    } else {
                        *n -= 1;
                    }
                }
            }
            (Counts::Values(m), _) => {
                if let Some(n) = m.get_mut(v) {
                    if *n <= 1 {
                        m.remove(v);
                    } else {
                        *n -= 1;
                    }
                }
            }
            (Counts::Codes(_), None) => {}
        }
    }

    fn reset(&mut self) {
        self.counts = Counts::Values(BTreeMap::new());
        self.nulls = 0;
    }

    /// Estimated fraction of rows whose value is `< v` (uniformity within
    /// `[min, max]`). `None` when the column is empty or non-numeric.
    pub fn fraction_below(&self, v: &Value) -> Option<f64> {
        let lo = numeric(self.min()?)?;
        let hi = numeric(self.max()?)?;
        let x = numeric(v)?;
        if hi <= lo {
            // Single-point domain: everything sits at `lo`.
            return Some(if x > lo { 1.0 } else { 0.0 });
        }
        Some(((x - lo) / (hi - lo)).clamp(0.0, 1.0))
    }
}

fn numeric(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// Statistics of one table: live row count plus per-column [`ColumnStats`].
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    rows: usize,
    columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Empty statistics for a table of the given arity.
    pub fn new(arity: usize) -> Self {
        TableStats {
            rows: 0,
            columns: vec![ColumnStats::default(); arity],
        }
    }

    /// Live rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Statistics of column `i`.
    pub fn column(&self, i: usize) -> Option<&ColumnStats> {
        self.columns.get(i)
    }

    #[cfg(test)]
    pub(crate) fn add_row(&mut self, t: &Tuple) {
        self.add_row_coded(t, &[]);
    }

    #[cfg(test)]
    pub(crate) fn remove_row(&mut self, t: &Tuple) {
        self.remove_row_coded(t, &[]);
    }

    /// [`TableStats::add_row`] with dictionary codes for the columns that
    /// have them (`codes` may be shorter than the arity; missing / `None`
    /// entries count by value).
    pub(crate) fn add_row_coded(&mut self, t: &Tuple, codes: &[Option<u32>]) {
        self.rows += 1;
        for (i, (c, v)) in self.columns.iter_mut().zip(t.values()).enumerate() {
            c.add(v, codes.get(i).copied().flatten());
        }
    }

    /// Coded twin of [`TableStats::remove_row`].
    pub(crate) fn remove_row_coded(&mut self, t: &Tuple, codes: &[Option<u32>]) {
        self.rows = self.rows.saturating_sub(1);
        for (i, (c, v)) in self.columns.iter_mut().zip(t.values()).enumerate() {
            c.remove(v, codes.get(i).copied().flatten());
        }
    }

    pub(crate) fn clear(&mut self) {
        self.rows = 0;
        for c in &mut self.columns {
            c.reset();
        }
    }

    /// Bucketed digest of these statistics: log₂ buckets of the row count
    /// and of each column's NDV. Point inserts/deletes rarely change it;
    /// order-of-magnitude growth always does — exactly the granularity at
    /// which cached plans should be re-optimized.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.eat_u64(bucket(self.rows));
        for c in &self.columns {
            h.eat_u64(bucket(c.ndv()));
        }
        h.finish()
    }
}

/// log₂ bucket: 0 for 0, else floor(log₂(n)) + 1.
fn bucket(n: usize) -> u64 {
    (usize::BITS - n.leading_zeros()) as u64
}

/// Fingerprint of the statistics the optimizer reads for `relations`
/// against `db`: relation names plus each base table's
/// [`TableStats::fingerprint`]. Names that are views (or missing) hash by
/// name only — their estimates derive from the base tables, which callers
/// include by passing an expanded read set.
pub fn db_fingerprint<'a>(
    db: &crate::database::Database,
    relations: impl IntoIterator<Item = &'a str>,
) -> u64 {
    let mut h = Fnv::new();
    for rel in relations {
        h.eat_str(rel);
        if let Ok(t) = db.table(rel) {
            h.eat_u64(t.stats().fingerprint());
        }
    }
    h.finish()
}

/// Minimal FNV-1a hasher (the workspace has no external hash crates).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }

    fn eat_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    fn eat_str(&mut self, s: &str) {
        for b in s.bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
        self.eat_u64(0x1f);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proql_common::tup;

    #[test]
    fn add_remove_tracks_ndv_and_minmax() {
        let mut s = TableStats::new(2);
        s.add_row(&tup![1, "a"]);
        s.add_row(&tup![2, "a"]);
        s.add_row(&tup![2, "b"]);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.column(0).unwrap().ndv(), 2);
        assert_eq!(s.column(1).unwrap().ndv(), 2);
        assert_eq!(s.column(0).unwrap().min(), Some(&Value::Int(1)));
        assert_eq!(s.column(0).unwrap().max(), Some(&Value::Int(2)));
        s.remove_row(&tup![2, "a"]);
        assert_eq!(s.rows(), 2);
        // One live 2 remains, so NDV stays 2 on column 0 …
        assert_eq!(s.column(0).unwrap().ndv(), 2);
        s.remove_row(&tup![2, "b"]);
        // … and drops once the last 2 is gone.
        assert_eq!(s.column(0).unwrap().ndv(), 1);
        assert_eq!(s.column(0).unwrap().max(), Some(&Value::Int(1)));
        assert_eq!(s.column(1).unwrap().ndv(), 1);
    }

    #[test]
    fn nulls_are_counted_separately() {
        let mut s = TableStats::new(1);
        s.add_row(&Tuple::new(vec![Value::Null]));
        s.add_row(&tup![5]);
        let c = s.column(0).unwrap();
        assert_eq!(c.ndv(), 1);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.min(), Some(&Value::Int(5)));
    }

    #[test]
    fn fraction_below_interpolates() {
        let mut s = TableStats::new(1);
        for i in 0..=10 {
            s.add_row(&tup![i]);
        }
        let c = s.column(0).unwrap();
        assert_eq!(c.fraction_below(&Value::Int(5)), Some(0.5));
        assert_eq!(c.fraction_below(&Value::Int(-3)), Some(0.0));
        assert_eq!(c.fraction_below(&Value::Int(99)), Some(1.0));
        assert_eq!(c.fraction_below(&Value::str("x")), None);
    }

    #[test]
    fn fingerprint_is_bucketed() {
        let mut s = TableStats::new(1);
        for i in 0..100 {
            s.add_row(&tup![i]);
        }
        let fp = s.fingerprint();
        // A point delete stays within the log2 bucket.
        s.remove_row(&tup![0]);
        assert_eq!(s.fingerprint(), fp);
        // Doubling the table moves the bucket.
        for i in 100..300 {
            s.add_row(&tup![i]);
        }
        assert_ne!(s.fingerprint(), fp);
    }

    #[test]
    fn code_keyed_counts_match_value_keyed_ndv() {
        let mut s = TableStats::new(1);
        // Codes as a table dictionary would assign them: a=0, b=1.
        s.add_row_coded(&tup!["a"], &[Some(0)]);
        s.add_row_coded(&tup!["a"], &[Some(0)]);
        s.add_row_coded(&tup!["b"], &[Some(1)]);
        let c = s.column(0).unwrap();
        assert_eq!(c.ndv(), 2);
        // Code-keyed columns report no bounds; string columns never use
        // range interpolation, so estimates are unchanged.
        assert_eq!(c.min(), None);
        assert_eq!(c.fraction_below(&Value::str("a")), None);
        s.remove_row_coded(&tup!["a"], &[Some(0)]);
        assert_eq!(s.column(0).unwrap().ndv(), 2);
        s.remove_row_coded(&tup!["a"], &[Some(0)]);
        assert_eq!(s.column(0).unwrap().ndv(), 1);
        // NULLs count separately regardless of keying.
        s.add_row_coded(&Tuple::new(vec![Value::Null]), &[None]);
        assert_eq!(s.column(0).unwrap().null_count(), 1);
    }

    #[test]
    fn clear_resets() {
        let mut s = TableStats::new(1);
        s.add_row(&tup![1]);
        s.clear();
        assert_eq!(s.rows(), 0);
        assert_eq!(s.column(0).unwrap().ndv(), 0);
    }
}
