//! The columnar batch executor.
//!
//! Operator-at-a-time evaluation over [`RecordBatch`]es: every plan node
//! consumes whole batches and produces a whole batch, with vectorized
//! predicate/projection evaluation ([`crate::batch`]), hash equi-joins with
//! build-side selection, and hash-based grouped aggregation. Results are
//! bit-identical to the row executor ([`crate::exec`]) — property tests in
//! the workspace assert equivalence on randomized instances — but the
//! columnar layout avoids per-row `Tuple` allocation on the hot provenance
//! workloads (dense integer `P_m` chains).
//!
//! # Morsel-driven parallelism
//!
//! Every data-parallel operator also has a **morsel-driven parallel** path
//! selected by [`Parallelism`] (default [`Parallelism::Serial`]): scans,
//! filters, and projections split their input into [`MORSEL_ROWS`]-sized
//! morsels evaluated on scoped worker threads and reassembled in morsel
//! order; hash joins run two-phase (parallel partition-by-hash of both
//! sides, then per-partition build+probe in parallel, then a canonical
//! `(left, right)` sort); grouped aggregation computes per-morsel partial
//! group tables merged deterministically in morsel index order. All merge
//! orders are fixed by morsel/partition index, so parallel output is
//! **bit-identical** to serial output — including `f64` SUM results, whose
//! accumulation order is the global row order in both paths.

use crate::batch::{eval_expr, eval_mask, Column, RecordBatch};
use crate::database::Database;
use crate::exec::{join_names, JoinAlgo, Relation, MAX_VIEW_DEPTH};
use crate::expr::Expr;
use crate::plan::{AggFunc, Aggregate, BuildSide, JoinType, Plan};
use proql_common::par::{morsel_ranges, par_map, MORSEL_ROWS};
use proql_common::{trace, Error, Parallelism, Result, Value};
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// Which executor [`execute_with`] dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Columnar batch pipeline (the default).
    #[default]
    Batch,
    /// Row-at-a-time with hash joins (the pre-batch executor).
    Row,
    /// Row-at-a-time with nested-loop joins (ablation baseline).
    NestedLoop,
}

/// Execute `plan` under the selected executor, materializing a row
/// [`Relation`] either way (callers downstream are row-oriented).
pub fn execute_with(db: &Database, plan: &Plan, mode: ExecMode) -> Result<Relation> {
    execute_with_opts(db, plan, mode, Parallelism::Serial)
}

/// [`execute_with`] plus a [`Parallelism`] knob. Only the batch executor
/// parallelizes; the row executors are serial oracles kept bit-for-bit
/// stable.
pub fn execute_with_opts(
    db: &Database,
    plan: &Plan,
    mode: ExecMode,
    par: Parallelism,
) -> Result<Relation> {
    match mode {
        ExecMode::Batch => {
            let batch = execute_batch_opts(db, plan, par)?;
            Ok(Relation {
                names: batch.names.clone(),
                rows: batch.to_rows(),
            })
        }
        ExecMode::Row => crate::exec::execute_rows(db, plan, JoinAlgo::Hash),
        ExecMode::NestedLoop => crate::exec::execute_rows(db, plan, JoinAlgo::NestedLoop),
    }
}

/// Execute `plan`, producing a columnar batch.
pub fn execute_batch(db: &Database, plan: &Plan) -> Result<RecordBatch> {
    execute_batch_opts(db, plan, Parallelism::Serial)
}

/// [`execute_batch`] with morsel-driven parallelism. Output is guaranteed
/// bit-identical to the serial run for every plan shape.
pub fn execute_batch_opts(db: &Database, plan: &Plan, par: Parallelism) -> Result<RecordBatch> {
    exec_inner(db, plan, 0, par.resolved(), None)
}

/// Actual row count and wall time of one plan operator, recorded by
/// [`execute_batch_profiled`]. Stats are indexed in the **pre-order** the
/// plan renderer walks ([`crate::explain::explain_tree`]): node first,
/// then children (Join: left, then right), with view bodies excluded —
/// so `stats[i]` annotates the `i`-th rendered plan line.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpStat {
    /// Rows the operator produced.
    pub rows: u64,
    /// Wall time of the operator *including* its inputs, in nanoseconds
    /// (the tree renderer shows inclusive time, like the plan's nesting).
    pub nanos: u64,
}

/// Collector for per-operator actuals. Slots are reserved at operator
/// entry (pre-order) and filled at operator exit; a `Mutex` only because
/// the profile is shared with the morsel worker scope — plan recursion
/// itself stays on one thread.
struct PlanProfile {
    slots: Mutex<Vec<OpStat>>,
}

impl PlanProfile {
    fn new() -> PlanProfile {
        PlanProfile {
            slots: Mutex::new(Vec::new()),
        }
    }

    /// Reserve the next pre-order slot.
    fn reserve(&self) -> usize {
        let mut s = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        s.push(OpStat::default());
        s.len() - 1
    }

    fn record(&self, idx: usize, rows: u64, nanos: u64) {
        let mut s = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(slot) = s.get_mut(idx) {
            *slot = OpStat { rows, nanos };
        }
    }

    fn into_stats(self) -> Vec<OpStat> {
        self.slots.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// Execute `plan` collecting per-operator actual row counts and timings
/// (the `EXPLAIN ANALYZE` backend). The stats vector is ordered exactly
/// like the rendered plan tree; pass it to
/// [`crate::explain::explain_tree_analyzed`].
pub fn execute_batch_profiled(
    db: &Database,
    plan: &Plan,
    par: Parallelism,
) -> Result<(RecordBatch, Vec<OpStat>)> {
    let prof = PlanProfile::new();
    let batch = exec_inner(db, plan, 0, par.resolved(), Some(&prof))?;
    Ok((batch, prof.into_stats()))
}

/// Static trace-span name for a plan operator.
fn op_name(plan: &Plan) -> &'static str {
    match plan {
        Plan::Scan { .. } => "op.scan",
        Plan::Values { .. } => "op.values",
        Plan::Filter { .. } => "op.filter",
        Plan::Project { .. } => "op.project",
        Plan::Join { .. } => "op.join",
        Plan::Union { .. } => "op.union",
        Plan::Distinct { .. } => "op.distinct",
        Plan::Aggregate { .. } => "op.aggregate",
        Plan::Sort { .. } => "op.sort",
        Plan::Limit { .. } => "op.limit",
        Plan::IndexLookup { .. } => "op.index_lookup",
    }
}

/// Observability shim around [`exec_node`]: reserves the operator's
/// pre-order profile slot on entry, times the node inclusively, opens a
/// per-operator trace span, and stamps both with the actual row count on
/// exit. With profiling off and tracing disabled this reduces to two
/// cheap branches per node.
fn exec_inner(
    db: &Database,
    plan: &Plan,
    depth: usize,
    par: Parallelism,
    prof: Option<&PlanProfile>,
) -> Result<RecordBatch> {
    if prof.is_none() && !trace::enabled() {
        return exec_node(db, plan, depth, par, prof);
    }
    let slot = prof.map(|p| p.reserve());
    let mut sp = trace::span(op_name(plan));
    let start = Instant::now();
    let result = exec_node(db, plan, depth, par, prof);
    if let Ok(batch) = &result {
        let nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        if let (Some(p), Some(idx)) = (prof, slot) {
            p.record(idx, batch.len() as u64, nanos);
        }
        sp.field("rows", batch.len().to_string());
    } else {
        sp.field("error", "true");
    }
    result
}

/// True when `rows` is big enough (and `par` parallel enough) that cutting
/// into morsels beats a serial pass.
fn go_parallel(par: Parallelism, rows: usize) -> bool {
    par.threads() > 1 && rows > MORSEL_ROWS
}

/// Concatenate per-morsel result batches in morsel index order.
fn concat_batches(parts: Vec<Result<RecordBatch>>) -> Result<RecordBatch> {
    let mut iter = parts.into_iter();
    let mut acc = iter
        .next()
        .ok_or_else(|| Error::Storage("empty morsel set".into()))??;
    for part in iter {
        let batch = part?;
        let rows = acc.len() + batch.len();
        let names = std::mem::take(&mut acc.names);
        let cols = std::mem::take(&mut acc.columns)
            .into_iter()
            .zip(batch.columns)
            .map(|(a, b)| a.append(b))
            .collect();
        acc = RecordBatch::new(names, cols, rows);
    }
    Ok(acc)
}

fn exec_node(
    db: &Database,
    plan: &Plan,
    depth: usize,
    par: Parallelism,
    prof: Option<&PlanProfile>,
) -> Result<RecordBatch> {
    if depth > MAX_VIEW_DEPTH {
        return Err(Error::Storage(
            "view expansion too deep (cyclic view definition?)".into(),
        ));
    }
    match plan {
        Plan::Scan { table } => {
            if let Ok(t) = db.table(table) {
                let names: Vec<String> = t
                    .schema()
                    .attributes()
                    .iter()
                    .map(|a| a.name.clone())
                    .collect();
                if go_parallel(par, t.len()) {
                    // Parallel transpose: each morsel of rows becomes its
                    // own column chunk, appended in morsel order.
                    let rows: Vec<&proql_common::Tuple> = t.iter().collect();
                    let ranges = morsel_ranges(rows.len());
                    let parts = par_map(ranges.len(), par.threads(), |i| {
                        Ok(RecordBatch::from_rows(
                            names.clone(),
                            rows[ranges[i].clone()].iter().copied(),
                        ))
                    });
                    concat_batches(parts)
                } else {
                    Ok(RecordBatch::from_rows(names, t.iter()))
                }
            } else if let Some(v) = db.view(table) {
                // View bodies are not rendered by the plan tree, so they
                // take no profile slots (keeps pre-order indices aligned).
                let mut batch = exec_inner(db, &v.plan, depth + 1, par, None)?;
                let names: Vec<String> = v
                    .schema
                    .attributes()
                    .iter()
                    .map(|a| a.name.clone())
                    .collect();
                if names.len() != batch.arity() {
                    return Err(Error::Storage(format!(
                        "view {table} schema arity mismatch"
                    )));
                }
                batch.names = names;
                Ok(batch)
            } else {
                Err(Error::NotFound(format!("relation {table}")))
            }
        }
        Plan::Values { schema, rows } => {
            let names = schema.attributes().iter().map(|a| a.name.clone()).collect();
            Ok(RecordBatch::from_rows(names, rows.iter()))
        }
        Plan::Filter { input, predicate } => {
            let batch = exec_inner(db, input, depth, par, prof)?;
            if go_parallel(par, batch.len()) {
                // Each morsel slice copies its rows once so the vectorized
                // evaluators can stay whole-batch; range-parameterizing
                // eval_expr/eval_mask would avoid the copy if it ever shows
                // up in profiles.
                let ranges = morsel_ranges(batch.len());
                let parts = par_map(ranges.len(), par.threads(), |i| {
                    let m = batch.slice(ranges[i].clone());
                    let mask = eval_mask(predicate, &m)?;
                    Ok(m.filter(&mask))
                });
                concat_batches(parts)
            } else {
                let mask = eval_mask(predicate, &batch)?;
                Ok(batch.filter(&mask))
            }
        }
        Plan::Project {
            input,
            exprs,
            names,
        } => {
            let batch = exec_inner(db, input, depth, par, prof)?;
            if names.len() != exprs.len() {
                return Err(Error::Storage("project names/exprs length mismatch".into()));
            }
            if go_parallel(par, batch.len()) {
                let ranges = morsel_ranges(batch.len());
                let parts = par_map(ranges.len(), par.threads(), |i| {
                    let m = batch.slice(ranges[i].clone());
                    let columns: Vec<Column> = exprs
                        .iter()
                        .map(|e| eval_expr(e, &m))
                        .collect::<Result<_>>()?;
                    let rows = m.len();
                    Ok(RecordBatch::new(names.clone(), columns, rows))
                });
                concat_batches(parts)
            } else {
                let columns: Vec<Column> = exprs
                    .iter()
                    .map(|e| eval_expr(e, &batch))
                    .collect::<Result<_>>()?;
                Ok(RecordBatch::new(names.clone(), columns, batch.len()))
            }
        }
        Plan::Join {
            left,
            right,
            join_type,
            left_keys,
            right_keys,
            build,
        } => {
            let l = exec_inner(db, left, depth, par, prof)?;
            let r = exec_inner(db, right, depth, par, prof)?;
            batch_join(&l, &r, *join_type, left_keys, right_keys, *build, par)
        }
        Plan::Union { inputs, distinct } => {
            if inputs.is_empty() {
                return Ok(RecordBatch::empty(vec![]));
            }
            let mut acc = exec_inner(db, &inputs[0], depth, par, prof)?;
            for p in &inputs[1..] {
                let batch = exec_inner(db, p, depth, par, prof)?;
                if batch.arity() != acc.arity() {
                    return Err(Error::Storage(format!(
                        "union arity mismatch: {} vs {}",
                        acc.arity(),
                        batch.arity()
                    )));
                }
                let rows = acc.len() + batch.len();
                let names = std::mem::take(&mut acc.names);
                let cols = std::mem::take(&mut acc.columns)
                    .into_iter()
                    .zip(batch.columns)
                    .map(|(a, b)| a.append(b))
                    .collect();
                acc = RecordBatch::new(names, cols, rows);
            }
            if *distinct {
                acc = batch_distinct(&acc);
            }
            Ok(acc)
        }
        Plan::Distinct { input } => {
            let batch = exec_inner(db, input, depth, par, prof)?;
            Ok(batch_distinct(&batch))
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
            having,
        } => {
            let batch = exec_inner(db, input, depth, par, prof)?;
            batch_aggregate_opts(&batch, group_by, aggs, having.as_ref(), par)
        }
        Plan::Sort { input, by } => {
            let batch = exec_inner(db, input, depth, par, prof)?;
            if let Some(&c) = by.iter().find(|&&c| c >= batch.arity()) {
                return Err(Error::Storage(format!("sort column {c} out of range")));
            }
            let mut idx: Vec<u32> = (0..batch.len() as u32).collect();
            idx.sort_by(|&a, &b| {
                for &c in by {
                    let col = &batch.columns[c];
                    let ord = col.value(a as usize).cmp(&col.value(b as usize));
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            Ok(batch.gather(&idx))
        }
        Plan::Limit { input, n } => {
            let batch = exec_inner(db, input, depth, par, prof)?;
            if batch.len() <= *n {
                return Ok(batch);
            }
            let idx: Vec<u32> = (0..*n as u32).collect();
            Ok(batch.gather(&idx))
        }
        Plan::IndexLookup { .. } => {
            // Index lookups touch few rows; reuse the row executor's logic
            // and transpose.
            let rel = crate::exec::execute(db, plan)?;
            Ok(RecordBatch::from_rows(rel.names, rel.rows.iter()))
        }
    }
}

/// Matched pairs + NULL-padded rows of a join, in the canonical order both
/// join cores produce: `out_l`/`out_r` sorted by `(left, right)` row index,
/// pads sorted ascending.
struct JoinRows {
    out_l: Vec<u32>,
    out_r: Vec<u32>,
    pad_l: Vec<u32>,
    pad_r: Vec<u32>,
}

/// Hash equi-join over batches. `build` selects the hash-table side;
/// `Auto` builds on the smaller input. The parallel core partitions both
/// sides by key hash and runs per-partition build+probe on worker threads;
/// the canonical `(left, right)` output sort makes it bit-identical to the
/// serial core.
fn batch_join(
    l: &RecordBatch,
    r: &RecordBatch,
    join_type: JoinType,
    left_keys: &[usize],
    right_keys: &[usize],
    build: BuildSide,
    par: Parallelism,
) -> Result<RecordBatch> {
    if left_keys.len() != right_keys.len() {
        return Err(Error::Storage("join key arity mismatch".into()));
    }
    // Malformed plans must surface as errors, not index panics, so the
    // service worker pool survives bad requests.
    if let Some(&k) = left_keys.iter().find(|&&k| k >= l.arity()) {
        return Err(Error::Storage(format!("left join key {k} out of range")));
    }
    if let Some(&k) = right_keys.iter().find(|&&k| k >= r.arity()) {
        return Err(Error::Storage(format!("right join key {k} out of range")));
    }
    let names = join_names(&l.names, &r.names);
    let build_left = match build {
        BuildSide::Left => true,
        BuildSide::Right => false,
        BuildSide::Auto => l.len() < r.len(),
    };
    let (b, b_keys, p, p_keys) = if build_left {
        (l, left_keys, r, right_keys)
    } else {
        (r, right_keys, l, left_keys)
    };
    let pad_left_rows = matches!(join_type, JoinType::LeftOuter | JoinType::FullOuter);
    let pad_right_rows = matches!(join_type, JoinType::RightOuter | JoinType::FullOuter);

    let rows = if go_parallel(par, b.len() + p.len()) {
        parallel_join_core(
            b,
            b_keys,
            p,
            p_keys,
            build_left,
            pad_left_rows,
            pad_right_rows,
            par,
        )
    } else {
        serial_join_core(
            b,
            b_keys,
            p,
            p_keys,
            build_left,
            pad_left_rows,
            pad_right_rows,
        )
    };
    assemble_join(l, r, names, rows)
}

/// Single-threaded build+probe (the original executor).
fn serial_join_core(
    b: &RecordBatch,
    b_keys: &[usize],
    p: &RecordBatch,
    p_keys: &[usize],
    build_left: bool,
    pad_left_rows: bool,
    pad_right_rows: bool,
) -> JoinRows {
    // Build: hash → row indices on the build side (NULL keys never match).
    let b_hashes = b.key_hashes(b_keys);
    let mut table: HashMap<u64, Vec<u32>> = HashMap::with_capacity(b.len());
    for (i, &h) in b_hashes.iter().enumerate() {
        if b.key_has_null(b_keys, i) {
            continue;
        }
        table.entry(h).or_default().push(i as u32);
    }

    // Probe: emit (left row, right row) index pairs for matched rows and
    // collect rows needing NULL padding.
    let p_hashes = p.key_hashes(p_keys);
    let mut matched_build = vec![false; b.len()];
    let mut out_l: Vec<u32> = Vec::new();
    let mut out_r: Vec<u32> = Vec::new();
    let mut pad_l: Vec<u32> = Vec::new();
    let mut pad_r: Vec<u32> = Vec::new();
    for (pi, &h) in p_hashes.iter().enumerate() {
        let mut any = false;
        if !p.key_has_null(p_keys, pi) {
            if let Some(cands) = table.get(&h) {
                for &bi in cands {
                    if p.keys_eq(p_keys, pi, b, b_keys, bi as usize) {
                        any = true;
                        matched_build[bi as usize] = true;
                        if build_left {
                            out_l.push(bi);
                            out_r.push(pi as u32);
                        } else {
                            out_l.push(pi as u32);
                            out_r.push(bi);
                        }
                    }
                }
            }
        }
        if !any {
            // The probe side is left when building right, and vice versa.
            if build_left {
                if pad_right_rows {
                    pad_r.push(pi as u32);
                }
            } else if pad_left_rows {
                pad_l.push(pi as u32);
            }
        }
    }
    for (bi, &m) in matched_build.iter().enumerate() {
        if !m {
            if build_left {
                if pad_left_rows {
                    pad_l.push(bi as u32);
                }
            } else if pad_right_rows {
                pad_r.push(bi as u32);
            }
        }
    }
    // When the build side is the left input, matched pairs were emitted in
    // probe (= right) major order; restore the canonical left-major order.
    // (Building right already emits sorted by (left, right).)
    if build_left && !out_l.is_empty() {
        let mut perm: Vec<usize> = (0..out_l.len()).collect();
        perm.sort_by_key(|&i| (out_l[i], out_r[i]));
        out_l = perm.iter().map(|&i| out_l[i]).collect();
        out_r = perm.iter().map(|&i| out_r[i]).collect();
    }
    pad_l.sort_unstable();
    pad_r.sort_unstable();
    JoinRows {
        out_l,
        out_r,
        pad_l,
        pad_r,
    }
}

/// Two-phase parallel build+probe: partition both sides by key hash, then
/// build+probe each partition on a worker thread. A build row and every
/// probe row that can match it land in the same partition, so partitions
/// are independent; the final global `(left, right)` sort restores the
/// serial core's exact row order.
#[allow(clippy::too_many_arguments)]
fn parallel_join_core(
    b: &RecordBatch,
    b_keys: &[usize],
    p: &RecordBatch,
    p_keys: &[usize],
    build_left: bool,
    pad_left_rows: bool,
    pad_right_rows: bool,
    par: Parallelism,
) -> JoinRows {
    let threads = par.threads();
    let b_hashes = b.key_hashes_par(b_keys, par);
    let p_hashes = p.key_hashes_par(p_keys, par);
    // Power-of-two partition count a bit above the thread count, so one
    // slow partition does not serialize the tail.
    let n_parts = (threads * 4).next_power_of_two();
    let mask = n_parts - 1;

    let mut b_parts: Vec<Vec<u32>> = vec![Vec::new(); n_parts];
    for (i, &h) in b_hashes.iter().enumerate() {
        if !b.key_has_null(b_keys, i) {
            b_parts[(h as usize) & mask].push(i as u32);
        }
    }
    let mut p_parts: Vec<Vec<u32>> = vec![Vec::new(); n_parts];
    // NULL-keyed probe rows never match: straight to the unmatched list.
    let mut unmatched_probe: Vec<u32> = Vec::new();
    for (i, &h) in p_hashes.iter().enumerate() {
        if p.key_has_null(p_keys, i) {
            unmatched_probe.push(i as u32);
        } else {
            p_parts[(h as usize) & mask].push(i as u32);
        }
    }

    // (matched (build,probe) pairs, matched build rows, unmatched probe
    // rows) per partition.
    type PartOut = (Vec<(u32, u32)>, Vec<u32>, Vec<u32>);
    let parts: Vec<PartOut> = par_map(n_parts, threads, |part| {
        let mut table: HashMap<u64, Vec<u32>> = HashMap::with_capacity(b_parts[part].len());
        for &bi in &b_parts[part] {
            table.entry(b_hashes[bi as usize]).or_default().push(bi);
        }
        let mut pairs = Vec::new();
        let mut matched = Vec::new();
        let mut unmatched = Vec::new();
        for &pi in &p_parts[part] {
            let mut any = false;
            if let Some(cands) = table.get(&p_hashes[pi as usize]) {
                for &bi in cands {
                    if p.keys_eq(p_keys, pi as usize, b, b_keys, bi as usize) {
                        any = true;
                        pairs.push((bi, pi));
                        matched.push(bi);
                    }
                }
            }
            if !any {
                unmatched.push(pi);
            }
        }
        (pairs, matched, unmatched)
    });

    let mut matched_build = vec![false; b.len()];
    let mut lr: Vec<(u32, u32)> = Vec::new();
    for (pairs, matched, unmatched) in parts {
        for (bi, pi) in pairs {
            lr.push(if build_left { (bi, pi) } else { (pi, bi) });
        }
        for bi in matched {
            matched_build[bi as usize] = true;
        }
        unmatched_probe.extend(unmatched);
    }
    // Canonical order: (left, right) ascending; pairs are unique, so the
    // unstable sort is deterministic.
    lr.sort_unstable();
    let (out_l, out_r) = lr.into_iter().unzip();

    let mut pad_l: Vec<u32> = Vec::new();
    let mut pad_r: Vec<u32> = Vec::new();
    for &pi in &unmatched_probe {
        if build_left {
            if pad_right_rows {
                pad_r.push(pi);
            }
        } else if pad_left_rows {
            pad_l.push(pi);
        }
    }
    for (bi, &m) in matched_build.iter().enumerate() {
        if !m {
            if build_left {
                if pad_left_rows {
                    pad_l.push(bi as u32);
                }
            } else if pad_right_rows {
                pad_r.push(bi as u32);
            }
        }
    }
    pad_l.sort_unstable();
    pad_r.sort_unstable();
    JoinRows {
        out_l,
        out_r,
        pad_l,
        pad_r,
    }
}

/// Assemble the output in the row executor's exact order: a left-major
/// merge of matched pairs and NULL-padded unmatched left rows (a left row
/// is either matched or padded, never both), then unmatched right rows.
/// `None` gathers as NULL.
fn assemble_join(
    l: &RecordBatch,
    r: &RecordBatch,
    names: Vec<String>,
    rows: JoinRows,
) -> Result<RecordBatch> {
    let JoinRows {
        out_l,
        out_r,
        pad_l,
        pad_r,
    } = rows;
    let total = out_l.len() + pad_l.len() + pad_r.len();
    let mut fin_l: Vec<Option<u32>> = Vec::with_capacity(total);
    let mut fin_r: Vec<Option<u32>> = Vec::with_capacity(total);
    let (mut i, mut j) = (0usize, 0usize);
    while i < out_l.len() || j < pad_l.len() {
        let take_matched = match (out_l.get(i), pad_l.get(j)) {
            (Some(&m), Some(&pad)) => m < pad,
            (Some(_), None) => true,
            _ => false,
        };
        if take_matched {
            fin_l.push(Some(out_l[i]));
            fin_r.push(Some(out_r[i]));
            i += 1;
        } else {
            fin_l.push(Some(pad_l[j]));
            fin_r.push(None);
            j += 1;
        }
    }
    for &ri in &pad_r {
        fin_l.push(None);
        fin_r.push(Some(ri));
    }

    let mut columns = Vec::with_capacity(l.arity() + r.arity());
    for c in &l.columns {
        columns.push(c.gather_opt(&fin_l));
    }
    for c in &r.columns {
        columns.push(c.gather_opt(&fin_r));
    }
    Ok(RecordBatch::new(names, columns, total))
}

/// Hash-based distinct preserving first occurrence order.
fn batch_distinct(batch: &RecordBatch) -> RecordBatch {
    let all: Vec<usize> = (0..batch.arity()).collect();
    let hashes = batch.key_hashes(&all);
    let mut seen: HashMap<u64, Vec<u32>> = HashMap::with_capacity(batch.len());
    let mut keep: Vec<u32> = Vec::new();
    'rows: for (i, &h) in hashes.iter().enumerate() {
        let bucket = seen.entry(h).or_default();
        for &j in bucket.iter() {
            if batch.keys_eq(&all, i, batch, &all, j as usize) {
                continue 'rows;
            }
        }
        bucket.push(i as u32);
        keep.push(i as u32);
    }
    batch.gather(&keep)
}

/// Hash-grouped aggregation. Groups preserve first-seen order (matching the
/// row executor); aggregates run with typed fast paths over dense columns.
///
/// Public because the annotation layer evaluates semiring ⊕-sums directly
/// through this operator (paper §4.2.4's `GROUP BY` step) without building
/// a plan tree around it.
pub fn batch_aggregate(
    batch: &RecordBatch,
    group_by: &[usize],
    aggs: &[Aggregate],
    having: Option<&Expr>,
) -> Result<RecordBatch> {
    batch_aggregate_opts(batch, group_by, aggs, having, Parallelism::Serial)
}

/// [`batch_aggregate`] with morsel-driven parallel grouping: each morsel
/// builds a partial group table, partials merge in morsel index order (so
/// group ids, representative rows, and member order — hence `f64` SUM
/// accumulation order — are identical to the serial pass), then aggregate
/// folding parallelizes over chunks of groups.
pub fn batch_aggregate_opts(
    batch: &RecordBatch,
    group_by: &[usize],
    aggs: &[Aggregate],
    having: Option<&Expr>,
    par: Parallelism,
) -> Result<RecordBatch> {
    let par = par.resolved();
    if let Some(&c) = group_by.iter().find(|&&c| c >= batch.arity()) {
        return Err(Error::Storage(format!("group column {c} out of range")));
    }
    if let Some(c) = aggs
        .iter()
        .filter_map(|a| a.func.input_column())
        .find(|&c| c >= batch.arity())
    {
        return Err(Error::Storage(format!(
            "aggregate input column {c} out of range"
        )));
    }
    let hashes = batch.key_hashes_par(group_by, par);
    let (mut group_first, mut members) = if go_parallel(par, batch.len()) {
        parallel_grouping(batch, group_by, &hashes, par)
    } else {
        serial_grouping(batch, group_by, &hashes)
    };
    // Global aggregate over empty input still yields one row.
    if group_by.is_empty() && batch.is_empty() {
        group_first.push(0);
        members.push(Vec::new());
    }

    let mut names: Vec<String> = group_by
        .iter()
        .map(|&c| {
            batch
                .names
                .get(c)
                .cloned()
                .unwrap_or_else(|| format!("c{c}"))
        })
        .collect();
    names.extend(aggs.iter().map(|a| a.name.clone()));

    let n_groups = group_first.len();
    let mut columns: Vec<Column> = Vec::with_capacity(group_by.len() + aggs.len());
    for &c in group_by {
        columns.push(batch.columns[c].gather(&group_first));
    }
    for agg in aggs {
        columns.push(fold_agg_column_par(agg.func, &members, batch, par)?);
    }
    let mut out = RecordBatch::new(names, columns, n_groups);
    if let Some(pred) = having {
        let mask = eval_mask(pred, &out)?;
        out = out.filter(&mask);
    }
    Ok(out)
}

/// First-seen-order group assignment, shared by the serial pass, the
/// per-morsel workers, and the partial-table merge (one implementation so
/// group equality can never diverge between the serial and parallel
/// paths).
#[derive(Default)]
struct GroupTable {
    /// hash → (representative row, gid) entries.
    buckets: HashMap<u64, Vec<(u32, u32)>>,
    /// gid → representative (first-seen) row.
    firsts: Vec<u32>,
    /// gid → member rows, in insertion order.
    members: Vec<Vec<u32>>,
}

impl GroupTable {
    /// The gid of `row`'s group, creating the group (with `row` as its
    /// representative) on first sight.
    fn gid(&mut self, batch: &RecordBatch, group_by: &[usize], hash: u64, row: u32) -> u32 {
        let bucket = self.buckets.entry(hash).or_default();
        for &(first, g) in bucket.iter() {
            if batch.keys_eq(group_by, row as usize, batch, group_by, first as usize) {
                return g;
            }
        }
        let g = self.firsts.len() as u32;
        bucket.push((row, g));
        self.firsts.push(row);
        self.members.push(Vec::new());
        g
    }
}

/// Assign group ids in first-seen order; returns (gid → representative
/// row, gid → member rows in ascending row order).
fn serial_grouping(
    batch: &RecordBatch,
    group_by: &[usize],
    hashes: &[u64],
) -> (Vec<u32>, Vec<Vec<u32>>) {
    let mut table = GroupTable::default();
    for (i, &h) in hashes.iter().enumerate() {
        let g = table.gid(batch, group_by, h, i as u32);
        table.members[g as usize].push(i as u32);
    }
    (table.firsts, table.members)
}

/// Morsel-parallel grouping: per-morsel partial group tables (built on
/// worker threads) merged serially in morsel index order. The merge visits
/// each morsel's groups in local first-seen order, so global group order
/// equals the serial first-seen order and member lists stay ascending.
fn parallel_grouping(
    batch: &RecordBatch,
    group_by: &[usize],
    hashes: &[u64],
    par: Parallelism,
) -> (Vec<u32>, Vec<Vec<u32>>) {
    let ranges = morsel_ranges(batch.len());
    let parts: Vec<GroupTable> = par_map(ranges.len(), par.threads(), |mi| {
        let mut local = GroupTable::default();
        for i in ranges[mi].clone() {
            let g = local.gid(batch, group_by, hashes[i], i as u32);
            local.members[g as usize].push(i as u32);
        }
        local
    });

    let mut table = GroupTable::default();
    for local in parts {
        for (local_gid, &first) in local.firsts.iter().enumerate() {
            let g = table.gid(batch, group_by, hashes[first as usize], first);
            table.members[g as usize].extend_from_slice(&local.members[local_gid]);
        }
    }
    (table.firsts, table.members)
}

fn sum_overflow() -> Error {
    Error::Overflow("integer SUM overflowed i64 (derivation counts too large?)".into())
}

/// [`fold_agg_column`] parallelized over chunks of groups. Every group's
/// fold visits its members in the same (ascending row) order as the serial
/// pass, so results — floats included — are bit-identical; chunks merely
/// spread independent groups over threads.
fn fold_agg_column_par(
    func: AggFunc,
    members: &[Vec<u32>],
    batch: &RecordBatch,
    par: Parallelism,
) -> Result<Column> {
    if !go_parallel(par, members.len()) {
        return fold_agg_column(func, members, batch);
    }
    let ranges = morsel_ranges(members.len());
    let parts = par_map(ranges.len(), par.threads(), |i| {
        fold_agg_column(func, &members[ranges[i].clone()], batch)
    });
    let mut iter = parts.into_iter();
    let mut acc = iter
        .next()
        .ok_or_else(|| Error::Storage("empty aggregate chunk set".into()))??;
    for part in iter {
        acc = acc.append(part?);
    }
    Ok(acc)
}

/// Evaluate one aggregate for every group. Integer SUM uses checked
/// arithmetic: overflow surfaces as [`Error::Overflow`] (matching the
/// semiring graph walk's contract) instead of silently wrapping.
fn fold_agg_column(func: AggFunc, members: &[Vec<u32>], batch: &RecordBatch) -> Result<Column> {
    match func {
        AggFunc::Count => Ok(Column::Int(
            members.iter().map(|m| m.len() as i64).collect(),
        )),
        AggFunc::Sum(c) => {
            let col = &batch.columns[c];
            match col {
                // Dense fast paths: no NULLs possible.
                Column::Int(v) => {
                    let mut out = Vec::with_capacity(members.len());
                    for m in members {
                        if m.is_empty() {
                            out.push(Value::Null);
                        } else {
                            let mut acc = 0i64;
                            for &i in m {
                                acc = acc.checked_add(v[i as usize]).ok_or_else(sum_overflow)?;
                            }
                            out.push(Value::Int(acc));
                        }
                    }
                    Ok(Column::from_value_vec(out))
                }
                Column::Float(v) => Ok(Column::from_value_vec(
                    members
                        .iter()
                        .map(|m| {
                            if m.is_empty() {
                                Value::Null
                            } else {
                                Value::Float(m.iter().map(|&i| v[i as usize]).sum())
                            }
                        })
                        .collect(),
                )),
                _ => {
                    let mut out = Vec::with_capacity(members.len());
                    for m in members {
                        let mut int_sum: i64 = 0;
                        let mut float_sum: f64 = 0.0;
                        let mut any_float = false;
                        let mut any = false;
                        for &i in m {
                            match col.value(i as usize) {
                                Value::Int(v) => {
                                    int_sum = int_sum.checked_add(v).ok_or_else(sum_overflow)?;
                                    any = true;
                                }
                                Value::Float(v) => {
                                    float_sum += v;
                                    any_float = true;
                                    any = true;
                                }
                                Value::Null => {}
                                other => {
                                    return Err(Error::Storage(format!(
                                        "SUM over non-numeric {other}"
                                    )))
                                }
                            }
                        }
                        out.push(if !any {
                            Value::Null
                        } else if any_float {
                            Value::Float(float_sum + int_sum as f64)
                        } else {
                            Value::Int(int_sum)
                        });
                    }
                    Ok(Column::from_value_vec(out))
                }
            }
        }
        AggFunc::Min(c) | AggFunc::Max(c) => {
            let col = &batch.columns[c];
            let want_min = matches!(func, AggFunc::Min(_));
            let mut out = Vec::with_capacity(members.len());
            for m in members {
                let mut best: Option<Value> = None;
                for &i in m {
                    let v = col.value(i as usize);
                    if v.is_null() {
                        continue;
                    }
                    best = Some(match best {
                        None => v,
                        Some(b) => {
                            let keep_new = if want_min { v < b } else { v > b };
                            if keep_new {
                                v
                            } else {
                                b
                            }
                        }
                    });
                }
                out.push(best.unwrap_or(Value::Null));
            }
            Ok(Column::from_value_vec(out))
        }
        AggFunc::BoolOr(c) | AggFunc::BoolAnd(c) => {
            let col = &batch.columns[c];
            let is_or = matches!(func, AggFunc::BoolOr(_));
            let mut out = Vec::with_capacity(members.len());
            for m in members {
                let mut acc: Option<bool> = None;
                for &i in m {
                    match col.value(i as usize) {
                        Value::Bool(b) => {
                            acc = Some(match acc {
                                None => b,
                                Some(a) if is_or => a || b,
                                Some(a) => a && b,
                            });
                        }
                        Value::Null => {}
                        other => {
                            return Err(Error::Storage(format!(
                                "boolean aggregate over non-boolean {other}"
                            )))
                        }
                    }
                }
                out.push(acc.map(Value::Bool).unwrap_or(Value::Null));
            }
            Ok(Column::from_value_vec(out))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use proql_common::rng::SplitMix64;
    use proql_common::{tup, Schema, Tuple, ValueType};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            Schema::build(
                "A",
                &[
                    ("id", ValueType::Int),
                    ("sn", ValueType::Str),
                    ("len", ValueType::Int),
                ],
                &[0],
            )
            .unwrap(),
        )
        .unwrap();
        db.create_table(
            Schema::build(
                "C",
                &[("id", ValueType::Int), ("name", ValueType::Str)],
                &[0, 1],
            )
            .unwrap(),
        )
        .unwrap();
        db.insert("A", tup![1, "sn1", 7]).unwrap();
        db.insert("A", tup![2, "sn1", 5]).unwrap();
        db.insert("C", tup![2, "cn2"]).unwrap();
        db.insert("C", tup![3, "cn3"]).unwrap();
        db
    }

    /// Batch and row executors agree (rows order-insensitively, names
    /// exactly) on a plan — under every parallelism setting.
    fn assert_equivalent(db: &Database, plan: &Plan) {
        let row = execute(db, plan).expect("row executor");
        let nested = execute_with(db, plan, ExecMode::NestedLoop).expect("nested loop");
        assert_eq!(row.sorted_rows(), nested.sorted_rows());
        for par in [
            Parallelism::Serial,
            Parallelism::Threads(2),
            Parallelism::Threads(8),
        ] {
            let batch = execute_with_opts(db, plan, ExecMode::Batch, par).expect("batch executor");
            assert_eq!(row.names, batch.names, "par {par:?}");
            assert_eq!(row.sorted_rows(), batch.sorted_rows(), "par {par:?}");
        }
    }

    #[test]
    fn scan_filter_project_match_row_executor() {
        let db = db();
        assert_equivalent(&db, &Plan::scan("A"));
        assert_equivalent(&db, &Plan::scan("A").filter(Expr::col(2).eq(Expr::lit(5))));
        assert_equivalent(
            &db,
            &Plan::scan("A").project(vec![
                Expr::col(0),
                Expr::cmp(crate::expr::BinOp::Add, Expr::col(2), Expr::lit(1)),
            ]),
        );
    }

    #[test]
    fn joins_match_row_executor_for_all_types_and_build_sides() {
        let db = db();
        for jt in [
            JoinType::Inner,
            JoinType::LeftOuter,
            JoinType::RightOuter,
            JoinType::FullOuter,
        ] {
            for build in [BuildSide::Auto, BuildSide::Left, BuildSide::Right] {
                let plan = Plan::Join {
                    left: Box::new(Plan::scan("A")),
                    right: Box::new(Plan::scan("C")),
                    join_type: jt,
                    left_keys: vec![0],
                    right_keys: vec![0],
                    build,
                };
                assert_equivalent(&db, &plan);
            }
        }
    }

    #[test]
    fn join_row_order_matches_row_executor_exactly() {
        let db = db();
        for jt in [
            JoinType::Inner,
            JoinType::LeftOuter,
            JoinType::RightOuter,
            JoinType::FullOuter,
        ] {
            for build in [BuildSide::Auto, BuildSide::Left, BuildSide::Right] {
                let plan = Plan::Join {
                    left: Box::new(Plan::scan("A")),
                    right: Box::new(Plan::scan("C")),
                    join_type: jt,
                    left_keys: vec![0],
                    right_keys: vec![0],
                    build,
                };
                let row = execute(&db, &plan).unwrap();
                let batch = execute_with(&db, &plan, ExecMode::Batch).unwrap();
                assert_eq!(row.rows, batch.rows, "jt={jt:?} build={build:?}");
            }
        }
    }

    #[test]
    fn limit_over_outer_join_is_order_stable_across_executors() {
        // Regression: unmatched left rows must interleave in left-scan
        // order (as the row executor emits them), not append at the end —
        // otherwise order-sensitive consumers like LIMIT diverge.
        let db = db();
        let plan = Plan::Limit {
            input: Box::new(Plan::scan("A").join_as(
                Plan::scan("C"),
                JoinType::LeftOuter,
                vec![0],
                vec![0],
            )),
            n: 1,
        };
        let row = execute(&db, &plan).unwrap();
        let batch = execute_with(&db, &plan, ExecMode::Batch).unwrap();
        assert_eq!(row.rows, batch.rows);
        // A(1) has no C match, so the first output row is its padded row.
        assert!(batch.rows[0].get(3).is_null());
    }

    #[test]
    fn union_distinct_sort_limit_match() {
        let db = db();
        let union = Plan::Union {
            inputs: vec![
                Plan::scan("A").project(vec![Expr::col(0)]),
                Plan::scan("C").project(vec![Expr::col(0)]),
            ],
            distinct: false,
        };
        assert_equivalent(&db, &union);
        assert_equivalent(&db, &union.clone().distinct());
        assert_equivalent(
            &db,
            &Plan::Sort {
                input: Box::new(union.clone()),
                by: vec![0],
            },
        );
        assert_equivalent(
            &db,
            &Plan::Limit {
                input: Box::new(Plan::Sort {
                    input: Box::new(union),
                    by: vec![0],
                }),
                n: 2,
            },
        );
    }

    #[test]
    fn aggregates_match() {
        let db = db();
        let p = Plan::Aggregate {
            input: Box::new(Plan::scan("A")),
            group_by: vec![1],
            aggs: vec![
                Aggregate::new(AggFunc::Count, "n"),
                Aggregate::new(AggFunc::Sum(2), "total"),
                Aggregate::new(AggFunc::Min(2), "lo"),
                Aggregate::new(AggFunc::Max(2), "hi"),
            ],
            having: Some(Expr::cmp(
                crate::expr::BinOp::Ge,
                Expr::col(2),
                Expr::lit(12),
            )),
        };
        assert_equivalent(&db, &p);
        // Global aggregate over empty input.
        let p = Plan::Aggregate {
            input: Box::new(Plan::scan("A").filter(Expr::lit(false))),
            group_by: vec![],
            aggs: vec![
                Aggregate::new(AggFunc::Count, "n"),
                Aggregate::new(AggFunc::Sum(2), "s"),
            ],
            having: None,
        };
        assert_equivalent(&db, &p);
    }

    #[test]
    fn null_join_keys_never_match_in_batch() {
        let mut db = Database::new();
        db.create_table(Schema::build("L", &[("k", ValueType::Int)], &[]).unwrap())
            .unwrap();
        db.create_table(Schema::build("R", &[("k", ValueType::Int)], &[]).unwrap())
            .unwrap();
        db.table_mut("L")
            .unwrap()
            .insert(Tuple::new(vec![Value::Null]))
            .unwrap();
        db.table_mut("L").unwrap().insert(tup![1]).unwrap();
        db.table_mut("R")
            .unwrap()
            .insert(Tuple::new(vec![Value::Null]))
            .unwrap();
        db.table_mut("R").unwrap().insert(tup![1]).unwrap();
        for jt in [JoinType::Inner, JoinType::FullOuter] {
            let p = Plan::scan("L").join_as(Plan::scan("R"), jt, vec![0], vec![0]);
            assert_equivalent(&db, &p);
        }
    }

    #[test]
    fn views_and_index_lookups_match() {
        let mut db = db();
        let schema = Schema::build("V", &[("id", ValueType::Int)], &[]).unwrap();
        db.create_view("V", Plan::scan("A").project(vec![Expr::col(0)]), schema)
            .unwrap();
        assert_equivalent(&db, &Plan::scan("V"));
        let p = Plan::IndexLookup {
            table: "A".into(),
            columns: vec![1],
            key: vec![Value::str("sn1")],
            residual: Some(Expr::col(2).eq(Expr::lit(7))),
        };
        assert_equivalent(&db, &p);
    }

    #[test]
    fn randomized_plans_agree_across_executors() {
        let mut rng = SplitMix64::seed_from_u64(0xBA7C4);
        for round in 0..20 {
            let mut db = Database::new();
            db.create_table(
                Schema::build("S", &[("a", ValueType::Int), ("b", ValueType::Int)], &[]).unwrap(),
            )
            .unwrap();
            db.create_table(
                Schema::build("T", &[("a", ValueType::Int), ("c", ValueType::Int)], &[]).unwrap(),
            )
            .unwrap();
            let mut seen = std::collections::HashSet::new();
            for _ in 0..rng.gen_range_usize(0, 40) {
                let t = (rng.gen_range_i64(0, 10), rng.gen_range_i64(0, 10));
                if seen.insert(("S", t)) {
                    db.insert("S", tup![t.0, t.1]).unwrap();
                }
            }
            for _ in 0..rng.gen_range_usize(0, 40) {
                let t = (rng.gen_range_i64(0, 10), rng.gen_range_i64(0, 10));
                if seen.insert(("T", t)) {
                    db.insert("T", tup![t.0, t.1]).unwrap();
                }
            }
            let probe = rng.gen_range_i64(0, 10);
            let plan = Plan::scan("S")
                .join(Plan::scan("T"), vec![0], vec![0])
                .filter(Expr::cmp(
                    crate::expr::BinOp::Le,
                    Expr::col(1),
                    Expr::lit(probe),
                ));
            assert_equivalent(&db, &plan);
            let agg = Plan::Aggregate {
                input: Box::new(plan),
                group_by: vec![0],
                aggs: vec![
                    Aggregate::new(AggFunc::Count, "n"),
                    Aggregate::new(AggFunc::Sum(3), "s"),
                ],
                having: None,
            };
            assert_equivalent(&db, &agg);
            let _ = round;
        }
    }

    /// Large instances that actually cross the morsel threshold: parallel
    /// scans/filters/projections/joins/aggregations must be bit-identical
    /// (exact row order included) to the serial batch run.
    #[test]
    fn parallel_morsel_paths_are_bit_identical_to_serial() {
        let mut db = Database::new();
        db.create_table(
            Schema::build("S", &[("a", ValueType::Int), ("b", ValueType::Int)], &[]).unwrap(),
        )
        .unwrap();
        db.create_table(
            Schema::build("T", &[("a", ValueType::Int), ("c", ValueType::Int)], &[]).unwrap(),
        )
        .unwrap();
        let mut rng = SplitMix64::seed_from_u64(0x05EE_DA11);
        let n = MORSEL_ROWS * 3 + 17;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..n {
            let t = (rng.gen_range_i64(0, 500), rng.gen_range_i64(0, 1000));
            if seen.insert(("S", t)) {
                db.insert("S", tup![t.0, t.1]).unwrap();
            }
            let t = (rng.gen_range_i64(0, 500), rng.gen_range_i64(0, 1000));
            if seen.insert(("T", t)) {
                db.insert("T", tup![t.0, t.1]).unwrap();
            }
        }
        let plans = [
            Plan::scan("S"),
            Plan::scan("S").filter(Expr::cmp(
                crate::expr::BinOp::Le,
                Expr::col(1),
                Expr::lit(700),
            )),
            Plan::scan("S").project(vec![
                Expr::col(0),
                Expr::cmp(crate::expr::BinOp::Add, Expr::col(1), Expr::lit(3)),
            ]),
            Plan::scan("S").join_as(Plan::scan("T"), JoinType::FullOuter, vec![0], vec![0]),
            Plan::Aggregate {
                input: Box::new(Plan::scan("S").join(Plan::scan("T"), vec![0], vec![0])),
                group_by: vec![0],
                aggs: vec![
                    Aggregate::new(AggFunc::Count, "n"),
                    Aggregate::new(AggFunc::Sum(3), "s"),
                    Aggregate::new(AggFunc::Min(1), "lo"),
                ],
                having: None,
            },
        ];
        for plan in &plans {
            let serial = execute_batch(&db, plan).unwrap();
            for threads in [2, 8] {
                let par = execute_batch_opts(&db, plan, Parallelism::Threads(threads)).unwrap();
                assert_eq!(serial.names, par.names);
                assert_eq!(serial.to_rows(), par.to_rows(), "threads {threads}");
            }
        }
    }

    #[test]
    fn malformed_plans_error_instead_of_panicking() {
        // The service worker pool executes plans built from untrusted
        // request text; out-of-range columns must be errors, not panics.
        let db = db();
        let bad_plans = [
            Plan::Join {
                left: Box::new(Plan::scan("A")),
                right: Box::new(Plan::scan("C")),
                join_type: JoinType::Inner,
                left_keys: vec![9],
                right_keys: vec![0],
                build: BuildSide::Auto,
            },
            Plan::Join {
                left: Box::new(Plan::scan("A")),
                right: Box::new(Plan::scan("C")),
                join_type: JoinType::FullOuter,
                left_keys: vec![0],
                right_keys: vec![7],
                build: BuildSide::Auto,
            },
            Plan::Aggregate {
                input: Box::new(Plan::scan("A")),
                group_by: vec![8],
                aggs: vec![],
                having: None,
            },
            Plan::Aggregate {
                input: Box::new(Plan::scan("A")),
                group_by: vec![],
                aggs: vec![Aggregate::new(AggFunc::Sum(9), "s")],
                having: None,
            },
            Plan::Sort {
                input: Box::new(Plan::scan("A")),
                by: vec![9],
            },
            Plan::scan("A").filter(Expr::col(9).eq(Expr::lit(1))),
            Plan::IndexLookup {
                table: "A".into(),
                columns: vec![9],
                key: vec![Value::Int(1)],
                residual: None,
            },
            Plan::IndexLookup {
                table: "A".into(),
                columns: vec![0, 1],
                key: vec![Value::Int(1)],
                residual: None,
            },
        ];
        for plan in &bad_plans {
            for mode in [ExecMode::Batch, ExecMode::Row, ExecMode::NestedLoop] {
                for par in [Parallelism::Serial, Parallelism::Threads(4)] {
                    let res = execute_with_opts(&db, plan, mode, par);
                    assert!(res.is_err(), "mode {mode:?} par {par:?}: {plan:?}");
                }
            }
        }
    }

    #[test]
    fn integer_sum_overflow_is_an_error_in_every_executor() {
        // Regression for the batch/graph divergence: batch SUM used to wrap
        // silently while the graph walk's checked arithmetic errored.
        let p = Plan::Aggregate {
            input: Box::new(Plan::Values {
                schema: crate::plan::anon_schema("v", &["x".into()]),
                rows: vec![tup![i64::MAX], tup![1]],
            }),
            group_by: vec![],
            aggs: vec![Aggregate::new(AggFunc::Sum(0), "s")],
            having: None,
        };
        let db = Database::new();
        for mode in [ExecMode::Batch, ExecMode::Row, ExecMode::NestedLoop] {
            for par in [Parallelism::Serial, Parallelism::Threads(4)] {
                let err = execute_with_opts(&db, &p, mode, par).unwrap_err();
                assert!(
                    matches!(err, Error::Overflow(_)),
                    "mode {mode:?} par {par:?}: {err}"
                );
            }
        }
    }

    #[test]
    fn float_sum_accumulation_order_is_identical_across_paths() {
        // Order-sensitive float sums: 1e16 + 1.0 + ... loses the small
        // addends exactly the same way in every executor path only if the
        // accumulation order is identical.
        let n = MORSEL_ROWS * 2 + 31;
        let mut rows = Vec::with_capacity(n);
        let mut rng = SplitMix64::seed_from_u64(0xF10A7);
        for i in 0..n {
            let v = if i % 97 == 0 {
                1e16
            } else {
                rng.gen_range_i64(1, 1000) as f64 / 7.0
            };
            rows.push(Tuple::new(vec![
                Value::Int(rng.gen_range_i64(0, 5)),
                Value::Float(v),
            ]));
        }
        let p = Plan::Aggregate {
            input: Box::new(Plan::Values {
                schema: crate::plan::anon_schema("v", &["g".into(), "x".into()]),
                rows,
            }),
            group_by: vec![0],
            aggs: vec![Aggregate::new(AggFunc::Sum(1), "s")],
            having: None,
        };
        let db = Database::new();
        let want = execute(&db, &p).unwrap();
        for mode in [ExecMode::Batch, ExecMode::NestedLoop] {
            for par in [
                Parallelism::Serial,
                Parallelism::Threads(2),
                Parallelism::Threads(8),
            ] {
                let got = execute_with_opts(&db, &p, mode, par).unwrap();
                // Exact equality: Value::Float compares bit patterns via
                // total order, so any reassociation would fail here.
                assert_eq!(want.rows, got.rows, "mode {mode:?} par {par:?}");
            }
        }
    }
}
