//! The columnar batch executor.
//!
//! Operator-at-a-time evaluation over [`RecordBatch`]es: every plan node
//! consumes whole batches and produces a whole batch, with vectorized
//! predicate/projection evaluation ([`crate::batch`]), hash equi-joins with
//! build-side selection, and hash-based grouped aggregation. Results are
//! bit-identical to the row executor ([`crate::exec`]) — property tests in
//! the workspace assert equivalence on randomized instances — but the
//! columnar layout avoids per-row `Tuple` allocation on the hot provenance
//! workloads (dense integer `P_m` chains).
//!
//! # Morsel-driven parallelism
//!
//! Every data-parallel operator also has a **morsel-driven parallel** path
//! selected by [`Parallelism`] (default [`Parallelism::Serial`]): scans,
//! filters, and projections split their input into [`MORSEL_ROWS`]-sized
//! morsels evaluated on scoped worker threads and reassembled in morsel
//! order; hash joins run two-phase (parallel partition-by-hash of both
//! sides, then per-partition build+probe in parallel, then a canonical
//! `(left, right)` sort); grouped aggregation computes per-morsel partial
//! group tables merged deterministically in morsel index order. All merge
//! orders are fixed by morsel/partition index, so parallel output is
//! **bit-identical** to serial output — including `f64` SUM results, whose
//! accumulation order is the global row order in both paths.

use crate::batch::{eval_expr, eval_mask, Column, RecordBatch};
use crate::database::Database;
use crate::exec::{join_names, JoinAlgo, Relation, MAX_VIEW_DEPTH};
use crate::expr::{BinOp, Expr};
use crate::plan::{AggFunc, Aggregate, BuildSide, JoinType, Plan};
use crate::zone::ZonePred;
use proql_common::par::{morsel_ranges, par_map, MORSEL_ROWS};
use proql_common::{trace, Error, Parallelism, Result, Value};
use std::borrow::Cow;
use std::collections::HashMap;
use std::hash::Hasher;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Which executor [`execute_with`] dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Columnar batch pipeline (the default).
    #[default]
    Batch,
    /// Row-at-a-time with hash joins (the pre-batch executor).
    Row,
    /// Row-at-a-time with nested-loop joins (ablation baseline).
    NestedLoop,
}

/// Execute `plan` under the selected executor, materializing a row
/// [`Relation`] either way (callers downstream are row-oriented).
pub fn execute_with(db: &Database, plan: &Plan, mode: ExecMode) -> Result<Relation> {
    execute_with_opts(db, plan, mode, Parallelism::Serial)
}

/// [`execute_with`] plus a [`Parallelism`] knob. Only the batch executor
/// parallelizes; the row executors are serial oracles kept bit-for-bit
/// stable.
pub fn execute_with_opts(
    db: &Database,
    plan: &Plan,
    mode: ExecMode,
    par: Parallelism,
) -> Result<Relation> {
    match mode {
        ExecMode::Batch => {
            let batch = execute_batch_opts(db, plan, par)?;
            Ok(Relation {
                names: batch.names.clone(),
                rows: batch.to_rows(),
            })
        }
        ExecMode::Row => crate::exec::execute_rows(db, plan, JoinAlgo::Hash),
        ExecMode::NestedLoop => crate::exec::execute_rows(db, plan, JoinAlgo::NestedLoop),
    }
}

/// Execute `plan`, producing a columnar batch.
pub fn execute_batch(db: &Database, plan: &Plan) -> Result<RecordBatch> {
    execute_batch_opts(db, plan, Parallelism::Serial)
}

/// [`execute_batch`] with morsel-driven parallelism. Output is guaranteed
/// bit-identical to the serial run for every plan shape.
pub fn execute_batch_opts(db: &Database, plan: &Plan, par: Parallelism) -> Result<RecordBatch> {
    Ok(exec_inner(db, plan, 0, par.resolved(), None)?.materialize())
}

/// Actual row count and wall time of one plan operator, recorded by
/// [`execute_batch_profiled`]. Stats are indexed in the **pre-order** the
/// plan renderer walks ([`crate::explain::explain_tree`]): node first,
/// then children (Join: left, then right), with view bodies excluded —
/// so `stats[i]` annotates the `i`-th rendered plan line.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpStat {
    /// Rows the operator produced.
    pub rows: u64,
    /// Wall time of the operator *including* its inputs, in nanoseconds
    /// (the tree renderer shows inclusive time, like the plan's nesting).
    pub nanos: u64,
    /// Morsel-sized zones a zone-map-pruned scan skipped without reading
    /// (non-zero only on `Scan` operators fused under a `Filter`).
    pub morsels_skipped: u64,
    /// Fraction of input rows surviving, for operators that emitted a
    /// selection vector instead of copying survivors (filter, distinct,
    /// limit); `None` for operators that produced dense output.
    pub sel_density: Option<f64>,
}

/// Collector for per-operator actuals. Slots are reserved at operator
/// entry (pre-order) and filled at operator exit; a `Mutex` only because
/// the profile is shared with the morsel worker scope — plan recursion
/// itself stays on one thread.
struct PlanProfile {
    slots: Mutex<Vec<OpStat>>,
}

impl PlanProfile {
    fn new() -> PlanProfile {
        PlanProfile {
            slots: Mutex::new(Vec::new()),
        }
    }

    /// Reserve the next pre-order slot.
    fn reserve(&self) -> usize {
        let mut s = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        s.push(OpStat::default());
        s.len() - 1
    }

    fn record(&self, idx: usize, stat: OpStat) {
        let mut s = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(slot) = s.get_mut(idx) {
            *slot = stat;
        }
    }

    fn into_stats(self) -> Vec<OpStat> {
        self.slots.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// Execute `plan` collecting per-operator actual row counts and timings
/// (the `EXPLAIN ANALYZE` backend). The stats vector is ordered exactly
/// like the rendered plan tree; pass it to
/// [`crate::explain::explain_tree_analyzed`].
pub fn execute_batch_profiled(
    db: &Database,
    plan: &Plan,
    par: Parallelism,
) -> Result<(RecordBatch, Vec<OpStat>)> {
    let prof = PlanProfile::new();
    let batch = exec_inner(db, plan, 0, par.resolved(), Some(&prof))?.materialize();
    Ok((batch, prof.into_stats()))
}

/// A batch plus an optional **selection vector**: strictly ascending row
/// indices into `batch` that survive upstream row-dropping operators.
/// Filters, DISTINCT, and LIMIT emit a selection instead of copying the
/// survivors; selection-aware consumers (joins, grouping, sort) iterate
/// the selected rows in place, and everything else
/// [`materialize`](SelBatch::materialize)s. The ascending invariant is
/// what keeps selection-aware operators bit-identical to the dense paths:
/// ascending underlying indices order exactly like dense positions, so
/// every canonical sort and first-seen order is unchanged.
struct SelBatch {
    batch: RecordBatch,
    /// `None` = all rows selected.
    sel: Option<Vec<u32>>,
}

impl SelBatch {
    fn dense(batch: RecordBatch) -> SelBatch {
        SelBatch { batch, sel: None }
    }

    /// Logical row count (selected rows, not underlying rows).
    fn len(&self) -> usize {
        self.sel.as_ref().map_or(self.batch.len(), Vec::len)
    }

    /// The selected row indices: borrowed when a selection exists, the
    /// identity permutation otherwise.
    fn rows(&self) -> Cow<'_, [u32]> {
        match &self.sel {
            Some(s) => Cow::Borrowed(s.as_slice()),
            None => Cow::Owned((0..self.batch.len() as u32).collect()),
        }
    }

    /// Gather the selected rows into a dense batch (free when dense).
    fn materialize(self) -> RecordBatch {
        match self.sel {
            Some(sel) => self.batch.gather(&sel),
            None => self.batch,
        }
    }
}

/// Static trace-span name for a plan operator.
fn op_name(plan: &Plan) -> &'static str {
    match plan {
        Plan::Scan { .. } => "op.scan",
        Plan::Values { .. } => "op.values",
        Plan::Filter { .. } => "op.filter",
        Plan::Project { .. } => "op.project",
        Plan::Join { .. } => "op.join",
        Plan::Union { .. } => "op.union",
        Plan::Distinct { .. } => "op.distinct",
        Plan::Aggregate { .. } => "op.aggregate",
        Plan::Sort { .. } => "op.sort",
        Plan::Limit { .. } => "op.limit",
        Plan::IndexLookup { .. } => "op.index_lookup",
    }
}

/// Observability shim around [`exec_node`]: reserves the operator's
/// pre-order profile slot on entry, times the node inclusively, opens a
/// per-operator trace span, and stamps both with the actual row count on
/// exit. With profiling off and tracing disabled this reduces to two
/// cheap branches per node.
fn exec_inner(
    db: &Database,
    plan: &Plan,
    depth: usize,
    par: Parallelism,
    prof: Option<&PlanProfile>,
) -> Result<SelBatch> {
    if prof.is_none() && !trace::enabled() {
        return exec_node(db, plan, depth, par, prof);
    }
    let slot = prof.map(|p| p.reserve());
    let mut sp = trace::span(op_name(plan));
    let start = Instant::now();
    let result = exec_node(db, plan, depth, par, prof);
    if let Ok(sb) = &result {
        let nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        if let (Some(p), Some(idx)) = (prof, slot) {
            let sel_density = sb.sel.as_ref().map(|s| {
                if sb.batch.is_empty() {
                    1.0
                } else {
                    s.len() as f64 / sb.batch.len() as f64
                }
            });
            p.record(
                idx,
                OpStat {
                    rows: sb.len() as u64,
                    nanos,
                    morsels_skipped: 0,
                    sel_density,
                },
            );
        }
        sp.field("rows", sb.len().to_string());
    } else {
        sp.field("error", "true");
    }
    result
}

/// True when `rows` is big enough (and `par` parallel enough) that cutting
/// into morsels beats a serial pass.
fn go_parallel(par: Parallelism, rows: usize) -> bool {
    par.threads() > 1 && rows > MORSEL_ROWS
}

/// Concatenate per-morsel result batches in morsel index order.
fn concat_batches(parts: Vec<Result<RecordBatch>>) -> Result<RecordBatch> {
    let mut iter = parts.into_iter();
    let mut acc = iter
        .next()
        .ok_or_else(|| Error::Storage("empty morsel set".into()))??;
    for part in iter {
        let batch = part?;
        let rows = acc.len() + batch.len();
        let names = std::mem::take(&mut acc.names);
        let cols = std::mem::take(&mut acc.columns)
            .into_iter()
            .zip(batch.columns)
            .map(|(a, b)| a.append(b))
            .collect();
        acc = RecordBatch::new(names, cols, rows);
    }
    Ok(acc)
}

fn exec_node(
    db: &Database,
    plan: &Plan,
    depth: usize,
    par: Parallelism,
    prof: Option<&PlanProfile>,
) -> Result<SelBatch> {
    if depth > MAX_VIEW_DEPTH {
        return Err(Error::Storage(
            "view expansion too deep (cyclic view definition?)".into(),
        ));
    }
    match plan {
        Plan::Scan { table } => {
            if let Ok(t) = db.table(table) {
                if t.has_dict() || !go_parallel(par, t.len()) {
                    // Columnar scan: dictionary columns come out as code
                    // memcpys, everything else decodes as from_rows would.
                    Ok(SelBatch::dense(t.to_batch()))
                } else {
                    // Parallel transpose: each morsel of rows becomes its
                    // own column chunk, appended in morsel order.
                    let names: Vec<String> = t
                        .schema()
                        .attributes()
                        .iter()
                        .map(|a| a.name.clone())
                        .collect();
                    let rows: Vec<&proql_common::Tuple> = t.iter().collect();
                    let ranges = morsel_ranges(rows.len());
                    let parts = par_map(ranges.len(), par.threads(), |i| {
                        Ok(RecordBatch::from_rows(
                            names.clone(),
                            rows[ranges[i].clone()].iter().copied(),
                        ))
                    });
                    Ok(SelBatch::dense(concat_batches(parts)?))
                }
            } else if let Some(v) = db.view(table) {
                // View bodies are not rendered by the plan tree, so they
                // take no profile slots (keeps pre-order indices aligned).
                let mut batch = exec_inner(db, &v.plan, depth + 1, par, None)?.materialize();
                let names: Vec<String> = v
                    .schema
                    .attributes()
                    .iter()
                    .map(|a| a.name.clone())
                    .collect();
                if names.len() != batch.arity() {
                    return Err(Error::Storage(format!(
                        "view {table} schema arity mismatch"
                    )));
                }
                batch.names = names;
                Ok(SelBatch::dense(batch))
            } else {
                Err(Error::NotFound(format!("relation {table}")))
            }
        }
        Plan::Values { schema, rows } => {
            let names = schema.attributes().iter().map(|a| a.name.clone()).collect();
            Ok(SelBatch::dense(RecordBatch::from_rows(names, rows.iter())))
        }
        Plan::Filter { input, predicate } => {
            // Fused filter+scan: a filter directly over a base-table scan
            // consults the table's zone maps and skips whole morsels its
            // comparison conjuncts rule out, then evaluates the full
            // predicate only over surviving zones.
            if let Plan::Scan { table } = input.as_ref() {
                if let Ok(t) = db.table(table) {
                    return fused_filter_scan(t, predicate, par, prof);
                }
            }
            let input = exec_inner(db, input, depth, par, prof)?;
            let batch = input.materialize();
            let sel = filter_sel(&batch, predicate, par)?;
            Ok(SelBatch {
                batch,
                sel: Some(sel),
            })
        }
        Plan::Project {
            input,
            exprs,
            names,
        } => {
            let batch = exec_inner(db, input, depth, par, prof)?.materialize();
            if names.len() != exprs.len() {
                return Err(Error::Storage("project names/exprs length mismatch".into()));
            }
            if go_parallel(par, batch.len()) {
                let ranges = morsel_ranges(batch.len());
                let parts = par_map(ranges.len(), par.threads(), |i| {
                    let m = batch.slice(ranges[i].clone());
                    let columns: Vec<Column> = exprs
                        .iter()
                        .map(|e| eval_expr(e, &m))
                        .collect::<Result<_>>()?;
                    let rows = m.len();
                    Ok(RecordBatch::new(names.clone(), columns, rows))
                });
                Ok(SelBatch::dense(concat_batches(parts)?))
            } else {
                let columns: Vec<Column> = exprs
                    .iter()
                    .map(|e| eval_expr(e, &batch))
                    .collect::<Result<_>>()?;
                Ok(SelBatch::dense(RecordBatch::new(
                    names.clone(),
                    columns,
                    batch.len(),
                )))
            }
        }
        Plan::Join {
            left,
            right,
            join_type,
            left_keys,
            right_keys,
            build,
        } => {
            let l = exec_inner(db, left, depth, par, prof)?;
            let r = exec_inner(db, right, depth, par, prof)?;
            batch_join(&l, &r, *join_type, left_keys, right_keys, *build, par).map(SelBatch::dense)
        }
        Plan::Union { inputs, distinct } => {
            if inputs.is_empty() {
                return Ok(SelBatch::dense(RecordBatch::empty(vec![])));
            }
            let mut acc = exec_inner(db, &inputs[0], depth, par, prof)?.materialize();
            for p in &inputs[1..] {
                let batch = exec_inner(db, p, depth, par, prof)?.materialize();
                if batch.arity() != acc.arity() {
                    return Err(Error::Storage(format!(
                        "union arity mismatch: {} vs {}",
                        acc.arity(),
                        batch.arity()
                    )));
                }
                let rows = acc.len() + batch.len();
                let names = std::mem::take(&mut acc.names);
                let cols = std::mem::take(&mut acc.columns)
                    .into_iter()
                    .zip(batch.columns)
                    .map(|(a, b)| a.append(b))
                    .collect();
                acc = RecordBatch::new(names, cols, rows);
            }
            if *distinct {
                let all: Vec<u32> = (0..acc.len() as u32).collect();
                let keep = batch_distinct(&acc, &all);
                return Ok(SelBatch {
                    batch: acc,
                    sel: Some(keep),
                });
            }
            Ok(SelBatch::dense(acc))
        }
        Plan::Distinct { input } => {
            let input = exec_inner(db, input, depth, par, prof)?;
            let keep = batch_distinct(&input.batch, &input.rows());
            Ok(SelBatch {
                batch: input.batch,
                sel: Some(keep),
            })
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
            having,
        } => {
            let input = exec_inner(db, input, depth, par, prof)?;
            batch_aggregate_sel(
                &input.batch,
                input.sel.as_deref(),
                group_by,
                aggs,
                having.as_ref(),
                par,
            )
            .map(SelBatch::dense)
        }
        Plan::Sort { input, by } => {
            let input = exec_inner(db, input, depth, par, prof)?;
            if let Some(&c) = by.iter().find(|&&c| c >= input.batch.arity()) {
                return Err(Error::Storage(format!("sort column {c} out of range")));
            }
            let mut idx: Vec<u32> = input.rows().into_owned();
            let batch = &input.batch;
            // Stable sort over ascending underlying indices: ties keep
            // selection order, exactly like sorting a materialized batch.
            idx.sort_by(|&a, &b| {
                for &c in by {
                    let col = &batch.columns[c];
                    let ord = col.value(a as usize).cmp(&col.value(b as usize));
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            Ok(SelBatch::dense(input.batch.gather(&idx)))
        }
        Plan::Limit { input, n } => {
            let mut input = exec_inner(db, input, depth, par, prof)?;
            if input.len() <= *n {
                return Ok(input);
            }
            match &mut input.sel {
                Some(sel) => sel.truncate(*n),
                None => input.sel = Some((0..*n as u32).collect()),
            }
            Ok(input)
        }
        Plan::IndexLookup { .. } => {
            // Index lookups touch few rows; reuse the row executor's logic
            // and transpose.
            let rel = crate::exec::execute(db, plan)?;
            Ok(SelBatch::dense(RecordBatch::from_rows(
                rel.names,
                rel.rows.iter(),
            )))
        }
    }
}

/// The fused `Filter(Scan)` path: zone-map-pruned scan, then the filter
/// emits a selection vector over the surviving rows. Because fusion
/// bypasses [`exec_inner`] for the scan child, this reserves the scan's
/// pre-order profile slot and opens its trace span by hand so
/// `EXPLAIN ANALYZE` alignment and span nesting are unchanged.
fn fused_filter_scan(
    t: &crate::table::Table,
    predicate: &Expr,
    par: Parallelism,
    prof: Option<&PlanProfile>,
) -> Result<SelBatch> {
    let preds = zone_preds(predicate, t.schema().arity());
    if prof.is_none() && !trace::enabled() {
        let (batch, _) = t.to_batch_pruned(Some(&preds));
        let sel = filter_sel(&batch, predicate, par)?;
        return Ok(SelBatch {
            batch,
            sel: Some(sel),
        });
    }
    let slot = prof.map(|p| p.reserve());
    let mut sp = trace::span("op.scan");
    let start = Instant::now();
    let (batch, skipped) = t.to_batch_pruned(Some(&preds));
    let nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    if let (Some(p), Some(idx)) = (prof, slot) {
        p.record(
            idx,
            OpStat {
                rows: batch.len() as u64,
                nanos,
                morsels_skipped: skipped,
                sel_density: None,
            },
        );
    }
    sp.field("rows", batch.len().to_string());
    if skipped > 0 {
        sp.field("morsels_skipped", skipped.to_string());
    }
    drop(sp);
    let sel = filter_sel(&batch, predicate, par)?;
    Ok(SelBatch {
        batch,
        sel: Some(sel),
    })
}

/// Evaluate `predicate` over `batch` and return the surviving row indices
/// (ascending). The parallel path evaluates per-morsel masks on worker
/// threads and concatenates survivors in morsel order.
fn filter_sel(batch: &RecordBatch, predicate: &Expr, par: Parallelism) -> Result<Vec<u32>> {
    if go_parallel(par, batch.len()) {
        let ranges = morsel_ranges(batch.len());
        let parts = par_map(ranges.len(), par.threads(), |i| {
            let r = ranges[i].clone();
            let m = batch.slice(r.clone());
            let mask = eval_mask(predicate, &m)?;
            Ok(mask
                .iter()
                .enumerate()
                .filter_map(|(j, &keep)| keep.then_some((r.start + j) as u32))
                .collect::<Vec<u32>>())
        });
        let mut sel = Vec::new();
        for part in parts {
            sel.extend(part?);
        }
        Ok(sel)
    } else {
        let mask = eval_mask(predicate, batch)?;
        Ok(mask
            .iter()
            .enumerate()
            .filter_map(|(i, &keep)| keep.then_some(i as u32))
            .collect())
    }
}

/// Collect the zone-testable conjuncts of `e`: comparisons between a
/// column and a literal (either orientation) and `col IS NULL`, walked
/// through top-level ANDs. Everything else contributes nothing — the full
/// predicate still runs over every surviving zone, so missing a conjunct
/// only costs pruning, never correctness.
fn zone_preds(e: &Expr, arity: usize) -> Vec<ZonePred> {
    fn flip(op: BinOp) -> BinOp {
        match op {
            BinOp::Lt => BinOp::Gt,
            BinOp::Gt => BinOp::Lt,
            BinOp::Le => BinOp::Ge,
            BinOp::Ge => BinOp::Le,
            other => other,
        }
    }
    fn walk(e: &Expr, arity: usize, out: &mut Vec<ZonePred>) {
        match e {
            Expr::And(ps) => {
                for p in ps {
                    walk(p, arity, out);
                }
            }
            Expr::IsNull(inner) => {
                if let Expr::Col(c) = inner.as_ref() {
                    if *c < arity {
                        out.push(ZonePred::IsNull(*c));
                    }
                }
            }
            Expr::Bin(op, a, b)
                if matches!(
                    op,
                    BinOp::Eq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
                ) =>
            {
                match (a.as_ref(), b.as_ref()) {
                    (Expr::Col(c), Expr::Lit(v)) if *c < arity => {
                        out.push(ZonePred::Cmp(*c, *op, v.clone()));
                    }
                    (Expr::Lit(v), Expr::Col(c)) if *c < arity => {
                        out.push(ZonePred::Cmp(*c, flip(*op), v.clone()));
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }
    let mut out = Vec::new();
    walk(e, arity, &mut out);
    out
}

/// Matched pairs + NULL-padded rows of a join, in the canonical order both
/// join cores produce: `out_l`/`out_r` sorted by `(left, right)` row index,
/// pads sorted ascending.
struct JoinRows {
    out_l: Vec<u32>,
    out_r: Vec<u32>,
    pad_l: Vec<u32>,
    pad_r: Vec<u32>,
}

/// Per-key-column comparison scheme for one join, fixed before hashing.
/// When **both** sides of a key column are dictionary-encoded, hashing and
/// equality run on `u32` codes instead of decoded strings; differing
/// dictionaries are bridged by translating probe codes into the build
/// dictionary up front ([`crate::dict::translation`]), with untranslatable
/// probe values mapped to the reserved [`crate::dict::NULL_CODE`] sentinel
/// no real build code can equal. Any other column pairing falls back to
/// decoded-value hashing/equality.
enum KeyCol<'a> {
    /// General path: decoded-value hashing and equality.
    Value,
    /// Code comparison: build-side codes, probe-side codes (translated
    /// into the build dictionary when the `Arc`s differ).
    Codes { b: &'a [u32], p: Cow<'a, [u32]> },
}

/// Pick the comparison scheme for each key-column pair.
fn key_cols<'a>(
    b: &'a RecordBatch,
    b_keys: &[usize],
    p: &'a RecordBatch,
    p_keys: &[usize],
) -> Vec<KeyCol<'a>> {
    b_keys
        .iter()
        .zip(p_keys)
        .map(
            |(&bk, &pk)| match (b.columns[bk].dict_parts(), p.columns[pk].dict_parts()) {
                (Some((bc, bd)), Some((pc, pd))) => {
                    if Arc::ptr_eq(bd, pd) {
                        KeyCol::Codes {
                            b: bc,
                            p: Cow::Borrowed(pc),
                        }
                    } else {
                        let trans = crate::dict::translation(pd, bd);
                        KeyCol::Codes {
                            b: bc,
                            p: Cow::Owned(
                                pc.iter()
                                    .map(|&c| trans[c as usize].unwrap_or(crate::dict::NULL_CODE))
                                    .collect(),
                            ),
                        }
                    }
                }
                _ => KeyCol::Value,
            },
        )
        .collect()
}

/// Key hashes for each row in `rows` on one join side, positionally
/// aligned with `rows`. Code-scheme columns hash the `u32` code with the
/// same byte stream on both sides, so hashing can never separate a pair
/// the equality check would accept; the hash function is operator-local
/// and never influences output order.
fn hash_join_side(
    batch: &RecordBatch,
    keys: &[usize],
    kc: &[KeyCol],
    rows: &[u32],
    build: bool,
    par: Parallelism,
) -> Vec<u64> {
    let hash_one = |row: u32| -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for (i, k) in kc.iter().enumerate() {
            match k {
                KeyCol::Value => batch.columns[keys[i]].hash_value_into(row as usize, &mut h),
                KeyCol::Codes { b, p } => {
                    let code = if build {
                        b[row as usize]
                    } else {
                        p[row as usize]
                    };
                    h.write_u8(3);
                    h.write_u32(code);
                }
            }
        }
        h.finish()
    };
    if go_parallel(par, rows.len()) {
        let ranges = morsel_ranges(rows.len());
        let parts = par_map(ranges.len(), par.threads(), |i| {
            rows[ranges[i].clone()]
                .iter()
                .map(|&r| hash_one(r))
                .collect::<Vec<u64>>()
        });
        let mut out = Vec::with_capacity(rows.len());
        for part in parts {
            out.extend(part);
        }
        out
    } else {
        rows.iter().map(|&r| hash_one(r)).collect()
    }
}

/// Key equality between a probe row and a build row under the per-column
/// schemes. `keys_eq` semantics for `Value` columns; pure `u32` compares
/// for `Codes` columns.
fn join_keys_eq(
    p: &RecordBatch,
    p_keys: &[usize],
    p_row: u32,
    b: &RecordBatch,
    b_keys: &[usize],
    b_row: u32,
    kc: &[KeyCol],
) -> bool {
    kc.iter().enumerate().all(|(i, k)| match k {
        KeyCol::Value => {
            p.columns[p_keys[i]].value_eq(p_row as usize, &b.columns[b_keys[i]], b_row as usize)
        }
        KeyCol::Codes { b: bc, p: pc } => pc[p_row as usize] == bc[b_row as usize],
    })
}

/// Hash equi-join over (possibly selection-filtered) batches. `build`
/// selects the hash-table side; `Auto` builds on the smaller input. The
/// parallel core partitions both sides by key hash and runs per-partition
/// build+probe on worker threads; the canonical `(left, right)` output
/// sort makes it bit-identical to the serial core.
fn batch_join(
    l: &SelBatch,
    r: &SelBatch,
    join_type: JoinType,
    left_keys: &[usize],
    right_keys: &[usize],
    build: BuildSide,
    par: Parallelism,
) -> Result<RecordBatch> {
    if left_keys.len() != right_keys.len() {
        return Err(Error::Storage("join key arity mismatch".into()));
    }
    // Malformed plans must surface as errors, not index panics, so the
    // service worker pool survives bad requests.
    if let Some(&k) = left_keys.iter().find(|&&k| k >= l.batch.arity()) {
        return Err(Error::Storage(format!("left join key {k} out of range")));
    }
    if let Some(&k) = right_keys.iter().find(|&&k| k >= r.batch.arity()) {
        return Err(Error::Storage(format!("right join key {k} out of range")));
    }
    let names = join_names(&l.batch.names, &r.batch.names);
    let build_left = match build {
        BuildSide::Left => true,
        BuildSide::Right => false,
        BuildSide::Auto => l.len() < r.len(),
    };
    let l_rows = l.rows();
    let r_rows = r.rows();
    let (b, b_rows, b_keys, p, p_rows, p_keys) = if build_left {
        (
            &l.batch,
            &l_rows[..],
            left_keys,
            &r.batch,
            &r_rows[..],
            right_keys,
        )
    } else {
        (
            &r.batch,
            &r_rows[..],
            right_keys,
            &l.batch,
            &l_rows[..],
            left_keys,
        )
    };
    let kc = key_cols(b, b_keys, p, p_keys);
    let pad_left_rows = matches!(join_type, JoinType::LeftOuter | JoinType::FullOuter);
    let pad_right_rows = matches!(join_type, JoinType::RightOuter | JoinType::FullOuter);

    let rows = if go_parallel(par, b_rows.len() + p_rows.len()) {
        parallel_join_core(
            b,
            b_rows,
            b_keys,
            p,
            p_rows,
            p_keys,
            &kc,
            build_left,
            pad_left_rows,
            pad_right_rows,
            par,
        )
    } else {
        serial_join_core(
            b,
            b_rows,
            b_keys,
            p,
            p_rows,
            p_keys,
            &kc,
            build_left,
            pad_left_rows,
            pad_right_rows,
        )
    };
    assemble_join(&l.batch, &r.batch, names, rows)
}

/// Single-threaded build+probe (the original executor). `b_rows`/`p_rows`
/// are the selected (ascending) underlying row indices of each side; all
/// emitted indices are underlying.
#[allow(clippy::too_many_arguments)]
fn serial_join_core(
    b: &RecordBatch,
    b_rows: &[u32],
    b_keys: &[usize],
    p: &RecordBatch,
    p_rows: &[u32],
    p_keys: &[usize],
    kc: &[KeyCol],
    build_left: bool,
    pad_left_rows: bool,
    pad_right_rows: bool,
) -> JoinRows {
    // Build: hash → positions into b_rows (NULL keys never match).
    let b_hashes = hash_join_side(b, b_keys, kc, b_rows, true, Parallelism::Serial);
    let mut table: HashMap<u64, Vec<u32>> = HashMap::with_capacity(b_rows.len());
    for (pos, &bi) in b_rows.iter().enumerate() {
        if b.key_has_null(b_keys, bi as usize) {
            continue;
        }
        table.entry(b_hashes[pos]).or_default().push(pos as u32);
    }

    // Probe: emit (left row, right row) index pairs for matched rows and
    // collect rows needing NULL padding.
    let p_hashes = hash_join_side(p, p_keys, kc, p_rows, false, Parallelism::Serial);
    let mut matched_build = vec![false; b_rows.len()];
    let mut out_l: Vec<u32> = Vec::new();
    let mut out_r: Vec<u32> = Vec::new();
    let mut pad_l: Vec<u32> = Vec::new();
    let mut pad_r: Vec<u32> = Vec::new();
    for (ppos, &pi) in p_rows.iter().enumerate() {
        let mut any = false;
        if !p.key_has_null(p_keys, pi as usize) {
            if let Some(cands) = table.get(&p_hashes[ppos]) {
                for &bpos in cands {
                    let bi = b_rows[bpos as usize];
                    if join_keys_eq(p, p_keys, pi, b, b_keys, bi, kc) {
                        any = true;
                        matched_build[bpos as usize] = true;
                        if build_left {
                            out_l.push(bi);
                            out_r.push(pi);
                        } else {
                            out_l.push(pi);
                            out_r.push(bi);
                        }
                    }
                }
            }
        }
        if !any {
            // The probe side is left when building right, and vice versa.
            if build_left {
                if pad_right_rows {
                    pad_r.push(pi);
                }
            } else if pad_left_rows {
                pad_l.push(pi);
            }
        }
    }
    for (bpos, &m) in matched_build.iter().enumerate() {
        if !m {
            if build_left {
                if pad_left_rows {
                    pad_l.push(b_rows[bpos]);
                }
            } else if pad_right_rows {
                pad_r.push(b_rows[bpos]);
            }
        }
    }
    // When the build side is the left input, matched pairs were emitted in
    // probe (= right) major order; restore the canonical left-major order.
    // (Building right already emits sorted by (left, right).)
    if build_left && !out_l.is_empty() {
        let mut perm: Vec<usize> = (0..out_l.len()).collect();
        perm.sort_by_key(|&i| (out_l[i], out_r[i]));
        out_l = perm.iter().map(|&i| out_l[i]).collect();
        out_r = perm.iter().map(|&i| out_r[i]).collect();
    }
    pad_l.sort_unstable();
    pad_r.sort_unstable();
    JoinRows {
        out_l,
        out_r,
        pad_l,
        pad_r,
    }
}

/// Two-phase parallel build+probe: partition both sides by key hash, then
/// build+probe each partition on a worker thread. A build row and every
/// probe row that can match it land in the same partition, so partitions
/// are independent; the final global `(left, right)` sort restores the
/// serial core's exact row order.
#[allow(clippy::too_many_arguments)]
fn parallel_join_core(
    b: &RecordBatch,
    b_rows: &[u32],
    b_keys: &[usize],
    p: &RecordBatch,
    p_rows: &[u32],
    p_keys: &[usize],
    kc: &[KeyCol],
    build_left: bool,
    pad_left_rows: bool,
    pad_right_rows: bool,
    par: Parallelism,
) -> JoinRows {
    let threads = par.threads();
    let b_hashes = hash_join_side(b, b_keys, kc, b_rows, true, par);
    let p_hashes = hash_join_side(p, p_keys, kc, p_rows, false, par);
    // Power-of-two partition count a bit above the thread count, so one
    // slow partition does not serialize the tail.
    let n_parts = (threads * 4).next_power_of_two();
    let mask = n_parts - 1;

    let mut b_parts: Vec<Vec<u32>> = vec![Vec::new(); n_parts];
    for (pos, &bi) in b_rows.iter().enumerate() {
        if !b.key_has_null(b_keys, bi as usize) {
            b_parts[(b_hashes[pos] as usize) & mask].push(pos as u32);
        }
    }
    let mut p_parts: Vec<Vec<u32>> = vec![Vec::new(); n_parts];
    // NULL-keyed probe rows never match: straight to the unmatched list.
    let mut unmatched_probe: Vec<u32> = Vec::new();
    for (pos, &pi) in p_rows.iter().enumerate() {
        if p.key_has_null(p_keys, pi as usize) {
            unmatched_probe.push(pi);
        } else {
            p_parts[(p_hashes[pos] as usize) & mask].push(pos as u32);
        }
    }

    // (matched (build,probe) underlying pairs, matched build positions,
    // unmatched probe underlying rows) per partition.
    type PartOut = (Vec<(u32, u32)>, Vec<u32>, Vec<u32>);
    let parts: Vec<PartOut> = par_map(n_parts, threads, |part| {
        let mut table: HashMap<u64, Vec<u32>> = HashMap::with_capacity(b_parts[part].len());
        for &bpos in &b_parts[part] {
            table.entry(b_hashes[bpos as usize]).or_default().push(bpos);
        }
        let mut pairs = Vec::new();
        let mut matched = Vec::new();
        let mut unmatched = Vec::new();
        for &ppos in &p_parts[part] {
            let pi = p_rows[ppos as usize];
            let mut any = false;
            if let Some(cands) = table.get(&p_hashes[ppos as usize]) {
                for &bpos in cands {
                    let bi = b_rows[bpos as usize];
                    if join_keys_eq(p, p_keys, pi, b, b_keys, bi, kc) {
                        any = true;
                        pairs.push((bi, pi));
                        matched.push(bpos);
                    }
                }
            }
            if !any {
                unmatched.push(pi);
            }
        }
        (pairs, matched, unmatched)
    });

    let mut matched_build = vec![false; b_rows.len()];
    let mut lr: Vec<(u32, u32)> = Vec::new();
    for (pairs, matched, unmatched) in parts {
        for (bi, pi) in pairs {
            lr.push(if build_left { (bi, pi) } else { (pi, bi) });
        }
        for bpos in matched {
            matched_build[bpos as usize] = true;
        }
        unmatched_probe.extend(unmatched);
    }
    // Canonical order: (left, right) ascending; pairs are unique, so the
    // unstable sort is deterministic.
    lr.sort_unstable();
    let (out_l, out_r) = lr.into_iter().unzip();

    let mut pad_l: Vec<u32> = Vec::new();
    let mut pad_r: Vec<u32> = Vec::new();
    for &pi in &unmatched_probe {
        if build_left {
            if pad_right_rows {
                pad_r.push(pi);
            }
        } else if pad_left_rows {
            pad_l.push(pi);
        }
    }
    for (bpos, &m) in matched_build.iter().enumerate() {
        if !m {
            if build_left {
                if pad_left_rows {
                    pad_l.push(b_rows[bpos]);
                }
            } else if pad_right_rows {
                pad_r.push(b_rows[bpos]);
            }
        }
    }
    pad_l.sort_unstable();
    pad_r.sort_unstable();
    JoinRows {
        out_l,
        out_r,
        pad_l,
        pad_r,
    }
}

/// Assemble the output in the row executor's exact order: a left-major
/// merge of matched pairs and NULL-padded unmatched left rows (a left row
/// is either matched or padded, never both), then unmatched right rows.
/// `None` gathers as NULL.
fn assemble_join(
    l: &RecordBatch,
    r: &RecordBatch,
    names: Vec<String>,
    rows: JoinRows,
) -> Result<RecordBatch> {
    let JoinRows {
        out_l,
        out_r,
        pad_l,
        pad_r,
    } = rows;
    let total = out_l.len() + pad_l.len() + pad_r.len();
    let mut fin_l: Vec<Option<u32>> = Vec::with_capacity(total);
    let mut fin_r: Vec<Option<u32>> = Vec::with_capacity(total);
    let (mut i, mut j) = (0usize, 0usize);
    while i < out_l.len() || j < pad_l.len() {
        let take_matched = match (out_l.get(i), pad_l.get(j)) {
            (Some(&m), Some(&pad)) => m < pad,
            (Some(_), None) => true,
            _ => false,
        };
        if take_matched {
            fin_l.push(Some(out_l[i]));
            fin_r.push(Some(out_r[i]));
            i += 1;
        } else {
            fin_l.push(Some(pad_l[j]));
            fin_r.push(None);
            j += 1;
        }
    }
    for &ri in &pad_r {
        fin_l.push(None);
        fin_r.push(Some(ri));
    }

    let mut columns = Vec::with_capacity(l.arity() + r.arity());
    for c in &l.columns {
        columns.push(c.gather_opt(&fin_l));
    }
    for c in &r.columns {
        columns.push(c.gather_opt(&fin_r));
    }
    Ok(RecordBatch::new(names, columns, total))
}

/// Hashes of the `cols` key of each selected row, positionally aligned
/// with `rows`. Dictionary-encoded columns hash their `u32` code instead
/// of the decoded string — safe for operator-local grouping/distinct
/// because group order is first-seen (row order) and equality is always
/// re-checked, so the hash function never leaks into results.
fn local_key_hashes(
    batch: &RecordBatch,
    cols: &[usize],
    rows: &[u32],
    par: Parallelism,
) -> Vec<u64> {
    let hash_one = |row: u32| -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for &c in cols {
            match batch.columns[c].dict_parts() {
                Some((codes, _)) => {
                    h.write_u8(3);
                    h.write_u32(codes[row as usize]);
                }
                None => batch.columns[c].hash_value_into(row as usize, &mut h),
            }
        }
        h.finish()
    };
    if go_parallel(par, rows.len()) {
        let ranges = morsel_ranges(rows.len());
        let parts = par_map(ranges.len(), par.threads(), |i| {
            rows[ranges[i].clone()]
                .iter()
                .map(|&r| hash_one(r))
                .collect::<Vec<u64>>()
        });
        let mut out = Vec::with_capacity(rows.len());
        for part in parts {
            out.extend(part);
        }
        out
    } else {
        rows.iter().map(|&r| hash_one(r)).collect()
    }
}

/// Hash-based distinct over the selected rows, preserving first-occurrence
/// order. Returns the kept underlying row indices (ascending, since `rows`
/// is ascending).
fn batch_distinct(batch: &RecordBatch, rows: &[u32]) -> Vec<u32> {
    let all: Vec<usize> = (0..batch.arity()).collect();
    let hashes = local_key_hashes(batch, &all, rows, Parallelism::Serial);
    let mut seen: HashMap<u64, Vec<u32>> = HashMap::with_capacity(rows.len());
    let mut keep: Vec<u32> = Vec::new();
    'rows: for (pos, &row) in rows.iter().enumerate() {
        let bucket = seen.entry(hashes[pos]).or_default();
        for &j in bucket.iter() {
            if batch.keys_eq(&all, row as usize, batch, &all, j as usize) {
                continue 'rows;
            }
        }
        bucket.push(row);
        keep.push(row);
    }
    keep
}

/// Hash-grouped aggregation. Groups preserve first-seen order (matching the
/// row executor); aggregates run with typed fast paths over dense columns.
///
/// Public because the annotation layer evaluates semiring ⊕-sums directly
/// through this operator (paper §4.2.4's `GROUP BY` step) without building
/// a plan tree around it.
pub fn batch_aggregate(
    batch: &RecordBatch,
    group_by: &[usize],
    aggs: &[Aggregate],
    having: Option<&Expr>,
) -> Result<RecordBatch> {
    batch_aggregate_opts(batch, group_by, aggs, having, Parallelism::Serial)
}

/// [`batch_aggregate`] with morsel-driven parallel grouping: each morsel
/// builds a partial group table, partials merge in morsel index order (so
/// group ids, representative rows, and member order — hence `f64` SUM
/// accumulation order — are identical to the serial pass), then aggregate
/// folding parallelizes over chunks of groups.
pub fn batch_aggregate_opts(
    batch: &RecordBatch,
    group_by: &[usize],
    aggs: &[Aggregate],
    having: Option<&Expr>,
    par: Parallelism,
) -> Result<RecordBatch> {
    batch_aggregate_sel(batch, None, group_by, aggs, having, par)
}

/// [`batch_aggregate_opts`] over a selection: only the rows in `sel`
/// (ascending underlying indices; `None` = all rows) participate.
fn batch_aggregate_sel(
    batch: &RecordBatch,
    sel: Option<&[u32]>,
    group_by: &[usize],
    aggs: &[Aggregate],
    having: Option<&Expr>,
    par: Parallelism,
) -> Result<RecordBatch> {
    let par = par.resolved();
    if let Some(&c) = group_by.iter().find(|&&c| c >= batch.arity()) {
        return Err(Error::Storage(format!("group column {c} out of range")));
    }
    if let Some(c) = aggs
        .iter()
        .filter_map(|a| a.func.input_column())
        .find(|&c| c >= batch.arity())
    {
        return Err(Error::Storage(format!(
            "aggregate input column {c} out of range"
        )));
    }
    let rows: Cow<'_, [u32]> = match sel {
        Some(s) => Cow::Borrowed(s),
        None => Cow::Owned((0..batch.len() as u32).collect()),
    };
    let hashes = local_key_hashes(batch, group_by, &rows, par);
    let (mut group_first, mut members) = if go_parallel(par, rows.len()) {
        parallel_grouping(batch, group_by, &rows, &hashes, par)
    } else {
        serial_grouping(batch, group_by, &rows, &hashes)
    };
    // Global aggregate over empty input still yields one row.
    if group_by.is_empty() && rows.is_empty() {
        group_first.push(0);
        members.push(Vec::new());
    }

    let mut names: Vec<String> = group_by
        .iter()
        .map(|&c| {
            batch
                .names
                .get(c)
                .cloned()
                .unwrap_or_else(|| format!("c{c}"))
        })
        .collect();
    names.extend(aggs.iter().map(|a| a.name.clone()));

    let n_groups = group_first.len();
    let mut columns: Vec<Column> = Vec::with_capacity(group_by.len() + aggs.len());
    for &c in group_by {
        columns.push(batch.columns[c].gather(&group_first));
    }
    for agg in aggs {
        columns.push(fold_agg_column_par(agg.func, &members, batch, par)?);
    }
    let mut out = RecordBatch::new(names, columns, n_groups);
    if let Some(pred) = having {
        let mask = eval_mask(pred, &out)?;
        out = out.filter(&mask);
    }
    Ok(out)
}

/// First-seen-order group assignment, shared by the serial pass, the
/// per-morsel workers, and the partial-table merge (one implementation so
/// group equality can never diverge between the serial and parallel
/// paths).
#[derive(Default)]
struct GroupTable {
    /// hash → (representative row, gid) entries.
    buckets: HashMap<u64, Vec<(u32, u32)>>,
    /// gid → representative (first-seen) underlying row.
    firsts: Vec<u32>,
    /// gid → the representative's key hash (lets the partial-table merge
    /// re-insert representatives without a positional hash lookup).
    first_hash: Vec<u64>,
    /// gid → member underlying rows, in insertion order.
    members: Vec<Vec<u32>>,
}

impl GroupTable {
    /// The gid of `row`'s group, creating the group (with `row` as its
    /// representative) on first sight.
    fn gid(&mut self, batch: &RecordBatch, group_by: &[usize], hash: u64, row: u32) -> u32 {
        let bucket = self.buckets.entry(hash).or_default();
        for &(first, g) in bucket.iter() {
            if batch.keys_eq(group_by, row as usize, batch, group_by, first as usize) {
                return g;
            }
        }
        let g = self.firsts.len() as u32;
        bucket.push((row, g));
        self.firsts.push(row);
        self.first_hash.push(hash);
        self.members.push(Vec::new());
        g
    }
}

/// Assign group ids in first-seen order over the selected rows; returns
/// (gid → representative underlying row, gid → member underlying rows in
/// ascending order). `hashes` is positionally aligned with `rows`.
fn serial_grouping(
    batch: &RecordBatch,
    group_by: &[usize],
    rows: &[u32],
    hashes: &[u64],
) -> (Vec<u32>, Vec<Vec<u32>>) {
    let mut table = GroupTable::default();
    for (pos, &row) in rows.iter().enumerate() {
        let g = table.gid(batch, group_by, hashes[pos], row);
        table.members[g as usize].push(row);
    }
    (table.firsts, table.members)
}

/// Morsel-parallel grouping: per-morsel partial group tables (built on
/// worker threads) merged serially in morsel index order. The merge visits
/// each morsel's groups in local first-seen order, so global group order
/// equals the serial first-seen order and member lists stay ascending.
fn parallel_grouping(
    batch: &RecordBatch,
    group_by: &[usize],
    rows: &[u32],
    hashes: &[u64],
    par: Parallelism,
) -> (Vec<u32>, Vec<Vec<u32>>) {
    let ranges = morsel_ranges(rows.len());
    let parts: Vec<GroupTable> = par_map(ranges.len(), par.threads(), |mi| {
        let mut local = GroupTable::default();
        for pos in ranges[mi].clone() {
            let g = local.gid(batch, group_by, hashes[pos], rows[pos]);
            local.members[g as usize].push(rows[pos]);
        }
        local
    });

    let mut table = GroupTable::default();
    for local in parts {
        for (local_gid, &first) in local.firsts.iter().enumerate() {
            let g = table.gid(batch, group_by, local.first_hash[local_gid], first);
            table.members[g as usize].extend_from_slice(&local.members[local_gid]);
        }
    }
    (table.firsts, table.members)
}

fn sum_overflow() -> Error {
    Error::Overflow("integer SUM overflowed i64 (derivation counts too large?)".into())
}

/// [`fold_agg_column`] parallelized over chunks of groups. Every group's
/// fold visits its members in the same (ascending row) order as the serial
/// pass, so results — floats included — are bit-identical; chunks merely
/// spread independent groups over threads.
fn fold_agg_column_par(
    func: AggFunc,
    members: &[Vec<u32>],
    batch: &RecordBatch,
    par: Parallelism,
) -> Result<Column> {
    if !go_parallel(par, members.len()) {
        return fold_agg_column(func, members, batch);
    }
    let ranges = morsel_ranges(members.len());
    let parts = par_map(ranges.len(), par.threads(), |i| {
        fold_agg_column(func, &members[ranges[i].clone()], batch)
    });
    let mut iter = parts.into_iter();
    let mut acc = iter
        .next()
        .ok_or_else(|| Error::Storage("empty aggregate chunk set".into()))??;
    for part in iter {
        acc = acc.append(part?);
    }
    Ok(acc)
}

/// Evaluate one aggregate for every group. Integer SUM uses checked
/// arithmetic: overflow surfaces as [`Error::Overflow`] (matching the
/// semiring graph walk's contract) instead of silently wrapping.
fn fold_agg_column(func: AggFunc, members: &[Vec<u32>], batch: &RecordBatch) -> Result<Column> {
    match func {
        AggFunc::Count => Ok(Column::Int(
            members.iter().map(|m| m.len() as i64).collect(),
        )),
        AggFunc::Sum(c) => {
            let col = &batch.columns[c];
            match col {
                // Dense fast paths: no NULLs possible.
                Column::Int(v) => {
                    let mut out = Vec::with_capacity(members.len());
                    for m in members {
                        if m.is_empty() {
                            out.push(Value::Null);
                        } else {
                            let mut acc = 0i64;
                            for &i in m {
                                acc = acc.checked_add(v[i as usize]).ok_or_else(sum_overflow)?;
                            }
                            out.push(Value::Int(acc));
                        }
                    }
                    Ok(Column::from_value_vec(out))
                }
                Column::Float(v) => Ok(Column::from_value_vec(
                    members
                        .iter()
                        .map(|m| {
                            if m.is_empty() {
                                Value::Null
                            } else {
                                Value::Float(m.iter().map(|&i| v[i as usize]).sum())
                            }
                        })
                        .collect(),
                )),
                _ => {
                    let mut out = Vec::with_capacity(members.len());
                    for m in members {
                        let mut int_sum: i64 = 0;
                        let mut float_sum: f64 = 0.0;
                        let mut any_float = false;
                        let mut any = false;
                        for &i in m {
                            match col.value(i as usize) {
                                Value::Int(v) => {
                                    int_sum = int_sum.checked_add(v).ok_or_else(sum_overflow)?;
                                    any = true;
                                }
                                Value::Float(v) => {
                                    float_sum += v;
                                    any_float = true;
                                    any = true;
                                }
                                Value::Null => {}
                                other => {
                                    return Err(Error::Storage(format!(
                                        "SUM over non-numeric {other}"
                                    )))
                                }
                            }
                        }
                        out.push(if !any {
                            Value::Null
                        } else if any_float {
                            Value::Float(float_sum + int_sum as f64)
                        } else {
                            Value::Int(int_sum)
                        });
                    }
                    Ok(Column::from_value_vec(out))
                }
            }
        }
        AggFunc::Min(c) | AggFunc::Max(c) => {
            let col = &batch.columns[c];
            let want_min = matches!(func, AggFunc::Min(_));
            let mut out = Vec::with_capacity(members.len());
            for m in members {
                let mut best: Option<Value> = None;
                for &i in m {
                    let v = col.value(i as usize);
                    if v.is_null() {
                        continue;
                    }
                    best = Some(match best {
                        None => v,
                        Some(b) => {
                            let keep_new = if want_min { v < b } else { v > b };
                            if keep_new {
                                v
                            } else {
                                b
                            }
                        }
                    });
                }
                out.push(best.unwrap_or(Value::Null));
            }
            Ok(Column::from_value_vec(out))
        }
        AggFunc::BoolOr(c) | AggFunc::BoolAnd(c) => {
            let col = &batch.columns[c];
            let is_or = matches!(func, AggFunc::BoolOr(_));
            let mut out = Vec::with_capacity(members.len());
            for m in members {
                let mut acc: Option<bool> = None;
                for &i in m {
                    match col.value(i as usize) {
                        Value::Bool(b) => {
                            acc = Some(match acc {
                                None => b,
                                Some(a) if is_or => a || b,
                                Some(a) => a && b,
                            });
                        }
                        Value::Null => {}
                        other => {
                            return Err(Error::Storage(format!(
                                "boolean aggregate over non-boolean {other}"
                            )))
                        }
                    }
                }
                out.push(acc.map(Value::Bool).unwrap_or(Value::Null));
            }
            Ok(Column::from_value_vec(out))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use proql_common::rng::SplitMix64;
    use proql_common::{tup, Schema, Tuple, ValueType};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            Schema::build(
                "A",
                &[
                    ("id", ValueType::Int),
                    ("sn", ValueType::Str),
                    ("len", ValueType::Int),
                ],
                &[0],
            )
            .unwrap(),
        )
        .unwrap();
        db.create_table(
            Schema::build(
                "C",
                &[("id", ValueType::Int), ("name", ValueType::Str)],
                &[0, 1],
            )
            .unwrap(),
        )
        .unwrap();
        db.insert("A", tup![1, "sn1", 7]).unwrap();
        db.insert("A", tup![2, "sn1", 5]).unwrap();
        db.insert("C", tup![2, "cn2"]).unwrap();
        db.insert("C", tup![3, "cn3"]).unwrap();
        db
    }

    /// Batch and row executors agree (rows order-insensitively, names
    /// exactly) on a plan — under every parallelism setting.
    fn assert_equivalent(db: &Database, plan: &Plan) {
        let row = execute(db, plan).expect("row executor");
        let nested = execute_with(db, plan, ExecMode::NestedLoop).expect("nested loop");
        assert_eq!(row.sorted_rows(), nested.sorted_rows());
        for par in [
            Parallelism::Serial,
            Parallelism::Threads(2),
            Parallelism::Threads(8),
        ] {
            let batch = execute_with_opts(db, plan, ExecMode::Batch, par).expect("batch executor");
            assert_eq!(row.names, batch.names, "par {par:?}");
            assert_eq!(row.sorted_rows(), batch.sorted_rows(), "par {par:?}");
        }
    }

    #[test]
    fn scan_filter_project_match_row_executor() {
        let db = db();
        assert_equivalent(&db, &Plan::scan("A"));
        assert_equivalent(&db, &Plan::scan("A").filter(Expr::col(2).eq(Expr::lit(5))));
        assert_equivalent(
            &db,
            &Plan::scan("A").project(vec![
                Expr::col(0),
                Expr::cmp(crate::expr::BinOp::Add, Expr::col(2), Expr::lit(1)),
            ]),
        );
    }

    #[test]
    fn joins_match_row_executor_for_all_types_and_build_sides() {
        let db = db();
        for jt in [
            JoinType::Inner,
            JoinType::LeftOuter,
            JoinType::RightOuter,
            JoinType::FullOuter,
        ] {
            for build in [BuildSide::Auto, BuildSide::Left, BuildSide::Right] {
                let plan = Plan::Join {
                    left: Box::new(Plan::scan("A")),
                    right: Box::new(Plan::scan("C")),
                    join_type: jt,
                    left_keys: vec![0],
                    right_keys: vec![0],
                    build,
                };
                assert_equivalent(&db, &plan);
            }
        }
    }

    #[test]
    fn join_row_order_matches_row_executor_exactly() {
        let db = db();
        for jt in [
            JoinType::Inner,
            JoinType::LeftOuter,
            JoinType::RightOuter,
            JoinType::FullOuter,
        ] {
            for build in [BuildSide::Auto, BuildSide::Left, BuildSide::Right] {
                let plan = Plan::Join {
                    left: Box::new(Plan::scan("A")),
                    right: Box::new(Plan::scan("C")),
                    join_type: jt,
                    left_keys: vec![0],
                    right_keys: vec![0],
                    build,
                };
                let row = execute(&db, &plan).unwrap();
                let batch = execute_with(&db, &plan, ExecMode::Batch).unwrap();
                assert_eq!(row.rows, batch.rows, "jt={jt:?} build={build:?}");
            }
        }
    }

    #[test]
    fn limit_over_outer_join_is_order_stable_across_executors() {
        // Regression: unmatched left rows must interleave in left-scan
        // order (as the row executor emits them), not append at the end —
        // otherwise order-sensitive consumers like LIMIT diverge.
        let db = db();
        let plan = Plan::Limit {
            input: Box::new(Plan::scan("A").join_as(
                Plan::scan("C"),
                JoinType::LeftOuter,
                vec![0],
                vec![0],
            )),
            n: 1,
        };
        let row = execute(&db, &plan).unwrap();
        let batch = execute_with(&db, &plan, ExecMode::Batch).unwrap();
        assert_eq!(row.rows, batch.rows);
        // A(1) has no C match, so the first output row is its padded row.
        assert!(batch.rows[0].get(3).is_null());
    }

    #[test]
    fn union_distinct_sort_limit_match() {
        let db = db();
        let union = Plan::Union {
            inputs: vec![
                Plan::scan("A").project(vec![Expr::col(0)]),
                Plan::scan("C").project(vec![Expr::col(0)]),
            ],
            distinct: false,
        };
        assert_equivalent(&db, &union);
        assert_equivalent(&db, &union.clone().distinct());
        assert_equivalent(
            &db,
            &Plan::Sort {
                input: Box::new(union.clone()),
                by: vec![0],
            },
        );
        assert_equivalent(
            &db,
            &Plan::Limit {
                input: Box::new(Plan::Sort {
                    input: Box::new(union),
                    by: vec![0],
                }),
                n: 2,
            },
        );
    }

    #[test]
    fn aggregates_match() {
        let db = db();
        let p = Plan::Aggregate {
            input: Box::new(Plan::scan("A")),
            group_by: vec![1],
            aggs: vec![
                Aggregate::new(AggFunc::Count, "n"),
                Aggregate::new(AggFunc::Sum(2), "total"),
                Aggregate::new(AggFunc::Min(2), "lo"),
                Aggregate::new(AggFunc::Max(2), "hi"),
            ],
            having: Some(Expr::cmp(
                crate::expr::BinOp::Ge,
                Expr::col(2),
                Expr::lit(12),
            )),
        };
        assert_equivalent(&db, &p);
        // Global aggregate over empty input.
        let p = Plan::Aggregate {
            input: Box::new(Plan::scan("A").filter(Expr::lit(false))),
            group_by: vec![],
            aggs: vec![
                Aggregate::new(AggFunc::Count, "n"),
                Aggregate::new(AggFunc::Sum(2), "s"),
            ],
            having: None,
        };
        assert_equivalent(&db, &p);
    }

    #[test]
    fn null_join_keys_never_match_in_batch() {
        let mut db = Database::new();
        db.create_table(Schema::build("L", &[("k", ValueType::Int)], &[]).unwrap())
            .unwrap();
        db.create_table(Schema::build("R", &[("k", ValueType::Int)], &[]).unwrap())
            .unwrap();
        db.table_mut("L")
            .unwrap()
            .insert(Tuple::new(vec![Value::Null]))
            .unwrap();
        db.table_mut("L").unwrap().insert(tup![1]).unwrap();
        db.table_mut("R")
            .unwrap()
            .insert(Tuple::new(vec![Value::Null]))
            .unwrap();
        db.table_mut("R").unwrap().insert(tup![1]).unwrap();
        for jt in [JoinType::Inner, JoinType::FullOuter] {
            let p = Plan::scan("L").join_as(Plan::scan("R"), jt, vec![0], vec![0]);
            assert_equivalent(&db, &p);
        }
    }

    #[test]
    fn views_and_index_lookups_match() {
        let mut db = db();
        let schema = Schema::build("V", &[("id", ValueType::Int)], &[]).unwrap();
        db.create_view("V", Plan::scan("A").project(vec![Expr::col(0)]), schema)
            .unwrap();
        assert_equivalent(&db, &Plan::scan("V"));
        let p = Plan::IndexLookup {
            table: "A".into(),
            columns: vec![1],
            key: vec![Value::str("sn1")],
            residual: Some(Expr::col(2).eq(Expr::lit(7))),
        };
        assert_equivalent(&db, &p);
    }

    #[test]
    fn randomized_plans_agree_across_executors() {
        let mut rng = SplitMix64::seed_from_u64(0xBA7C4);
        for round in 0..20 {
            let mut db = Database::new();
            db.create_table(
                Schema::build("S", &[("a", ValueType::Int), ("b", ValueType::Int)], &[]).unwrap(),
            )
            .unwrap();
            db.create_table(
                Schema::build("T", &[("a", ValueType::Int), ("c", ValueType::Int)], &[]).unwrap(),
            )
            .unwrap();
            let mut seen = std::collections::HashSet::new();
            for _ in 0..rng.gen_range_usize(0, 40) {
                let t = (rng.gen_range_i64(0, 10), rng.gen_range_i64(0, 10));
                if seen.insert(("S", t)) {
                    db.insert("S", tup![t.0, t.1]).unwrap();
                }
            }
            for _ in 0..rng.gen_range_usize(0, 40) {
                let t = (rng.gen_range_i64(0, 10), rng.gen_range_i64(0, 10));
                if seen.insert(("T", t)) {
                    db.insert("T", tup![t.0, t.1]).unwrap();
                }
            }
            let probe = rng.gen_range_i64(0, 10);
            let plan = Plan::scan("S")
                .join(Plan::scan("T"), vec![0], vec![0])
                .filter(Expr::cmp(
                    crate::expr::BinOp::Le,
                    Expr::col(1),
                    Expr::lit(probe),
                ));
            assert_equivalent(&db, &plan);
            let agg = Plan::Aggregate {
                input: Box::new(plan),
                group_by: vec![0],
                aggs: vec![
                    Aggregate::new(AggFunc::Count, "n"),
                    Aggregate::new(AggFunc::Sum(3), "s"),
                ],
                having: None,
            };
            assert_equivalent(&db, &agg);
            let _ = round;
        }
    }

    /// Large instances that actually cross the morsel threshold: parallel
    /// scans/filters/projections/joins/aggregations must be bit-identical
    /// (exact row order included) to the serial batch run.
    #[test]
    fn parallel_morsel_paths_are_bit_identical_to_serial() {
        let mut db = Database::new();
        db.create_table(
            Schema::build("S", &[("a", ValueType::Int), ("b", ValueType::Int)], &[]).unwrap(),
        )
        .unwrap();
        db.create_table(
            Schema::build("T", &[("a", ValueType::Int), ("c", ValueType::Int)], &[]).unwrap(),
        )
        .unwrap();
        let mut rng = SplitMix64::seed_from_u64(0x05EE_DA11);
        let n = MORSEL_ROWS * 3 + 17;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..n {
            let t = (rng.gen_range_i64(0, 500), rng.gen_range_i64(0, 1000));
            if seen.insert(("S", t)) {
                db.insert("S", tup![t.0, t.1]).unwrap();
            }
            let t = (rng.gen_range_i64(0, 500), rng.gen_range_i64(0, 1000));
            if seen.insert(("T", t)) {
                db.insert("T", tup![t.0, t.1]).unwrap();
            }
        }
        let plans = [
            Plan::scan("S"),
            Plan::scan("S").filter(Expr::cmp(
                crate::expr::BinOp::Le,
                Expr::col(1),
                Expr::lit(700),
            )),
            Plan::scan("S").project(vec![
                Expr::col(0),
                Expr::cmp(crate::expr::BinOp::Add, Expr::col(1), Expr::lit(3)),
            ]),
            Plan::scan("S").join_as(Plan::scan("T"), JoinType::FullOuter, vec![0], vec![0]),
            Plan::Aggregate {
                input: Box::new(Plan::scan("S").join(Plan::scan("T"), vec![0], vec![0])),
                group_by: vec![0],
                aggs: vec![
                    Aggregate::new(AggFunc::Count, "n"),
                    Aggregate::new(AggFunc::Sum(3), "s"),
                    Aggregate::new(AggFunc::Min(1), "lo"),
                ],
                having: None,
            },
        ];
        for plan in &plans {
            let serial = execute_batch(&db, plan).unwrap();
            for threads in [2, 8] {
                let par = execute_batch_opts(&db, plan, Parallelism::Threads(threads)).unwrap();
                assert_eq!(serial.names, par.names);
                assert_eq!(serial.to_rows(), par.to_rows(), "threads {threads}");
            }
        }
    }

    #[test]
    fn malformed_plans_error_instead_of_panicking() {
        // The service worker pool executes plans built from untrusted
        // request text; out-of-range columns must be errors, not panics.
        let db = db();
        let bad_plans = [
            Plan::Join {
                left: Box::new(Plan::scan("A")),
                right: Box::new(Plan::scan("C")),
                join_type: JoinType::Inner,
                left_keys: vec![9],
                right_keys: vec![0],
                build: BuildSide::Auto,
            },
            Plan::Join {
                left: Box::new(Plan::scan("A")),
                right: Box::new(Plan::scan("C")),
                join_type: JoinType::FullOuter,
                left_keys: vec![0],
                right_keys: vec![7],
                build: BuildSide::Auto,
            },
            Plan::Aggregate {
                input: Box::new(Plan::scan("A")),
                group_by: vec![8],
                aggs: vec![],
                having: None,
            },
            Plan::Aggregate {
                input: Box::new(Plan::scan("A")),
                group_by: vec![],
                aggs: vec![Aggregate::new(AggFunc::Sum(9), "s")],
                having: None,
            },
            Plan::Sort {
                input: Box::new(Plan::scan("A")),
                by: vec![9],
            },
            Plan::scan("A").filter(Expr::col(9).eq(Expr::lit(1))),
            Plan::IndexLookup {
                table: "A".into(),
                columns: vec![9],
                key: vec![Value::Int(1)],
                residual: None,
            },
            Plan::IndexLookup {
                table: "A".into(),
                columns: vec![0, 1],
                key: vec![Value::Int(1)],
                residual: None,
            },
        ];
        for plan in &bad_plans {
            for mode in [ExecMode::Batch, ExecMode::Row, ExecMode::NestedLoop] {
                for par in [Parallelism::Serial, Parallelism::Threads(4)] {
                    let res = execute_with_opts(&db, plan, mode, par);
                    assert!(res.is_err(), "mode {mode:?} par {par:?}: {plan:?}");
                }
            }
        }
    }

    #[test]
    fn integer_sum_overflow_is_an_error_in_every_executor() {
        // Regression for the batch/graph divergence: batch SUM used to wrap
        // silently while the graph walk's checked arithmetic errored.
        let p = Plan::Aggregate {
            input: Box::new(Plan::Values {
                schema: crate::plan::anon_schema("v", &["x".into()]),
                rows: vec![tup![i64::MAX], tup![1]],
            }),
            group_by: vec![],
            aggs: vec![Aggregate::new(AggFunc::Sum(0), "s")],
            having: None,
        };
        let db = Database::new();
        for mode in [ExecMode::Batch, ExecMode::Row, ExecMode::NestedLoop] {
            for par in [Parallelism::Serial, Parallelism::Threads(4)] {
                let err = execute_with_opts(&db, &p, mode, par).unwrap_err();
                assert!(
                    matches!(err, Error::Overflow(_)),
                    "mode {mode:?} par {par:?}: {err}"
                );
            }
        }
    }

    #[test]
    fn float_sum_accumulation_order_is_identical_across_paths() {
        // Order-sensitive float sums: 1e16 + 1.0 + ... loses the small
        // addends exactly the same way in every executor path only if the
        // accumulation order is identical.
        let n = MORSEL_ROWS * 2 + 31;
        let mut rows = Vec::with_capacity(n);
        let mut rng = SplitMix64::seed_from_u64(0xF10A7);
        for i in 0..n {
            let v = if i % 97 == 0 {
                1e16
            } else {
                rng.gen_range_i64(1, 1000) as f64 / 7.0
            };
            rows.push(Tuple::new(vec![
                Value::Int(rng.gen_range_i64(0, 5)),
                Value::Float(v),
            ]));
        }
        let p = Plan::Aggregate {
            input: Box::new(Plan::Values {
                schema: crate::plan::anon_schema("v", &["g".into(), "x".into()]),
                rows,
            }),
            group_by: vec![0],
            aggs: vec![Aggregate::new(AggFunc::Sum(1), "s")],
            having: None,
        };
        let db = Database::new();
        let want = execute(&db, &p).unwrap();
        for mode in [ExecMode::Batch, ExecMode::NestedLoop] {
            for par in [
                Parallelism::Serial,
                Parallelism::Threads(2),
                Parallelism::Threads(8),
            ] {
                let got = execute_with_opts(&db, &p, mode, par).unwrap();
                // Exact equality: Value::Float compares bit patterns via
                // total order, so any reassociation would fail here.
                assert_eq!(want.rows, got.rows, "mode {mode:?} par {par:?}");
            }
        }
    }
}
