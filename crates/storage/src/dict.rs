//! Append-only string dictionaries for dictionary-encoded columns.
//!
//! A [`Dictionary`] interns distinct strings into dense `u32` codes. Codes
//! are stable for the dictionary's lifetime (the value vector is append-only),
//! so equality on codes is equality on strings *within one dictionary*, and
//! batches can share a table's dictionary by `Arc` without copying. Tables
//! maintain one dictionary per `Str`-typed column incrementally on insert
//! (see [`crate::table::Table`]); deletes leave codes in place — a
//! dictionary may therefore contain values with no live rows, which is why
//! exact NDV comes from the code-keyed counts in [`crate::stats`], not from
//! [`Dictionary::len`].

use std::collections::HashMap;
use std::sync::Arc;

/// Sentinel code used by table-resident code vectors to mark a NULL cell.
/// Never appears in a [`crate::batch::Column::Dict`] (nullable columns
/// degrade to the boxed representation on scan).
pub const NULL_CODE: u32 = u32::MAX;

/// An append-only interning table from strings to dense `u32` codes.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    values: Vec<Arc<str>>,
    index: HashMap<Arc<str>, u32>,
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Dictionary {
        Dictionary::default()
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Intern `s`, returning its code (existing or freshly assigned).
    pub fn intern(&mut self, s: &Arc<str>) -> u32 {
        if let Some(&c) = self.index.get(s) {
            return c;
        }
        let c = self.values.len() as u32;
        self.values.push(s.clone());
        self.index.insert(s.clone(), c);
        c
    }

    /// The string behind `code`. Panics on out-of-range codes (a code can
    /// only come from this dictionary).
    pub fn get(&self, code: u32) -> &Arc<str> {
        &self.values[code as usize]
    }

    /// The code of `s`, if it has been interned.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    /// All interned strings in code order.
    pub fn values(&self) -> &[Arc<str>] {
        &self.values
    }
}

/// Two dictionaries are equal iff they intern the same strings in the same
/// code order (the index is derived state).
impl PartialEq for Dictionary {
    fn eq(&self, other: &Dictionary) -> bool {
        self.values == other.values
    }
}

/// For a probe dictionary joined against a build dictionary: map each probe
/// code to the build code of the same string, or `None` when the build side
/// never interned it (such probe rows can never match).
pub fn translation(probe: &Dictionary, build: &Dictionary) -> Vec<Option<u32>> {
    probe.values.iter().map(|s| build.code_of(s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_codes_are_dense() {
        let mut d = Dictionary::new();
        let a: Arc<str> = Arc::from("a");
        let b: Arc<str> = Arc::from("b");
        assert_eq!(d.intern(&a), 0);
        assert_eq!(d.intern(&b), 1);
        assert_eq!(d.intern(&a), 0);
        assert_eq!(d.len(), 2);
        assert_eq!(&**d.get(1), "b");
        assert_eq!(d.code_of("a"), Some(0));
        assert_eq!(d.code_of("zzz"), None);
    }

    #[test]
    fn translation_maps_shared_values_and_drops_missing_ones() {
        let (mut p, mut b) = (Dictionary::new(), Dictionary::new());
        for s in ["x", "y", "z"] {
            p.intern(&Arc::from(s));
        }
        for s in ["y", "x"] {
            b.intern(&Arc::from(s));
        }
        assert_eq!(translation(&p, &b), vec![Some(1), Some(0), None]);
    }
}
