//! Secondary indexes over tables.
//!
//! The paper's ASRs are "stored as relations in the RDBMS, together with the
//! provenance relations", with "relational indices on key columns … to
//! provide efficient lookup of specific rows" (§5). These are those indices:
//! hash indexes for exact-match lookups and B-tree indexes for ordered /
//! prefix scans.

use proql_common::Tuple;
use std::collections::{BTreeMap, HashMap};

/// The physical kind of an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// Hash map from key tuple to row ids; O(1) exact lookups.
    Hash,
    /// B-tree map; supports ordered iteration and range scans.
    BTree,
}

/// A secondary index over a subset of a table's columns.
///
/// Maps the projection of each row onto `columns` to the list of row
/// positions holding that key (non-unique).
#[derive(Debug, Clone)]
pub struct Index {
    name: String,
    columns: Vec<usize>,
    kind: IndexKind,
    hash: HashMap<Tuple, Vec<usize>>,
    btree: BTreeMap<Tuple, Vec<usize>>,
}

impl Index {
    /// Create an empty index on `columns`.
    pub fn new(name: impl Into<String>, columns: Vec<usize>, kind: IndexKind) -> Self {
        Index {
            name: name.into(),
            columns,
            kind,
            hash: HashMap::new(),
            btree: BTreeMap::new(),
        }
    }

    /// Index name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Indexed column positions.
    pub fn columns(&self) -> &[usize] {
        &self.columns
    }

    /// Physical kind.
    pub fn kind(&self) -> IndexKind {
        self.kind
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        match self.kind {
            IndexKind::Hash => self.hash.len(),
            IndexKind::BTree => self.btree.len(),
        }
    }

    /// Register `row` (stored at position `pos`).
    pub fn insert(&mut self, row: &Tuple, pos: usize) {
        let key = row.project(&self.columns);
        match self.kind {
            IndexKind::Hash => self.hash.entry(key).or_default().push(pos),
            IndexKind::BTree => self.btree.entry(key).or_default().push(pos),
        }
    }

    /// Row positions whose key equals `key` exactly.
    pub fn lookup(&self, key: &Tuple) -> &[usize] {
        let found = match self.kind {
            IndexKind::Hash => self.hash.get(key),
            IndexKind::BTree => self.btree.get(key),
        };
        found.map(Vec::as_slice).unwrap_or(&[])
    }

    /// Row positions whose key is in `[lo, hi]` (inclusive). B-tree only;
    /// returns `None` on hash indexes.
    pub fn range(&self, lo: &Tuple, hi: &Tuple) -> Option<Vec<usize>> {
        match self.kind {
            IndexKind::Hash => None,
            IndexKind::BTree => {
                let mut out = Vec::new();
                for (_, rows) in self.btree.range(lo.clone()..=hi.clone()) {
                    out.extend_from_slice(rows);
                }
                Some(out)
            }
        }
    }

    /// Rebuild from scratch over `rows` (used after bulk loads / deletions).
    pub fn rebuild(&mut self, rows: &[Tuple]) {
        self.hash.clear();
        self.btree.clear();
        for (pos, row) in rows.iter().enumerate() {
            self.insert(row, pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proql_common::tup;

    fn sample() -> Vec<Tuple> {
        vec![tup![1, "a"], tup![2, "b"], tup![1, "c"], tup![3, "a"]]
    }

    #[test]
    fn hash_lookup_finds_all_matches() {
        let mut ix = Index::new("ix", vec![0], IndexKind::Hash);
        ix.rebuild(&sample());
        assert_eq!(ix.lookup(&tup![1]), &[0, 2]);
        assert_eq!(ix.lookup(&tup![9]), &[] as &[usize]);
        assert_eq!(ix.distinct_keys(), 3);
    }

    #[test]
    fn btree_lookup_and_range() {
        let mut ix = Index::new("ix", vec![0], IndexKind::BTree);
        ix.rebuild(&sample());
        assert_eq!(ix.lookup(&tup![2]), &[1]);
        assert_eq!(ix.range(&tup![1], &tup![2]).unwrap(), vec![0, 2, 1]);
        assert_eq!(ix.range(&tup![4], &tup![9]).unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn hash_has_no_range() {
        let mut ix = Index::new("ix", vec![0], IndexKind::Hash);
        ix.rebuild(&sample());
        assert!(ix.range(&tup![1], &tup![2]).is_none());
    }

    #[test]
    fn multi_column_keys() {
        let mut ix = Index::new("ix", vec![1, 0], IndexKind::Hash);
        ix.rebuild(&sample());
        assert_eq!(ix.lookup(&tup!["a", 1]), &[0]);
        assert_eq!(ix.lookup(&tup!["a", 3]), &[3]);
    }

    #[test]
    fn incremental_insert() {
        let mut ix = Index::new("ix", vec![0], IndexKind::Hash);
        ix.insert(&tup![5, "x"], 0);
        ix.insert(&tup![5, "y"], 1);
        assert_eq!(ix.lookup(&tup![5]), &[0, 1]);
    }
}
