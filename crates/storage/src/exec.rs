//! Plan executor.
//!
//! Materializing, operator-at-a-time evaluation: each node produces a full
//! [`Relation`]. This matches the paper's execution model — the generated
//! SQL is a union of conjunctive blocks evaluated by the backing DBMS — and
//! is plenty for the benchmark scales while keeping the engine auditable.

use crate::database::Database;
use crate::expr::Expr;
use crate::plan::{AggFunc, JoinType, Plan};
use proql_common::{Error, Result, Tuple, Value};
use std::collections::HashMap;

/// A materialized query result: column names plus rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    /// Output column names.
    pub names: Vec<String>,
    /// Rows, each of arity `names.len()`.
    pub rows: Vec<Tuple>,
}

impl Relation {
    /// Empty relation with the given column names.
    pub fn empty(names: Vec<String>) -> Self {
        Relation {
            names,
            rows: Vec::new(),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.names.len()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Position of a named column.
    pub fn position(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Rows sorted (for order-insensitive comparisons in tests).
    pub fn sorted_rows(&self) -> Vec<Tuple> {
        let mut r = self.rows.clone();
        r.sort();
        r
    }
}

/// Maximum view-expansion depth (views may reference views; provenance view
/// chains are shallow, so a small bound catches accidental cycles).
pub(crate) const MAX_VIEW_DEPTH: usize = 32;

/// Join algorithm of the row-at-a-time executor. The nested-loop variant is
/// the ablation baseline the batch executor is benchmarked against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinAlgo {
    /// Build a hash table on the right input (the historical default).
    #[default]
    Hash,
    /// Compare every pair of rows (O(n·m)); results are identical.
    NestedLoop,
}

/// Execute `plan` against `db`, materializing the result.
pub fn execute(db: &Database, plan: &Plan) -> Result<Relation> {
    exec_inner(db, plan, 0, JoinAlgo::Hash)
}

/// Execute with an explicit row-executor join algorithm.
pub fn execute_rows(db: &Database, plan: &Plan, algo: JoinAlgo) -> Result<Relation> {
    exec_inner(db, plan, 0, algo)
}

fn exec_inner(db: &Database, plan: &Plan, depth: usize, algo: JoinAlgo) -> Result<Relation> {
    if depth > MAX_VIEW_DEPTH {
        return Err(Error::Storage(
            "view expansion too deep (cyclic view definition?)".into(),
        ));
    }
    match plan {
        Plan::Scan { table } => {
            if let Ok(t) = db.table(table) {
                Ok(Relation {
                    names: t
                        .schema()
                        .attributes()
                        .iter()
                        .map(|a| a.name.clone())
                        .collect(),
                    rows: t.scan(),
                })
            } else if let Some(v) = db.view(table) {
                let mut rel = exec_inner(db, &v.plan, depth + 1, algo)?;
                rel.names = v
                    .schema
                    .attributes()
                    .iter()
                    .map(|a| a.name.clone())
                    .collect();
                if rel.names.len() != rel.arity() {
                    return Err(Error::Storage(format!(
                        "view {table} schema arity mismatch"
                    )));
                }
                Ok(rel)
            } else {
                Err(Error::NotFound(format!("relation {table}")))
            }
        }
        Plan::Values { schema, rows } => Ok(Relation {
            names: schema.attributes().iter().map(|a| a.name.clone()).collect(),
            rows: rows.clone(),
        }),
        Plan::Filter { input, predicate } => {
            let rel = exec_inner(db, input, depth, algo)?;
            let mut rows = Vec::new();
            for row in rel.rows {
                if predicate.eval_bool(&row)? {
                    rows.push(row);
                }
            }
            Ok(Relation {
                names: rel.names,
                rows,
            })
        }
        Plan::Project {
            input,
            exprs,
            names,
        } => {
            let rel = exec_inner(db, input, depth, algo)?;
            if names.len() != exprs.len() {
                return Err(Error::Storage("project names/exprs length mismatch".into()));
            }
            let mut rows = Vec::with_capacity(rel.rows.len());
            for row in &rel.rows {
                let mut out = Vec::with_capacity(exprs.len());
                for e in exprs {
                    out.push(e.eval(row)?);
                }
                rows.push(Tuple::new(out));
            }
            Ok(Relation {
                names: names.clone(),
                rows,
            })
        }
        Plan::Join {
            left,
            right,
            join_type,
            left_keys,
            right_keys,
            ..
        } => {
            let l = exec_inner(db, left, depth, algo)?;
            let r = exec_inner(db, right, depth, algo)?;
            exec_join(&l, &r, *join_type, left_keys, right_keys, algo)
        }
        Plan::Union { inputs, distinct } => {
            if inputs.is_empty() {
                return Ok(Relation::empty(vec![]));
            }
            let mut first = exec_inner(db, &inputs[0], depth, algo)?;
            for p in &inputs[1..] {
                let rel = exec_inner(db, p, depth, algo)?;
                if rel.arity() != first.arity() {
                    return Err(Error::Storage(format!(
                        "union arity mismatch: {} vs {}",
                        first.arity(),
                        rel.arity()
                    )));
                }
                first.rows.extend(rel.rows);
            }
            if *distinct {
                dedup(&mut first.rows);
            }
            Ok(first)
        }
        Plan::Distinct { input } => {
            let mut rel = exec_inner(db, input, depth, algo)?;
            dedup(&mut rel.rows);
            Ok(rel)
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
            having,
        } => {
            let rel = exec_inner(db, input, depth, algo)?;
            exec_aggregate(&rel, group_by, aggs, having.as_ref())
        }
        Plan::Sort { input, by } => {
            let mut rel = exec_inner(db, input, depth, algo)?;
            if let Some(&c) = by.iter().find(|&&c| c >= rel.arity()) {
                return Err(Error::Storage(format!("sort column {c} out of range")));
            }
            rel.rows.sort_by(|a, b| {
                for &c in by {
                    let ord = a.get(c).cmp(b.get(c));
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            Ok(rel)
        }
        Plan::Limit { input, n } => {
            let mut rel = exec_inner(db, input, depth, algo)?;
            rel.rows.truncate(*n);
            Ok(rel)
        }
        Plan::IndexLookup {
            table,
            columns,
            key,
            residual,
        } => {
            let t = db.table(table)?;
            if columns.len() != key.len() {
                return Err(Error::Storage(format!(
                    "index lookup on {table}: {} columns vs {} key values",
                    columns.len(),
                    key.len()
                )));
            }
            if let Some(&c) = columns.iter().find(|&&c| c >= t.schema().arity()) {
                return Err(Error::Storage(format!(
                    "index lookup column {c} out of range for {table}"
                )));
            }
            let key_t = Tuple::new(key.clone());
            let rows = match t.find_index(columns) {
                Some(ix) => {
                    // The index may store columns in a different order than
                    // the lookup; align the key with the index's order. A
                    // lookup column missing from the index is a malformed
                    // plan, reported instead of panicking the caller.
                    let mut reorder = Vec::with_capacity(ix.columns().len());
                    for c in ix.columns() {
                        let pos = columns.iter().position(|x| x == c).ok_or_else(|| {
                            Error::Storage(format!(
                                "index {} on {table} does not match lookup columns {columns:?}",
                                ix.name()
                            ))
                        })?;
                        reorder.push(pos);
                    }
                    let aligned = key_t.project(&reorder);
                    t.index_lookup(ix, &aligned)
                }
                None => {
                    // Degrade gracefully to a filtered scan.
                    t.iter()
                        .filter(|row| {
                            columns
                                .iter()
                                .zip(key.iter())
                                .all(|(&c, v)| row.get(c) == v)
                        })
                        .cloned()
                        .collect()
                }
            };
            let names = t
                .schema()
                .attributes()
                .iter()
                .map(|a| a.name.clone())
                .collect();
            let rows = match residual {
                Some(pred) => {
                    let mut kept = Vec::with_capacity(rows.len());
                    for row in rows {
                        if pred.eval_bool(&row)? {
                            kept.push(row);
                        }
                    }
                    kept
                }
                None => rows,
            };
            Ok(Relation { names, rows })
        }
    }
}

fn dedup(rows: &mut Vec<Tuple>) {
    let mut seen = std::collections::HashSet::with_capacity(rows.len());
    rows.retain(|r| seen.insert(r.clone()));
}

fn null_padding(n: usize) -> Tuple {
    Tuple::new(vec![Value::Null; n])
}

/// Output column names of a join: left names, then right names with
/// duplicates disambiguated by `_N` suffixes. Shared with the batch
/// executor so both paths report identical schemas.
pub(crate) fn join_names(left: &[String], right: &[String]) -> Vec<String> {
    let mut names = left.to_vec();
    for n in right {
        if names.iter().any(|x| x == n) {
            let mut i = 1;
            loop {
                let cand = format!("{n}_{i}");
                if !names.contains(&cand) {
                    names.push(cand);
                    break;
                }
                i += 1;
            }
        } else {
            names.push(n.clone());
        }
    }
    names
}

fn exec_join(
    l: &Relation,
    r: &Relation,
    join_type: JoinType,
    left_keys: &[usize],
    right_keys: &[usize],
    algo: JoinAlgo,
) -> Result<Relation> {
    if left_keys.len() != right_keys.len() {
        return Err(Error::Storage("join key arity mismatch".into()));
    }
    // Malformed plans must surface as errors, not index panics: key
    // columns are validated against both inputs up front.
    if let Some(&k) = left_keys.iter().find(|&&k| k >= l.arity()) {
        return Err(Error::Storage(format!("left join key {k} out of range")));
    }
    if let Some(&k) = right_keys.iter().find(|&&k| k >= r.arity()) {
        return Err(Error::Storage(format!("right join key {k} out of range")));
    }
    let names = join_names(&l.names, &r.names);

    let mut matched_right = vec![false; r.rows.len()];
    let mut rows = Vec::new();
    match algo {
        JoinAlgo::Hash => {
            // Build hash table on the right side.
            let mut table: HashMap<Tuple, Vec<usize>> = HashMap::with_capacity(r.rows.len());
            for (i, row) in r.rows.iter().enumerate() {
                let key = row.project(right_keys);
                if key.has_null() {
                    continue; // SQL semantics: NULL keys never match.
                }
                table.entry(key).or_default().push(i);
            }
            for lrow in &l.rows {
                let key = lrow.project(left_keys);
                let matches = if key.has_null() {
                    None
                } else {
                    table.get(&key)
                };
                match matches {
                    Some(idxs) => {
                        for &i in idxs {
                            matched_right[i] = true;
                            rows.push(lrow.concat(&r.rows[i]));
                        }
                    }
                    None => {
                        if matches!(join_type, JoinType::LeftOuter | JoinType::FullOuter) {
                            rows.push(lrow.concat(&null_padding(r.arity())));
                        }
                    }
                }
            }
        }
        JoinAlgo::NestedLoop => {
            // The ablation baseline: compare every pair of rows.
            for lrow in &l.rows {
                let lkey = lrow.project(left_keys);
                let mut any = false;
                if !lkey.has_null() {
                    for (i, rrow) in r.rows.iter().enumerate() {
                        let rkey = rrow.project(right_keys);
                        if !rkey.has_null() && lkey == rkey {
                            any = true;
                            matched_right[i] = true;
                            rows.push(lrow.concat(rrow));
                        }
                    }
                }
                if !any && matches!(join_type, JoinType::LeftOuter | JoinType::FullOuter) {
                    rows.push(lrow.concat(&null_padding(r.arity())));
                }
            }
        }
    }
    if matches!(join_type, JoinType::RightOuter | JoinType::FullOuter) {
        let pad = null_padding(l.arity());
        for (i, rrow) in r.rows.iter().enumerate() {
            if !matched_right[i] {
                rows.push(pad.concat(rrow));
            }
        }
    }
    Ok(Relation { names, rows })
}

fn exec_aggregate(
    rel: &Relation,
    group_by: &[usize],
    aggs: &[crate::plan::Aggregate],
    having: Option<&Expr>,
) -> Result<Relation> {
    if let Some(&c) = group_by.iter().find(|&&c| c >= rel.arity()) {
        return Err(Error::Storage(format!("group column {c} out of range")));
    }
    if let Some(c) = aggs
        .iter()
        .filter_map(|a| a.func.input_column())
        .find(|&c| c >= rel.arity())
    {
        return Err(Error::Storage(format!(
            "aggregate input column {c} out of range"
        )));
    }
    // Group rows preserving first-seen order.
    let mut order: Vec<Tuple> = Vec::new();
    let mut groups: HashMap<Tuple, Vec<usize>> = HashMap::new();
    for (i, row) in rel.rows.iter().enumerate() {
        let key = row.project(group_by);
        if !groups.contains_key(&key) {
            order.push(key.clone());
        }
        groups.entry(key).or_default().push(i);
    }
    // Global aggregate over empty input still yields one row.
    if group_by.is_empty() && rel.rows.is_empty() {
        order.push(Tuple::empty());
        groups.insert(Tuple::empty(), vec![]);
    }

    let mut names: Vec<String> = group_by
        .iter()
        .map(|&c| rel.names.get(c).cloned().unwrap_or_else(|| format!("c{c}")))
        .collect();
    names.extend(aggs.iter().map(|a| a.name.clone()));

    let mut rows = Vec::with_capacity(order.len());
    for key in order {
        let members = &groups[&key];
        let mut out: Vec<Value> = key.values().to_vec();
        for agg in aggs {
            out.push(fold_agg(agg.func, members, &rel.rows)?);
        }
        let row = Tuple::new(out);
        match having {
            Some(pred) if !pred.eval_bool(&row)? => {}
            _ => rows.push(row),
        }
    }
    Ok(Relation { names, rows })
}

fn fold_agg(func: AggFunc, members: &[usize], rows: &[Tuple]) -> Result<Value> {
    match func {
        AggFunc::Count => Ok(Value::Int(members.len() as i64)),
        AggFunc::Sum(c) => {
            let mut int_sum: i64 = 0;
            let mut float_sum: f64 = 0.0;
            let mut any_float = false;
            let mut any = false;
            for &i in members {
                match rows[i].get(c) {
                    Value::Int(v) => {
                        // Checked: both executors surface integer SUM
                        // overflow as Error::Overflow instead of wrapping.
                        int_sum = int_sum.checked_add(*v).ok_or_else(|| {
                            Error::Overflow(
                                "integer SUM overflowed i64 (derivation counts too large?)".into(),
                            )
                        })?;
                        any = true;
                    }
                    Value::Float(v) => {
                        float_sum += v;
                        any_float = true;
                        any = true;
                    }
                    Value::Null => {}
                    other => return Err(Error::Storage(format!("SUM over non-numeric {other}"))),
                }
            }
            if !any {
                Ok(Value::Null)
            } else if any_float {
                Ok(Value::Float(float_sum + int_sum as f64))
            } else {
                Ok(Value::Int(int_sum))
            }
        }
        AggFunc::Min(c) | AggFunc::Max(c) => {
            let mut best: Option<Value> = None;
            for &i in members {
                let v = rows[i].get(c);
                if v.is_null() {
                    continue;
                }
                best = Some(match best {
                    None => v.clone(),
                    Some(b) => {
                        let keep_new = match func {
                            AggFunc::Min(_) => *v < b,
                            _ => *v > b,
                        };
                        if keep_new {
                            v.clone()
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Value::Null))
        }
        AggFunc::BoolOr(c) | AggFunc::BoolAnd(c) => {
            let mut acc: Option<bool> = None;
            for &i in members {
                match rows[i].get(c) {
                    Value::Bool(b) => {
                        acc = Some(match (acc, func) {
                            (None, _) => *b,
                            (Some(a), AggFunc::BoolOr(_)) => a || *b,
                            (Some(a), _) => a && *b,
                        });
                    }
                    Value::Null => {}
                    other => {
                        return Err(Error::Storage(format!(
                            "boolean aggregate over non-boolean {other}"
                        )))
                    }
                }
            }
            Ok(acc.map(Value::Bool).unwrap_or(Value::Null))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Aggregate;
    use proql_common::{tup, Schema, ValueType};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            Schema::build(
                "A",
                &[
                    ("id", ValueType::Int),
                    ("sn", ValueType::Str),
                    ("len", ValueType::Int),
                ],
                &[0],
            )
            .unwrap(),
        )
        .unwrap();
        db.create_table(
            Schema::build(
                "C",
                &[("id", ValueType::Int), ("name", ValueType::Str)],
                &[0, 1],
            )
            .unwrap(),
        )
        .unwrap();
        db.insert("A", tup![1, "sn1", 7]).unwrap();
        db.insert("A", tup![2, "sn1", 5]).unwrap();
        db.insert("C", tup![2, "cn2"]).unwrap();
        db.insert("C", tup![3, "cn3"]).unwrap();
        db
    }

    #[test]
    fn scan_and_filter() {
        let db = db();
        let rel = execute(&db, &Plan::scan("A").filter(Expr::col(2).eq(Expr::lit(5)))).unwrap();
        assert_eq!(rel.rows, vec![tup![2, "sn1", 5]]);
        assert_eq!(rel.names, vec!["id", "sn", "len"]);
    }

    #[test]
    fn project_computes_expressions() {
        let db = db();
        let rel = execute(
            &db,
            &Plan::scan("A").project(vec![
                Expr::col(0),
                Expr::cmp(crate::expr::BinOp::Add, Expr::col(2), Expr::lit(1)),
            ]),
        )
        .unwrap();
        assert_eq!(rel.sorted_rows(), vec![tup![1, 8], tup![2, 6]]);
    }

    #[test]
    fn inner_join() {
        let db = db();
        let rel = execute(
            &db,
            &Plan::scan("A").join(Plan::scan("C"), vec![0], vec![0]),
        )
        .unwrap();
        assert_eq!(rel.rows, vec![tup![2, "sn1", 5, 2, "cn2"]]);
        // Right-side duplicate column name is disambiguated.
        assert_eq!(rel.names, vec!["id", "sn", "len", "id_1", "name"]);
    }

    #[test]
    fn left_outer_join_pads_nulls() {
        let db = db();
        let rel = execute(
            &db,
            &Plan::scan("A").join_as(Plan::scan("C"), JoinType::LeftOuter, vec![0], vec![0]),
        )
        .unwrap();
        assert_eq!(rel.len(), 2);
        let unmatched: Vec<_> = rel.rows.iter().filter(|r| r.get(3).is_null()).collect();
        assert_eq!(unmatched.len(), 1);
        assert_eq!(unmatched[0].get(0), &Value::Int(1));
    }

    #[test]
    fn full_outer_join_keeps_both_sides() {
        let db = db();
        let rel = execute(
            &db,
            &Plan::scan("A").join_as(Plan::scan("C"), JoinType::FullOuter, vec![0], vec![0]),
        )
        .unwrap();
        // match (2), left-only (1), right-only (3)
        assert_eq!(rel.len(), 3);
    }

    #[test]
    fn right_outer_join() {
        let db = db();
        let rel = execute(
            &db,
            &Plan::scan("A").join_as(Plan::scan("C"), JoinType::RightOuter, vec![0], vec![0]),
        )
        .unwrap();
        assert_eq!(rel.len(), 2);
        let right_only: Vec<_> = rel.rows.iter().filter(|r| r.get(0).is_null()).collect();
        assert_eq!(right_only.len(), 1);
        assert_eq!(right_only[0].get(4), &Value::str("cn3"));
    }

    #[test]
    fn null_join_keys_do_not_match() {
        let mut db = Database::new();
        db.create_table(Schema::build("L", &[("k", ValueType::Int)], &[]).unwrap())
            .unwrap();
        db.create_table(Schema::build("R", &[("k", ValueType::Int)], &[]).unwrap())
            .unwrap();
        db.table_mut("L")
            .unwrap()
            .insert(Tuple::new(vec![Value::Null]))
            .unwrap();
        db.table_mut("R")
            .unwrap()
            .insert(Tuple::new(vec![Value::Null]))
            .unwrap();
        let inner = execute(
            &db,
            &Plan::scan("L").join(Plan::scan("R"), vec![0], vec![0]),
        )
        .unwrap();
        assert!(inner.is_empty());
        let full = execute(
            &db,
            &Plan::scan("L").join_as(Plan::scan("R"), JoinType::FullOuter, vec![0], vec![0]),
        )
        .unwrap();
        assert_eq!(full.len(), 2);
    }

    #[test]
    fn union_all_and_distinct() {
        let db = db();
        let p = Plan::Union {
            inputs: vec![
                Plan::scan("A").project(vec![Expr::col(0)]),
                Plan::scan("C").project(vec![Expr::col(0)]),
            ],
            distinct: false,
        };
        let rel = execute(&db, &p).unwrap();
        assert_eq!(rel.len(), 4);
        let p2 = Plan::Union {
            inputs: match p {
                Plan::Union { inputs, .. } => inputs,
                _ => unreachable!(),
            },
            distinct: true,
        };
        let rel2 = execute(&db, &p2).unwrap();
        assert_eq!(rel2.sorted_rows(), vec![tup![1], tup![2], tup![3]]);
    }

    #[test]
    fn union_arity_mismatch_errors() {
        let db = db();
        let p = Plan::union_all(vec![Plan::scan("A"), Plan::scan("C")]);
        assert!(execute(&db, &p).is_err());
    }

    #[test]
    fn aggregate_group_by_having() {
        let db = db();
        // GROUP BY sn: count + sum(len), HAVING sum >= 12
        let p = Plan::Aggregate {
            input: Box::new(Plan::scan("A")),
            group_by: vec![1],
            aggs: vec![
                Aggregate::new(AggFunc::Count, "n"),
                Aggregate::new(AggFunc::Sum(2), "total"),
            ],
            having: Some(Expr::cmp(
                crate::expr::BinOp::Ge,
                Expr::col(2),
                Expr::lit(12),
            )),
        };
        let rel = execute(&db, &p).unwrap();
        assert_eq!(rel.rows, vec![tup!["sn1", 2, 12]]);
        assert_eq!(rel.names, vec!["sn", "n", "total"]);
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let db = db();
        let p = Plan::Aggregate {
            input: Box::new(Plan::scan("A").filter(Expr::lit(false))),
            group_by: vec![],
            aggs: vec![
                Aggregate::new(AggFunc::Count, "n"),
                Aggregate::new(AggFunc::Sum(2), "s"),
                Aggregate::new(AggFunc::Min(2), "m"),
            ],
            having: None,
        };
        let rel = execute(&db, &p).unwrap();
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.rows[0].get(0), &Value::Int(0));
        assert!(rel.rows[0].get(1).is_null());
        assert!(rel.rows[0].get(2).is_null());
    }

    #[test]
    fn min_max_bool_aggregates() {
        let db = db();
        let p = Plan::Aggregate {
            input: Box::new(Plan::scan("A")),
            group_by: vec![1],
            aggs: vec![
                Aggregate::new(AggFunc::Min(2), "lo"),
                Aggregate::new(AggFunc::Max(2), "hi"),
            ],
            having: None,
        };
        let rel = execute(&db, &p).unwrap();
        assert_eq!(rel.rows, vec![tup!["sn1", 5, 7]]);
    }

    #[test]
    fn sort_and_limit() {
        let db = db();
        let p = Plan::Sort {
            input: Box::new(Plan::scan("A")),
            by: vec![2],
        };
        let rel = execute(&db, &p).unwrap();
        assert_eq!(rel.rows[0].get(2), &Value::Int(5));
        let p = Plan::Limit {
            input: Box::new(p),
            n: 1,
        };
        assert_eq!(execute(&db, &p).unwrap().len(), 1);
    }

    #[test]
    fn views_execute_their_plan() {
        let mut db = db();
        let schema = Schema::build("V", &[("id", ValueType::Int)], &[]).unwrap();
        db.create_view("V", Plan::scan("A").project(vec![Expr::col(0)]), schema)
            .unwrap();
        let rel = execute(&db, &Plan::scan("V")).unwrap();
        assert_eq!(rel.sorted_rows(), vec![tup![1], tup![2]]);
        assert_eq!(rel.names, vec!["id"]);
    }

    #[test]
    fn cyclic_views_are_detected() {
        let mut db = Database::new();
        let schema = Schema::build("V", &[("id", ValueType::Int)], &[]).unwrap();
        db.create_view("V", Plan::scan("W"), schema.clone())
            .unwrap();
        db.create_view("W", Plan::scan("V"), schema).unwrap();
        assert!(execute(&db, &Plan::scan("V")).is_err());
    }

    #[test]
    fn index_lookup_with_and_without_index() {
        let mut db = db();
        let p = Plan::IndexLookup {
            table: "A".into(),
            columns: vec![1],
            key: vec![Value::str("sn1")],
            residual: None,
        };
        // No index: falls back to scan+filter.
        assert_eq!(execute(&db, &p).unwrap().len(), 2);
        db.table_mut("A")
            .unwrap()
            .create_index("by_sn", vec![1], crate::index::IndexKind::Hash)
            .unwrap();
        assert_eq!(execute(&db, &p).unwrap().len(), 2);
        // Residual predicate filters further.
        let p2 = Plan::IndexLookup {
            table: "A".into(),
            columns: vec![1],
            key: vec![Value::str("sn1")],
            residual: Some(Expr::col(2).eq(Expr::lit(7))),
        };
        assert_eq!(execute(&db, &p2).unwrap().len(), 1);
    }

    #[test]
    fn values_plan() {
        let db = Database::new();
        let p = Plan::Values {
            schema: crate::plan::anon_schema("v", &["x".into()]),
            rows: vec![tup![1], tup![2]],
        };
        assert_eq!(execute(&db, &p).unwrap().len(), 2);
    }
}
