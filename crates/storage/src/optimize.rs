//! A small rule-based optimizer.
//!
//! The paper relies on the backing DBMS to perform "goal-directed
//! computation such that we only evaluate provenance for the selected
//! tuples … intuitively, this resembles pushing selections through joins"
//! (§4.2). This module implements that: selection pushdown through
//! projections/joins/unions and conversion of `Filter(Scan)` with
//! equality bindings into [`Plan::IndexLookup`].

use crate::database::Database;
use crate::expr::Expr;
use crate::plan::{BuildSide, JoinType, Plan};
use proql_common::Value;

/// Optimize a plan: push filters down and use indexes where possible.
pub fn optimize(plan: Plan) -> Plan {
    let pushed = push_filters(plan);
    index_scans(pushed)
}

/// [`optimize`] plus catalog-aware passes: hash-join build sides are picked
/// from estimated input cardinalities (build on the smaller input). The
/// batch executor honors the hint; `Auto` falls back to its runtime choice.
pub fn optimize_with(db: &Database, plan: Plan) -> Plan {
    pick_build_sides(db, optimize(plan))
}

/// Estimated output rows of a plan, from catalog sizes. Heuristic, only
/// used to order performance-neutral choices — never for correctness.
pub fn estimate_rows(db: &Database, plan: &Plan) -> usize {
    estimate_rows_inner(db, plan, 0)
}

fn estimate_rows_inner(db: &Database, plan: &Plan, depth: usize) -> usize {
    // Views may reference views; a cyclic definition (which the executors
    // reject with an error) must not overflow the estimator's stack.
    if depth > crate::exec::MAX_VIEW_DEPTH {
        return 0;
    }
    match plan {
        Plan::Scan { table } => {
            if let Ok(t) = db.table(table) {
                t.len()
            } else if let Some(v) = db.view(table) {
                estimate_rows_inner(db, &v.plan, depth + 1)
            } else {
                0
            }
        }
        Plan::Values { rows, .. } => rows.len(),
        // Selections are assumed to keep a third of their input.
        Plan::Filter { input, .. } => estimate_rows_inner(db, input, depth).div_ceil(3),
        Plan::IndexLookup { table, .. } => {
            // An equality lookup on a key-like column returns few rows.
            db.table(table).map(|t| t.len().div_ceil(8)).unwrap_or(0)
        }
        Plan::Project { input, .. } | Plan::Distinct { input } | Plan::Sort { input, .. } => {
            estimate_rows_inner(db, input, depth)
        }
        Plan::Limit { input, n } => estimate_rows_inner(db, input, depth).min(*n),
        // Equi-joins on provenance chains are roughly foreign-key shaped:
        // output near the larger input.
        Plan::Join { left, right, .. } => {
            estimate_rows_inner(db, left, depth).max(estimate_rows_inner(db, right, depth))
        }
        Plan::Union { inputs, .. } => inputs
            .iter()
            .map(|p| estimate_rows_inner(db, p, depth))
            .sum(),
        Plan::Aggregate {
            input, group_by, ..
        } => {
            let n = estimate_rows_inner(db, input, depth);
            if group_by.is_empty() {
                1
            } else {
                n.div_ceil(2)
            }
        }
    }
}

/// Set each hash join's build side to its (estimated) smaller input.
fn pick_build_sides(db: &Database, plan: Plan) -> Plan {
    match plan {
        Plan::Join {
            left,
            right,
            join_type,
            left_keys,
            right_keys,
            build,
        } => {
            let left = Box::new(pick_build_sides(db, *left));
            let right = Box::new(pick_build_sides(db, *right));
            let build = if build == BuildSide::Auto {
                if estimate_rows(db, &left) < estimate_rows(db, &right) {
                    BuildSide::Left
                } else {
                    BuildSide::Right
                }
            } else {
                build
            };
            Plan::Join {
                left,
                right,
                join_type,
                left_keys,
                right_keys,
                build,
            }
        }
        Plan::Filter { input, predicate } => Plan::Filter {
            input: Box::new(pick_build_sides(db, *input)),
            predicate,
        },
        Plan::Project {
            input,
            exprs,
            names,
        } => Plan::Project {
            input: Box::new(pick_build_sides(db, *input)),
            exprs,
            names,
        },
        Plan::Union { inputs, distinct } => Plan::Union {
            inputs: inputs
                .into_iter()
                .map(|p| pick_build_sides(db, p))
                .collect(),
            distinct,
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(pick_build_sides(db, *input)),
        },
        Plan::Aggregate {
            input,
            group_by,
            aggs,
            having,
        } => Plan::Aggregate {
            input: Box::new(pick_build_sides(db, *input)),
            group_by,
            aggs,
            having,
        },
        Plan::Sort { input, by } => Plan::Sort {
            input: Box::new(pick_build_sides(db, *input)),
            by,
        },
        Plan::Limit { input, n } => Plan::Limit {
            input: Box::new(pick_build_sides(db, *input)),
            n,
        },
        leaf => leaf,
    }
}

/// Split a predicate into conjuncts.
fn conjuncts(pred: Expr) -> Vec<Expr> {
    match pred {
        Expr::And(ps) => ps.into_iter().flat_map(conjuncts).collect(),
        p => vec![p],
    }
}

/// Recombine conjuncts.
fn recombine(mut preds: Vec<Expr>) -> Option<Expr> {
    match preds.len() {
        0 => None,
        1 => Some(preds.pop().unwrap()),
        _ => Some(Expr::And(preds)),
    }
}

fn push_filters(plan: Plan) -> Plan {
    match plan {
        Plan::Filter { input, predicate } => {
            let input = push_filters(*input);
            push_pred_into(input, predicate)
        }
        Plan::Project {
            input,
            exprs,
            names,
        } => Plan::Project {
            input: Box::new(push_filters(*input)),
            exprs,
            names,
        },
        Plan::Join {
            left,
            right,
            join_type,
            left_keys,
            right_keys,
            build,
        } => Plan::Join {
            left: Box::new(push_filters(*left)),
            right: Box::new(push_filters(*right)),
            join_type,
            left_keys,
            right_keys,
            build,
        },
        Plan::Union { inputs, distinct } => Plan::Union {
            inputs: inputs.into_iter().map(push_filters).collect(),
            distinct,
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(push_filters(*input)),
        },
        Plan::Aggregate {
            input,
            group_by,
            aggs,
            having,
        } => Plan::Aggregate {
            input: Box::new(push_filters(*input)),
            group_by,
            aggs,
            having,
        },
        Plan::Sort { input, by } => Plan::Sort {
            input: Box::new(push_filters(*input)),
            by,
        },
        Plan::Limit { input, n } => Plan::Limit {
            input: Box::new(push_filters(*input)),
            n,
        },
        leaf => leaf,
    }
}

/// Push `predicate` as deep as possible into `input`.
fn push_pred_into(input: Plan, predicate: Expr) -> Plan {
    match input {
        // Filter(Filter(x)) -> Filter(x) with merged predicate.
        Plan::Filter {
            input: inner,
            predicate: p2,
        } => {
            let merged = Expr::and(vec![p2, predicate]);
            push_pred_into(*inner, merged)
        }
        // Push through a union into every branch.
        Plan::Union { inputs, distinct } => Plan::Union {
            inputs: inputs
                .into_iter()
                .map(|p| push_pred_into(p, predicate.clone()))
                .collect(),
            distinct,
        },
        // Push each conjunct into the join side it references, when the
        // join is inner (outer joins change semantics under pushdown).
        Plan::Join {
            left,
            right,
            join_type: JoinType::Inner,
            left_keys,
            right_keys,
            build,
        } => {
            let left_arity = plan_arity_hint(&left);
            let mut left_preds = Vec::new();
            let mut right_preds = Vec::new();
            let mut keep = Vec::new();
            for c in conjuncts(predicate) {
                match (c.max_col(), left_arity) {
                    (Some(max), Some(la)) if max < la => left_preds.push(c),
                    (Some(_), Some(la)) => {
                        // References right side only if *all* cols >= la.
                        if min_col(&c).map(|m| m >= la).unwrap_or(false) {
                            right_preds.push(shift_down(&c, la));
                        } else {
                            keep.push(c);
                        }
                    }
                    (None, _) => keep.push(c), // constant predicate: keep on top
                    _ => keep.push(c),
                }
            }
            let mut new_left = *left;
            if let Some(p) = recombine(left_preds) {
                new_left = push_pred_into(new_left, p);
            }
            let mut new_right = *right;
            if let Some(p) = recombine(right_preds) {
                new_right = push_pred_into(new_right, p);
            }
            let joined = Plan::Join {
                left: Box::new(new_left),
                right: Box::new(new_right),
                join_type: JoinType::Inner,
                left_keys,
                right_keys,
                build,
            };
            match recombine(keep) {
                Some(p) => Plan::Filter {
                    input: Box::new(joined),
                    predicate: p,
                },
                None => joined,
            }
        }
        other => Plan::Filter {
            input: Box::new(other),
            predicate,
        },
    }
}

/// Smallest column index referenced by the expression.
fn min_col(e: &Expr) -> Option<usize> {
    match e {
        Expr::Col(i) => Some(*i),
        Expr::Lit(_) => None,
        Expr::Bin(_, a, b) => match (min_col(a), min_col(b)) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (x, y) => x.or(y),
        },
        Expr::And(ps) | Expr::Or(ps) => ps.iter().filter_map(min_col).min(),
        Expr::Not(p) | Expr::IsNull(p) => min_col(p),
    }
}

/// Shift all columns down by `delta` (inverse of `shift_cols`).
fn shift_down(e: &Expr, delta: usize) -> Expr {
    match e {
        Expr::Col(i) => Expr::Col(i - delta),
        Expr::Lit(v) => Expr::Lit(v.clone()),
        Expr::Bin(op, a, b) => Expr::Bin(
            *op,
            Box::new(shift_down(a, delta)),
            Box::new(shift_down(b, delta)),
        ),
        Expr::And(ps) => Expr::And(ps.iter().map(|p| shift_down(p, delta)).collect()),
        Expr::Or(ps) => Expr::Or(ps.iter().map(|p| shift_down(p, delta)).collect()),
        Expr::Not(p) => Expr::Not(Box::new(shift_down(p, delta))),
        Expr::IsNull(p) => Expr::IsNull(Box::new(shift_down(p, delta))),
    }
}

/// Static arity of a plan, when derivable without a catalog. Scans have
/// unknown arity (None): pushdown through joins over bare scans is skipped,
/// which is conservative but safe. Projects and Values fix the arity.
fn plan_arity_hint(plan: &Plan) -> Option<usize> {
    match plan {
        Plan::Project { exprs, .. } => Some(exprs.len()),
        Plan::Values { schema, .. } => Some(schema.arity()),
        Plan::Filter { input, .. }
        | Plan::Distinct { input }
        | Plan::Sort { input, .. }
        | Plan::Limit { input, .. } => plan_arity_hint(input),
        Plan::Union { inputs, .. } => inputs.first().and_then(plan_arity_hint),
        Plan::Join { left, right, .. } => Some(plan_arity_hint(left)? + plan_arity_hint(right)?),
        Plan::Aggregate { group_by, aggs, .. } => Some(group_by.len() + aggs.len()),
        Plan::Scan { .. } | Plan::IndexLookup { .. } => None,
    }
}

/// Rewrite `Filter(Scan)` into `IndexLookup` when every equality-bound
/// column set could be served by an index (the executor falls back to a
/// filtered scan when no physical index exists, so this is always safe).
fn index_scans(plan: Plan) -> Plan {
    match plan {
        Plan::Filter { input, predicate } => {
            if let Plan::Scan { table } = input.as_ref() {
                let bindings = predicate.equality_bindings();
                if !bindings.is_empty() {
                    let columns: Vec<usize> = bindings.iter().map(|(c, _)| *c).collect();
                    let key: Vec<Value> = bindings.iter().map(|(_, v)| v.clone()).collect();
                    // Anything that is not a bare col=lit conjunct stays as a
                    // residual predicate.
                    let residual = residual_of(&predicate);
                    return Plan::IndexLookup {
                        table: table.clone(),
                        columns,
                        key,
                        residual,
                    };
                }
            }
            Plan::Filter {
                input: Box::new(index_scans(*input)),
                predicate,
            }
        }
        Plan::Project {
            input,
            exprs,
            names,
        } => Plan::Project {
            input: Box::new(index_scans(*input)),
            exprs,
            names,
        },
        Plan::Join {
            left,
            right,
            join_type,
            left_keys,
            right_keys,
            build,
        } => Plan::Join {
            left: Box::new(index_scans(*left)),
            right: Box::new(index_scans(*right)),
            join_type,
            left_keys,
            right_keys,
            build,
        },
        Plan::Union { inputs, distinct } => Plan::Union {
            inputs: inputs.into_iter().map(index_scans).collect(),
            distinct,
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(index_scans(*input)),
        },
        Plan::Aggregate {
            input,
            group_by,
            aggs,
            having,
        } => Plan::Aggregate {
            input: Box::new(index_scans(*input)),
            group_by,
            aggs,
            having,
        },
        Plan::Sort { input, by } => Plan::Sort {
            input: Box::new(index_scans(*input)),
            by,
        },
        Plan::Limit { input, n } => Plan::Limit {
            input: Box::new(index_scans(*input)),
            n,
        },
        leaf => leaf,
    }
}

/// The conjuncts of `pred` that are *not* simple `col = literal` bindings.
fn residual_of(pred: &Expr) -> Option<Expr> {
    let parts: Vec<Expr> = match pred {
        Expr::And(ps) => ps.clone(),
        p => vec![p.clone()],
    };
    let residual: Vec<Expr> = parts
        .into_iter()
        .filter(|p| !is_simple_binding(p))
        .collect();
    recombine(residual)
}

fn is_simple_binding(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Bin(crate::expr::BinOp::Eq, a, b)
            if matches!((a.as_ref(), b.as_ref()),
                (Expr::Col(_), Expr::Lit(_)) | (Expr::Lit(_), Expr::Col(_)))
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::exec::execute;
    use crate::expr::BinOp;
    use proql_common::{tup, Schema, ValueType};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            Schema::build("T", &[("a", ValueType::Int), ("b", ValueType::Int)], &[0]).unwrap(),
        )
        .unwrap();
        for i in 0..10 {
            db.insert("T", tup![i, i * 10]).unwrap();
        }
        db
    }

    #[test]
    fn filter_scan_becomes_index_lookup() {
        let p = Plan::scan("T").filter(Expr::col(0).eq(Expr::lit(3)));
        let opt = optimize(p);
        match &opt {
            Plan::IndexLookup {
                table,
                columns,
                key,
                residual,
            } => {
                assert_eq!(table, "T");
                assert_eq!(columns, &[0]);
                assert_eq!(key, &[Value::Int(3)]);
                assert!(residual.is_none());
            }
            other => panic!("expected IndexLookup, got {other:?}"),
        }
        assert_eq!(execute(&db(), &opt).unwrap().rows, vec![tup![3, 30]]);
    }

    #[test]
    fn residual_predicate_preserved() {
        let p = Plan::scan("T").filter(Expr::And(vec![
            Expr::col(0).eq(Expr::lit(3)),
            Expr::cmp(BinOp::Gt, Expr::col(1), Expr::lit(100)),
        ]));
        let opt = optimize(p);
        match &opt {
            Plan::IndexLookup { residual, .. } => assert!(residual.is_some()),
            other => panic!("expected IndexLookup, got {other:?}"),
        }
        assert!(execute(&db(), &opt).unwrap().is_empty());
    }

    #[test]
    fn stacked_filters_merge() {
        let p = Plan::scan("T")
            .filter(Expr::col(0).eq(Expr::lit(3)))
            .filter(Expr::cmp(BinOp::Lt, Expr::col(1), Expr::lit(100)));
        let opt = optimize(p.clone());
        // Optimized and unoptimized agree.
        assert_eq!(
            execute(&db(), &opt).unwrap().sorted_rows(),
            execute(&db(), &p).unwrap().sorted_rows()
        );
    }

    #[test]
    fn pushdown_through_union() {
        let p = Plan::Union {
            inputs: vec![Plan::scan("T"), Plan::scan("T")],
            distinct: false,
        }
        .filter(Expr::col(0).eq(Expr::lit(1)));
        let opt = optimize(p.clone());
        // Both branches now index lookups under the union.
        match &opt {
            Plan::Union { inputs, .. } => {
                assert!(matches!(inputs[0], Plan::IndexLookup { .. }));
                assert!(matches!(inputs[1], Plan::IndexLookup { .. }));
            }
            other => panic!("expected Union, got {other:?}"),
        }
        assert_eq!(
            execute(&db(), &opt).unwrap().sorted_rows(),
            execute(&db(), &p).unwrap().sorted_rows()
        );
    }

    #[test]
    fn pushdown_through_projected_join_sides() {
        // Join of two projections (arity known), filter references left col.
        let left = Plan::scan("T").project(vec![Expr::col(0), Expr::col(1)]);
        let right = Plan::scan("T").project(vec![Expr::col(0)]);
        let p = left
            .join(right, vec![0], vec![0])
            .filter(Expr::col(2).eq(Expr::lit(5)));
        let opt = optimize(p.clone());
        assert_eq!(
            execute(&db(), &opt).unwrap().sorted_rows(),
            execute(&db(), &p).unwrap().sorted_rows()
        );
    }

    #[test]
    fn outer_join_filters_not_pushed() {
        let p = Plan::scan("T")
            .join_as(Plan::scan("T"), JoinType::LeftOuter, vec![0], vec![0])
            .filter(Expr::IsNull(Box::new(Expr::col(2))));
        let opt = optimize(p.clone());
        assert_eq!(
            execute(&db(), &opt).unwrap().sorted_rows(),
            execute(&db(), &p).unwrap().sorted_rows()
        );
    }

    #[test]
    fn build_side_picked_from_estimates() {
        let mut db = db(); // T has 10 rows
        db.create_table(
            proql_common::Schema::build("Small", &[("a", proql_common::ValueType::Int)], &[0])
                .unwrap(),
        )
        .unwrap();
        db.insert("Small", proql_common::tup![1]).unwrap();
        let opt = optimize_with(
            &db,
            Plan::scan("Small").join(Plan::scan("T"), vec![0], vec![0]),
        );
        match opt {
            Plan::Join { build, .. } => assert_eq!(build, BuildSide::Left),
            other => panic!("expected Join, got {other:?}"),
        }
        let opt = optimize_with(
            &db,
            Plan::scan("T").join(Plan::scan("Small"), vec![0], vec![0]),
        );
        match opt {
            Plan::Join { build, .. } => assert_eq!(build, BuildSide::Right),
            other => panic!("expected Join, got {other:?}"),
        }
    }

    #[test]
    fn estimator_survives_cyclic_views() {
        // The executors reject cyclic views with an error; the estimator
        // must not stack-overflow on them either.
        let mut db = db();
        let schema =
            proql_common::Schema::build("V", &[("id", proql_common::ValueType::Int)], &[]).unwrap();
        db.create_view("V", Plan::scan("W"), schema.clone())
            .unwrap();
        db.create_view("W", Plan::scan("V"), schema).unwrap();
        let plan = Plan::scan("V").join(Plan::scan("T"), vec![0], vec![0]);
        let opt = optimize_with(&db, plan);
        assert!(matches!(opt, Plan::Join { .. }));
        assert_eq!(estimate_rows(&db, &Plan::scan("V")), 0);
    }
}
