//! The cost-based optimizer: an ordered pipeline of plan-rewrite passes.
//!
//! The paper relies on the backing DBMS for "goal-directed computation such
//! that we only evaluate provenance for the selected tuples … intuitively,
//! this resembles pushing selections through joins" (§4.2). This module is
//! that DBMS layer: a multi-pass framework
//!
//! 1. **Filter pushdown** — selections move through projections, unions,
//!    and inner joins down to the scans they constrain.
//! 2. **Index conversion** — `Filter(Scan)` with equality bindings becomes
//!    [`Plan::IndexLookup`] (executors fall back to a filtered scan when no
//!    physical index exists, so the rewrite is always safe).
//! 3. **Cost-based join reordering** — maximal chains of inner equi-joins
//!    are flattened, re-ordered greedily by estimated intermediate
//!    cardinality (the cardinality model below), rebuilt left-deep, and
//!    wrapped in a projection restoring the original column order, so the
//!    rewrite is invisible to every consumer.
//! 4. **Build-side selection** — each hash join builds on its estimated
//!    smaller input.
//!
//! Cardinalities come from the **statistics subsystem**
//! ([`crate::stats`]): per-table live row counts and per-column NDV/min-max
//! maintained incrementally on every insert/delete. Estimates order
//! performance-neutral choices only — they never affect correctness, which
//! is what makes cached plans safe to reuse across data changes.

use crate::database::Database;
use crate::expr::{BinOp, Expr};
use crate::plan::{BuildSide, JoinType, Plan};
use proql_common::Value;

/// One optimizer pass. [`OptimizerConfig`] orders them; benchmarks ablate
/// individual passes (e.g. `plan_bench` measures join reordering alone).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// Push selections through projections, unions, and inner joins.
    PushFilters,
    /// Convert `Filter(Scan)` equality bindings into [`Plan::IndexLookup`].
    IndexScans,
    /// Reorder inner equi-join chains by estimated cardinality.
    ReorderJoins,
    /// Build each hash join on its estimated smaller input.
    PickBuildSides,
}

/// An ordered pass pipeline.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Passes, applied in order.
    pub passes: Vec<Pass>,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            passes: vec![
                Pass::PushFilters,
                Pass::IndexScans,
                Pass::ReorderJoins,
                Pass::PickBuildSides,
            ],
        }
    }
}

impl OptimizerConfig {
    /// The default pipeline minus one pass (ablation).
    pub fn without(pass: Pass) -> Self {
        let mut cfg = OptimizerConfig::default();
        cfg.passes.retain(|&p| p != pass);
        cfg
    }
}

/// Catalog-free optimization: filter pushdown and index conversion only.
pub fn optimize(plan: Plan) -> Plan {
    index_scans(push_filters(plan))
}

/// The full default pipeline: [`optimize`] plus catalog-aware passes —
/// cost-based join reordering and hash-join build-side selection from the
/// stats-backed cardinality model.
pub fn optimize_with(db: &Database, plan: Plan) -> Plan {
    optimize_with_config(db, plan, &OptimizerConfig::default())
}

/// Run an explicit pass pipeline.
pub fn optimize_with_config(db: &Database, plan: Plan, cfg: &OptimizerConfig) -> Plan {
    let mut plan = plan;
    for pass in &cfg.passes {
        plan = match pass {
            Pass::PushFilters => push_filters(plan),
            Pass::IndexScans => index_scans(plan),
            Pass::ReorderJoins => reorder_joins(db, plan),
            Pass::PickBuildSides => pick_build_sides(db, plan),
        };
    }
    plan
}

// ---------------------------------------------------------------------------
// Cardinality model
// ---------------------------------------------------------------------------

/// Default selectivity of a predicate the model cannot analyze (the
/// historical "filters keep a third of their input" assumption).
const DEFAULT_SELECTIVITY: f64 = 1.0 / 3.0;

/// Estimated output rows of a plan, from the incrementally-maintained
/// table statistics. Heuristic, only used to order performance-neutral
/// choices — never for correctness.
pub fn estimate_rows(db: &Database, plan: &Plan) -> usize {
    est(db, plan, 0).round().min(u64::MAX as f64) as usize
}

fn est(db: &Database, plan: &Plan, depth: usize) -> f64 {
    // Views may reference views; a cyclic definition (which the executors
    // reject with an error) must not overflow the estimator's stack.
    if depth > crate::exec::MAX_VIEW_DEPTH {
        return 0.0;
    }
    match plan {
        Plan::Scan { table } => {
            if let Ok(t) = db.table(table) {
                t.len() as f64
            } else if let Some(v) = db.view(table) {
                est(db, &v.plan, depth + 1)
            } else {
                0.0
            }
        }
        Plan::Values { rows, .. } => rows.len() as f64,
        Plan::Filter { input, predicate } => {
            est(db, input, depth) * selectivity(db, input, predicate, depth)
        }
        Plan::IndexLookup {
            table,
            columns,
            residual,
            ..
        } => {
            let Ok(t) = db.table(table) else { return 0.0 };
            let rows = t.len() as f64;
            // A physical index knows its exact distinct-key count; without
            // one, the per-column NDVs from the stats subsystem stand in.
            let keys = match t.find_index(columns) {
                Some(ix) => ix.distinct_keys() as f64,
                None => columns
                    .iter()
                    .map(|&c| t.stats().column(c).map(|s| s.ndv()).unwrap_or(1).max(1) as f64)
                    .product::<f64>()
                    .min(rows),
            };
            let mut out = rows / keys.max(1.0);
            if let Some(r) = residual {
                out *= selectivity(db, &Plan::scan(table.clone()), r, depth);
            }
            out
        }
        Plan::Project { input, .. } | Plan::Distinct { input } | Plan::Sort { input, .. } => {
            est(db, input, depth)
        }
        Plan::Limit { input, n } => est(db, input, depth).min(*n as f64),
        Plan::Join {
            left,
            right,
            left_keys,
            right_keys,
            join_type,
            ..
        } => {
            let l = est(db, left, depth);
            let r = est(db, right, depth);
            let inner = join_est(db, left, l, right, r, left_keys, right_keys, depth);
            // Outer joins additionally keep every unmatched padded row.
            match join_type {
                JoinType::Inner => inner,
                JoinType::LeftOuter => inner.max(l),
                JoinType::RightOuter => inner.max(r),
                JoinType::FullOuter => inner.max(l).max(r),
            }
        }
        Plan::Union { inputs, .. } => inputs.iter().map(|p| est(db, p, depth)).sum(),
        Plan::Aggregate {
            input, group_by, ..
        } => {
            let n = est(db, input, depth);
            if group_by.is_empty() {
                1.0
            } else {
                // Groups are bounded by the product of the grouping
                // columns' NDVs, when derivable.
                let groups: f64 = group_by
                    .iter()
                    .map(|&c| col_ndv(db, input, c, depth).unwrap_or(n / 2.0).max(1.0))
                    .product();
                groups.min(n).max(1.0)
            }
        }
    }
}

/// Estimated inner-equi-join output: |L|·|R| divided by the product over
/// key pairs of max(ndv(lk), ndv(rk)) — the classic containment-of-values
/// model. Unknown NDVs fall back to the side's row estimate.
#[allow(clippy::too_many_arguments)]
fn join_est(
    db: &Database,
    left: &Plan,
    l_rows: f64,
    right: &Plan,
    r_rows: f64,
    left_keys: &[usize],
    right_keys: &[usize],
    depth: usize,
) -> f64 {
    let mut out = l_rows * r_rows;
    for (&lk, &rk) in left_keys.iter().zip(right_keys) {
        // Containment of values: divide by the larger key *domain*. The
        // domain size deliberately stays unclamped by the side's row
        // estimate, so the divisor is invariant under join reordering.
        let nl = col_ndv(db, left, lk, depth).unwrap_or(l_rows);
        let nr = col_ndv(db, right, rk, depth).unwrap_or(r_rows);
        out /= nl.max(nr).max(1.0);
    }
    out
}

/// Distinct values of output column `col`, traced through order- and
/// column-preserving operators down to a base table's statistics.
///
/// For dictionary-encoded string columns the per-column stats key their
/// value→count map by interned `u32` code instead of by owned [`Value`]
/// ([`crate::stats`]), so this NDV **is** the dictionary cardinality —
/// same number, cheaper bookkeeping, and estimates stay bit-identical
/// whether or not `PROQL_DICT` encoding is enabled.
fn col_ndv(db: &Database, plan: &Plan, col: usize, depth: usize) -> Option<f64> {
    if depth > crate::exec::MAX_VIEW_DEPTH {
        return None;
    }
    match plan {
        Plan::Scan { table } => {
            if let Ok(t) = db.table(table) {
                Some(t.stats().column(col)?.ndv() as f64)
            } else {
                col_ndv(db, &db.view(table)?.plan, col, depth + 1)
            }
        }
        Plan::IndexLookup { table, .. } => {
            let t = db.table(table).ok()?;
            Some(t.stats().column(col)?.ndv() as f64)
        }
        Plan::Filter { input, .. } | Plan::Distinct { input } | Plan::Sort { input, .. } => {
            col_ndv(db, input, col, depth)
        }
        Plan::Limit { input, .. } => col_ndv(db, input, col, depth),
        Plan::Project { input, exprs, .. } => match exprs.get(col)? {
            Expr::Col(i) => col_ndv(db, input, *i, depth),
            Expr::Lit(_) => Some(1.0),
            _ => None,
        },
        Plan::Join { left, right, .. } => {
            let la = plan_arity_cat(db, left, depth)?;
            if col < la {
                col_ndv(db, left, col, depth)
            } else {
                col_ndv(db, right, col - la, depth)
            }
        }
        _ => None,
    }
}

/// Estimated fraction of `input`'s rows that satisfy `predicate`.
fn selectivity(db: &Database, input: &Plan, predicate: &Expr, depth: usize) -> f64 {
    let s = pred_selectivity(db, input, predicate, depth);
    s.clamp(0.0, 1.0)
}

fn pred_selectivity(db: &Database, input: &Plan, pred: &Expr, depth: usize) -> f64 {
    match pred {
        Expr::And(ps) => ps
            .iter()
            .map(|p| pred_selectivity(db, input, p, depth))
            .product(),
        Expr::Or(ps) => {
            // Independence assumption: 1 - Π(1 - sᵢ).
            1.0 - ps
                .iter()
                .map(|p| 1.0 - pred_selectivity(db, input, p, depth))
                .product::<f64>()
        }
        Expr::Not(p) => 1.0 - pred_selectivity(db, input, p, depth),
        Expr::Lit(Value::Bool(true)) => 1.0,
        Expr::Lit(Value::Bool(false)) => 0.0,
        Expr::Bin(op, a, b) => {
            let (col, lit) = match (a.as_ref(), b.as_ref()) {
                (Expr::Col(i), Expr::Lit(v)) => (*i, v),
                (Expr::Lit(v), Expr::Col(i)) => (*i, v),
                _ => return DEFAULT_SELECTIVITY,
            };
            let Some(stats) = col_stats(db, input, col, depth) else {
                return DEFAULT_SELECTIVITY;
            };
            let ndv = stats.ndv().max(1) as f64;
            match op {
                BinOp::Eq => 1.0 / ndv,
                BinOp::Ne => 1.0 - 1.0 / ndv,
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    let Some(below) = stats.fraction_below(lit) else {
                        return DEFAULT_SELECTIVITY;
                    };
                    match op {
                        BinOp::Lt | BinOp::Le => below.max(1.0 / ndv),
                        _ => (1.0 - below).max(1.0 / ndv),
                    }
                }
                _ => DEFAULT_SELECTIVITY,
            }
        }
        _ => DEFAULT_SELECTIVITY,
    }
}

/// Column statistics of `plan`'s output column `col`, when it traces to a
/// base table.
fn col_stats<'a>(
    db: &'a Database,
    plan: &Plan,
    col: usize,
    depth: usize,
) -> Option<&'a crate::stats::ColumnStats> {
    if depth > crate::exec::MAX_VIEW_DEPTH {
        return None;
    }
    match plan {
        Plan::Scan { table } => {
            if let Ok(t) = db.table(table) {
                t.stats().column(col)
            } else {
                col_stats(db, &db.view(table)?.plan, col, depth + 1)
            }
        }
        Plan::IndexLookup { table, .. } => db.table(table).ok()?.stats().column(col),
        Plan::Filter { input, .. }
        | Plan::Distinct { input }
        | Plan::Sort { input, .. }
        | Plan::Limit { input, .. } => col_stats(db, input, col, depth),
        Plan::Project { input, exprs, .. } => match exprs.get(col)? {
            Expr::Col(i) => col_stats(db, input, *i, depth),
            _ => None,
        },
        Plan::Join { left, right, .. } => {
            let la = plan_arity_cat(db, left, depth)?;
            if col < la {
                col_stats(db, left, col, depth)
            } else {
                col_stats(db, right, col - la, depth)
            }
        }
        _ => None,
    }
}

/// Catalog-aware output arity of a plan.
fn plan_arity_cat(db: &Database, plan: &Plan, depth: usize) -> Option<usize> {
    if depth > crate::exec::MAX_VIEW_DEPTH {
        return None;
    }
    match plan {
        Plan::Scan { table } => {
            if let Ok(t) = db.table(table) {
                Some(t.schema().arity())
            } else {
                Some(db.view(table)?.schema.arity())
            }
        }
        Plan::IndexLookup { table, .. } => Some(db.table(table).ok()?.schema().arity()),
        Plan::Values { schema, .. } => Some(schema.arity()),
        Plan::Project { exprs, .. } => Some(exprs.len()),
        Plan::Filter { input, .. }
        | Plan::Distinct { input }
        | Plan::Sort { input, .. }
        | Plan::Limit { input, .. } => plan_arity_cat(db, input, depth),
        Plan::Union { inputs, .. } => plan_arity_cat(db, inputs.first()?, depth),
        Plan::Join { left, right, .. } => {
            Some(plan_arity_cat(db, left, depth)? + plan_arity_cat(db, right, depth)?)
        }
        Plan::Aggregate { group_by, aggs, .. } => Some(group_by.len() + aggs.len()),
    }
}

/// Catalog-aware output column names, replicating the executors' naming
/// (including the join `_N` duplicate disambiguation) so a reordering
/// projection can restore the exact original schema.
fn plan_names_cat(db: &Database, plan: &Plan, depth: usize) -> Option<Vec<String>> {
    if depth > crate::exec::MAX_VIEW_DEPTH {
        return None;
    }
    let schema_names =
        |s: &proql_common::Schema| s.attributes().iter().map(|a| a.name.clone()).collect();
    match plan {
        Plan::Scan { table } => {
            if let Ok(t) = db.table(table) {
                Some(schema_names(t.schema()))
            } else {
                Some(schema_names(&db.view(table)?.schema))
            }
        }
        Plan::IndexLookup { table, .. } => Some(schema_names(db.table(table).ok()?.schema())),
        Plan::Values { schema, .. } => Some(schema_names(schema)),
        Plan::Project { names, .. } => Some(names.clone()),
        Plan::Filter { input, .. }
        | Plan::Distinct { input }
        | Plan::Sort { input, .. }
        | Plan::Limit { input, .. } => plan_names_cat(db, input, depth),
        Plan::Union { inputs, .. } => plan_names_cat(db, inputs.first()?, depth),
        Plan::Join { left, right, .. } => {
            let l = plan_names_cat(db, left, depth)?;
            let r = plan_names_cat(db, right, depth)?;
            Some(crate::exec::join_names(&l, &r))
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
            ..
        } => {
            let inner = plan_names_cat(db, input, depth)?;
            let mut names: Vec<String> = group_by
                .iter()
                .map(|&c| inner.get(c).cloned().unwrap_or_else(|| format!("c{c}")))
                .collect();
            names.extend(aggs.iter().map(|a| a.name.clone()));
            Some(names)
        }
    }
}

// ---------------------------------------------------------------------------
// Pass: cost-based join reordering
// ---------------------------------------------------------------------------

/// Reorder maximal inner-equi-join chains by estimated cardinality. The
/// rewrite preserves the output **multiset and schema** exactly (a final
/// projection restores the original column order); only row order within
/// the multiset may change, so subtrees under order-sensitive operators
/// (`Sort`, `Limit`) are left untouched.
fn reorder_joins(db: &Database, plan: Plan) -> Plan {
    match plan {
        // Order-sensitive operators freeze their whole subtree: reordering
        // below them could change which rows a LIMIT keeps or how ties
        // settle under a stable sort.
        frozen @ (Plan::Sort { .. } | Plan::Limit { .. }) => frozen,
        Plan::Join {
            join_type: JoinType::Inner,
            ..
        } => match try_reorder_chain(db, plan) {
            Ok(reordered) => reordered,
            Err(original) => descend(db, original),
        },
        other => descend(db, other),
    }
}

/// Apply [`reorder_joins`] to every child.
fn descend(db: &Database, plan: Plan) -> Plan {
    match plan {
        Plan::Filter { input, predicate } => Plan::Filter {
            input: Box::new(reorder_joins(db, *input)),
            predicate,
        },
        Plan::Project {
            input,
            exprs,
            names,
        } => Plan::Project {
            input: Box::new(reorder_joins(db, *input)),
            exprs,
            names,
        },
        Plan::Join {
            left,
            right,
            join_type,
            left_keys,
            right_keys,
            build,
        } => Plan::Join {
            left: Box::new(reorder_joins(db, *left)),
            right: Box::new(reorder_joins(db, *right)),
            join_type,
            left_keys,
            right_keys,
            build,
        },
        Plan::Union { inputs, distinct } => Plan::Union {
            inputs: inputs.into_iter().map(|p| reorder_joins(db, p)).collect(),
            distinct,
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(reorder_joins(db, *input)),
        },
        Plan::Aggregate {
            input,
            group_by,
            aggs,
            having,
        } => Plan::Aggregate {
            input: Box::new(reorder_joins(db, *input)),
            group_by,
            aggs,
            having,
        },
        leaf => leaf,
    }
}

/// A flattened inner-equi-join chain.
struct Chain {
    /// The chain's base relations (non-inner-join subplans), in original
    /// left-to-right order.
    leaves: Vec<Plan>,
    /// Global output-column offset of each leaf.
    offsets: Vec<usize>,
    /// Arity of each leaf.
    arities: Vec<usize>,
    /// Equality predicates as pairs of global columns (left subtree col,
    /// right subtree col).
    preds: Vec<(usize, usize)>,
    /// Total output arity.
    total: usize,
    /// True while every flattened join node had a leaf right child. Only
    /// a left-deep original is structurally reproduced by an identity
    /// left-deep rebuild; right-deep/bushy originals need the restoring
    /// projection even on bail-out, because `join_names` duplicate
    /// disambiguation is not associative.
    left_deep: bool,
}

impl Chain {
    /// The leaf owning global column `g`.
    fn leaf_of(&self, g: usize) -> usize {
        match self.offsets.binary_search(&g) {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    }
}

/// Attempt to flatten and reorder the inner-join chain rooted at `plan`.
/// Returns the original plan on any bail-out (underivable arity, fewer
/// than three leaves, no connecting predicate).
fn try_reorder_chain(db: &Database, plan: Plan) -> Result<Plan, Plan> {
    let names = match plan_names_cat(db, &plan, 0) {
        Some(n) => n,
        None => return Err(plan),
    };
    let mut chain = Chain {
        leaves: Vec::new(),
        offsets: Vec::new(),
        arities: Vec::new(),
        preds: Vec::new(),
        total: 0,
        left_deep: true,
    };
    // Flattening consumes the plan; on failure, rebuild is impossible, so
    // flatten a borrowed view first and only then consume.
    if !flatten_ok(db, &plan) {
        return Err(plan);
    }
    flatten(db, plan, &mut chain);
    if chain.leaves.len() < 3 || chain.preds.is_empty() {
        return Err(rebuild_original(chain, names));
    }

    // Greedy ordering: start from the connected pair with the smallest
    // estimated join output, then repeatedly add the connected leaf whose
    // join with the accumulated set is estimated cheapest.
    let leaf_est: Vec<f64> = chain.leaves.iter().map(|l| est(db, l, 0)).collect();
    let pair_est = |i: usize, j: usize| -> Option<f64> {
        let keys = connecting_keys(&chain, &[i], j);
        if keys.is_empty() {
            return None;
        }
        let mut out = leaf_est[i] * leaf_est[j];
        for &(gi, gj) in &keys {
            let ni = leaf_global_ndv(db, &chain, gi).unwrap_or(leaf_est[i]);
            let nj = leaf_global_ndv(db, &chain, gj).unwrap_or(leaf_est[j]);
            out /= ni.max(nj).max(1.0);
        }
        Some(out)
    };
    let n = chain.leaves.len();
    let mut best: Option<(f64, usize, usize)> = None;
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            if let Some(e) = pair_est(i, j) {
                let cand = (e, i, j);
                if best.map(|b| cand.0 < b.0).unwrap_or(true) {
                    best = Some(cand);
                }
            }
        }
    }
    let Some((_, first, second)) = best else {
        return Err(rebuild_original(chain, names));
    };
    let mut order = vec![first, second];
    let mut placed = vec![false; n];
    placed[first] = true;
    placed[second] = true;
    let mut set_est = pair_est(first, second).unwrap_or(leaf_est[first] * leaf_est[second]);
    while order.len() < n {
        let mut pick: Option<(f64, usize, bool)> = None; // (est, leaf, connected)
        for j in 0..n {
            if placed[j] {
                continue;
            }
            let keys = connecting_keys(&chain, &order, j);
            let connected = !keys.is_empty();
            let mut e = set_est * leaf_est[j];
            for &(gs, gj) in &keys {
                let ns = leaf_global_ndv(db, &chain, gs).unwrap_or(set_est);
                let nj = leaf_global_ndv(db, &chain, gj).unwrap_or(leaf_est[j]);
                e /= ns.max(nj).max(1.0);
            }
            let better = match pick {
                None => true,
                // Connected candidates always beat cross products.
                Some((pe, _, pc)) => (connected && !pc) || (connected == pc && e < pe),
            };
            if better {
                pick = Some((e, j, connected));
            }
        }
        let (e, j, _) = pick.expect("an unplaced leaf exists");
        set_est = e;
        order.push(j);
        placed[j] = true;
    }

    // Identity order: the original plan is already the greedy choice.
    if order.iter().enumerate().all(|(k, &l)| k == l) {
        return Err(rebuild_original(chain, names));
    }

    Ok(build_ordered(chain, names, &order))
}

/// True when every node of the chain has derivable arity (flattening will
/// succeed without consuming the plan first).
fn flatten_ok(db: &Database, plan: &Plan) -> bool {
    match plan {
        Plan::Join {
            join_type: JoinType::Inner,
            left,
            right,
            ..
        } => flatten_ok(db, left) && flatten_ok(db, right),
        leaf => plan_arity_cat(db, leaf, 0).is_some(),
    }
}

/// Flatten `plan` into `chain`, assigning global column offsets in-order.
/// Non-inner-join nodes become leaves (recursively reordered themselves).
fn flatten(db: &Database, plan: Plan, chain: &mut Chain) {
    match plan {
        Plan::Join {
            join_type: JoinType::Inner,
            left,
            right,
            left_keys,
            right_keys,
            ..
        } => {
            if matches!(
                right.as_ref(),
                Plan::Join {
                    join_type: JoinType::Inner,
                    ..
                }
            ) {
                chain.left_deep = false;
            }
            let left_base = chain.total;
            flatten(db, *left, chain);
            let right_base = chain.total;
            flatten(db, *right, chain);
            for (lk, rk) in left_keys.into_iter().zip(right_keys) {
                chain.preds.push((left_base + lk, right_base + rk));
            }
        }
        leaf => {
            let arity = plan_arity_cat(db, &leaf, 0).expect("checked by flatten_ok");
            chain.offsets.push(chain.total);
            chain.arities.push(arity);
            chain.leaves.push(reorder_joins(db, leaf));
            chain.total += arity;
        }
    }
}

/// Key pairs `(global col in placed set, global col in leaf j)` for the
/// predicates connecting `j` to the placed leaves.
fn connecting_keys(chain: &Chain, placed: &[usize], j: usize) -> Vec<(usize, usize)> {
    let mut keys = Vec::new();
    for &(a, b) in &chain.preds {
        let (la, lb) = (chain.leaf_of(a), chain.leaf_of(b));
        if la == j && placed.contains(&lb) {
            keys.push((b, a));
        } else if lb == j && placed.contains(&la) {
            keys.push((a, b));
        }
    }
    keys.sort_unstable();
    keys.dedup();
    keys
}

/// NDV of the leaf-local column behind global column `g`.
fn leaf_global_ndv(db: &Database, chain: &Chain, g: usize) -> Option<f64> {
    let l = chain.leaf_of(g);
    col_ndv(db, &chain.leaves[l], g - chain.offsets[l], 0)
}

/// Rebuild the chain in its original order (used on bail-out after the
/// plan was already consumed by flattening). A left-deep original is
/// reproduced structurally (no projection needed); a right-deep/bushy
/// original gets the restoring projection, because a left-deep identity
/// rebuild would re-associate the joins and `join_names` duplicate
/// disambiguation is not associative.
fn rebuild_original(chain: Chain, names: Vec<String>) -> Plan {
    let n = chain.leaves.len();
    let order: Vec<usize> = (0..n).collect();
    let skip_projection = chain.left_deep;
    build_ordered_inner(chain, names, &order, skip_projection)
}

/// Rebuild the chain joining leaves in `order`, then restore the original
/// column order (and executor-visible names) with a projection.
fn build_ordered(chain: Chain, names: Vec<String>, order: &[usize]) -> Plan {
    build_ordered_inner(chain, names, order, false)
}

fn build_ordered_inner(
    mut chain: Chain,
    names: Vec<String>,
    order: &[usize],
    skip_projection: bool,
) -> Plan {
    let total = chain.total;
    // colmap[g] = current output position of original global column g.
    let mut colmap: Vec<Option<usize>> = vec![None; total];
    let mut placed: Vec<usize> = Vec::with_capacity(order.len());
    let mut acc: Option<Plan> = None;
    let mut acc_arity = 0usize;
    let mut leaf_slots: Vec<Option<Plan>> = chain.leaves.drain(..).map(Some).collect();
    for &l in order {
        let leaf = leaf_slots[l].take().expect("each leaf placed once");
        let (off, ar) = (chain.offsets[l], chain.arities[l]);
        match acc.take() {
            None => {
                for (g, slot) in colmap.iter_mut().enumerate().skip(off).take(ar) {
                    *slot = Some(g - off);
                }
                acc = Some(leaf);
                acc_arity = ar;
            }
            Some(a) => {
                let mut left_keys = Vec::new();
                let mut right_keys = Vec::new();
                for (gs, gj) in connecting_keys(&chain, &placed, l) {
                    left_keys.push(colmap[gs].expect("placed column has a position"));
                    right_keys.push(gj - off);
                }
                for (g, slot) in colmap.iter_mut().enumerate().skip(off).take(ar) {
                    *slot = Some(acc_arity + (g - off));
                }
                acc = Some(Plan::Join {
                    left: Box::new(a),
                    right: Box::new(leaf),
                    join_type: JoinType::Inner,
                    left_keys,
                    right_keys,
                    build: BuildSide::Auto,
                });
                acc_arity += ar;
            }
        }
        placed.push(l);
    }
    let joined = acc.expect("chain has at least one leaf");
    if skip_projection {
        // Left-deep identity rebuild: positions are already 0..total and
        // the structure matches the original; no projection needed.
        return joined;
    }
    let exprs: Vec<Expr> = (0..total)
        .map(|g| Expr::Col(colmap[g].expect("every column placed")))
        .collect();
    Plan::Project {
        input: Box::new(joined),
        exprs,
        names,
    }
}

// ---------------------------------------------------------------------------
// Pass: build-side selection
// ---------------------------------------------------------------------------

/// Set each hash join's build side to its (estimated) smaller input.
fn pick_build_sides(db: &Database, plan: Plan) -> Plan {
    match plan {
        Plan::Join {
            left,
            right,
            join_type,
            left_keys,
            right_keys,
            build,
        } => {
            let left = Box::new(pick_build_sides(db, *left));
            let right = Box::new(pick_build_sides(db, *right));
            let build = if build == BuildSide::Auto {
                if estimate_rows(db, &left) < estimate_rows(db, &right) {
                    BuildSide::Left
                } else {
                    BuildSide::Right
                }
            } else {
                build
            };
            Plan::Join {
                left,
                right,
                join_type,
                left_keys,
                right_keys,
                build,
            }
        }
        Plan::Filter { input, predicate } => Plan::Filter {
            input: Box::new(pick_build_sides(db, *input)),
            predicate,
        },
        Plan::Project {
            input,
            exprs,
            names,
        } => Plan::Project {
            input: Box::new(pick_build_sides(db, *input)),
            exprs,
            names,
        },
        Plan::Union { inputs, distinct } => Plan::Union {
            inputs: inputs
                .into_iter()
                .map(|p| pick_build_sides(db, p))
                .collect(),
            distinct,
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(pick_build_sides(db, *input)),
        },
        Plan::Aggregate {
            input,
            group_by,
            aggs,
            having,
        } => Plan::Aggregate {
            input: Box::new(pick_build_sides(db, *input)),
            group_by,
            aggs,
            having,
        },
        Plan::Sort { input, by } => Plan::Sort {
            input: Box::new(pick_build_sides(db, *input)),
            by,
        },
        Plan::Limit { input, n } => Plan::Limit {
            input: Box::new(pick_build_sides(db, *input)),
            n,
        },
        leaf => leaf,
    }
}

// ---------------------------------------------------------------------------
// Pass: filter pushdown
// ---------------------------------------------------------------------------

/// Split a predicate into conjuncts.
fn conjuncts(pred: Expr) -> Vec<Expr> {
    match pred {
        Expr::And(ps) => ps.into_iter().flat_map(conjuncts).collect(),
        p => vec![p],
    }
}

/// Recombine conjuncts.
fn recombine(mut preds: Vec<Expr>) -> Option<Expr> {
    match preds.len() {
        0 => None,
        1 => Some(preds.pop().unwrap()),
        _ => Some(Expr::And(preds)),
    }
}

fn push_filters(plan: Plan) -> Plan {
    match plan {
        Plan::Filter { input, predicate } => {
            let input = push_filters(*input);
            push_pred_into(input, predicate)
        }
        Plan::Project {
            input,
            exprs,
            names,
        } => Plan::Project {
            input: Box::new(push_filters(*input)),
            exprs,
            names,
        },
        Plan::Join {
            left,
            right,
            join_type,
            left_keys,
            right_keys,
            build,
        } => Plan::Join {
            left: Box::new(push_filters(*left)),
            right: Box::new(push_filters(*right)),
            join_type,
            left_keys,
            right_keys,
            build,
        },
        Plan::Union { inputs, distinct } => Plan::Union {
            inputs: inputs.into_iter().map(push_filters).collect(),
            distinct,
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(push_filters(*input)),
        },
        Plan::Aggregate {
            input,
            group_by,
            aggs,
            having,
        } => Plan::Aggregate {
            input: Box::new(push_filters(*input)),
            group_by,
            aggs,
            having,
        },
        Plan::Sort { input, by } => Plan::Sort {
            input: Box::new(push_filters(*input)),
            by,
        },
        Plan::Limit { input, n } => Plan::Limit {
            input: Box::new(push_filters(*input)),
            n,
        },
        leaf => leaf,
    }
}

/// Push `predicate` as deep as possible into `input`.
fn push_pred_into(input: Plan, predicate: Expr) -> Plan {
    match input {
        // Filter(Filter(x)) -> Filter(x) with merged predicate.
        Plan::Filter {
            input: inner,
            predicate: p2,
        } => {
            let merged = Expr::and(vec![p2, predicate]);
            push_pred_into(*inner, merged)
        }
        // Push through a union into every branch.
        Plan::Union { inputs, distinct } => Plan::Union {
            inputs: inputs
                .into_iter()
                .map(|p| push_pred_into(p, predicate.clone()))
                .collect(),
            distinct,
        },
        // Push each conjunct into the join side it references, when the
        // join is inner (outer joins change semantics under pushdown).
        Plan::Join {
            left,
            right,
            join_type: JoinType::Inner,
            left_keys,
            right_keys,
            build,
        } => {
            let left_arity = plan_arity_hint(&left);
            let mut left_preds = Vec::new();
            let mut right_preds = Vec::new();
            let mut keep = Vec::new();
            for c in conjuncts(predicate) {
                match (c.max_col(), left_arity) {
                    (Some(max), Some(la)) if max < la => left_preds.push(c),
                    (Some(_), Some(la)) => {
                        // References right side only if *all* cols >= la.
                        if min_col(&c).map(|m| m >= la).unwrap_or(false) {
                            right_preds.push(shift_down(&c, la));
                        } else {
                            keep.push(c);
                        }
                    }
                    (None, _) => keep.push(c), // constant predicate: keep on top
                    _ => keep.push(c),
                }
            }
            let mut new_left = *left;
            if let Some(p) = recombine(left_preds) {
                new_left = push_pred_into(new_left, p);
            }
            let mut new_right = *right;
            if let Some(p) = recombine(right_preds) {
                new_right = push_pred_into(new_right, p);
            }
            let joined = Plan::Join {
                left: Box::new(new_left),
                right: Box::new(new_right),
                join_type: JoinType::Inner,
                left_keys,
                right_keys,
                build,
            };
            match recombine(keep) {
                Some(p) => Plan::Filter {
                    input: Box::new(joined),
                    predicate: p,
                },
                None => joined,
            }
        }
        other => Plan::Filter {
            input: Box::new(other),
            predicate,
        },
    }
}

/// Smallest column index referenced by the expression.
fn min_col(e: &Expr) -> Option<usize> {
    match e {
        Expr::Col(i) => Some(*i),
        Expr::Lit(_) => None,
        Expr::Bin(_, a, b) => match (min_col(a), min_col(b)) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (x, y) => x.or(y),
        },
        Expr::And(ps) | Expr::Or(ps) => ps.iter().filter_map(min_col).min(),
        Expr::Not(p) | Expr::IsNull(p) => min_col(p),
    }
}

/// Shift all columns down by `delta` (inverse of `shift_cols`).
fn shift_down(e: &Expr, delta: usize) -> Expr {
    match e {
        Expr::Col(i) => Expr::Col(i - delta),
        Expr::Lit(v) => Expr::Lit(v.clone()),
        Expr::Bin(op, a, b) => Expr::Bin(
            *op,
            Box::new(shift_down(a, delta)),
            Box::new(shift_down(b, delta)),
        ),
        Expr::And(ps) => Expr::And(ps.iter().map(|p| shift_down(p, delta)).collect()),
        Expr::Or(ps) => Expr::Or(ps.iter().map(|p| shift_down(p, delta)).collect()),
        Expr::Not(p) => Expr::Not(Box::new(shift_down(p, delta))),
        Expr::IsNull(p) => Expr::IsNull(Box::new(shift_down(p, delta))),
    }
}

/// Static arity of a plan, when derivable without a catalog. Scans have
/// unknown arity (None): pushdown through joins over bare scans is skipped,
/// which is conservative but safe. Projects and Values fix the arity.
fn plan_arity_hint(plan: &Plan) -> Option<usize> {
    match plan {
        Plan::Project { exprs, .. } => Some(exprs.len()),
        Plan::Values { schema, .. } => Some(schema.arity()),
        Plan::Filter { input, .. }
        | Plan::Distinct { input }
        | Plan::Sort { input, .. }
        | Plan::Limit { input, .. } => plan_arity_hint(input),
        Plan::Union { inputs, .. } => inputs.first().and_then(plan_arity_hint),
        Plan::Join { left, right, .. } => Some(plan_arity_hint(left)? + plan_arity_hint(right)?),
        Plan::Aggregate { group_by, aggs, .. } => Some(group_by.len() + aggs.len()),
        Plan::Scan { .. } | Plan::IndexLookup { .. } => None,
    }
}

// ---------------------------------------------------------------------------
// Pass: index conversion
// ---------------------------------------------------------------------------

/// Rewrite `Filter(Scan)` into `IndexLookup` when every equality-bound
/// column set could be served by an index (the executor falls back to a
/// filtered scan when no physical index exists, so this is always safe).
fn index_scans(plan: Plan) -> Plan {
    match plan {
        Plan::Filter { input, predicate } => {
            if let Plan::Scan { table } = input.as_ref() {
                let bindings = predicate.equality_bindings();
                if !bindings.is_empty() {
                    let columns: Vec<usize> = bindings.iter().map(|(c, _)| *c).collect();
                    let key: Vec<Value> = bindings.iter().map(|(_, v)| v.clone()).collect();
                    // Anything that is not a bare col=lit conjunct stays as a
                    // residual predicate.
                    let residual = residual_of(&predicate);
                    return Plan::IndexLookup {
                        table: table.clone(),
                        columns,
                        key,
                        residual,
                    };
                }
            }
            Plan::Filter {
                input: Box::new(index_scans(*input)),
                predicate,
            }
        }
        Plan::Project {
            input,
            exprs,
            names,
        } => Plan::Project {
            input: Box::new(index_scans(*input)),
            exprs,
            names,
        },
        Plan::Join {
            left,
            right,
            join_type,
            left_keys,
            right_keys,
            build,
        } => Plan::Join {
            left: Box::new(index_scans(*left)),
            right: Box::new(index_scans(*right)),
            join_type,
            left_keys,
            right_keys,
            build,
        },
        Plan::Union { inputs, distinct } => Plan::Union {
            inputs: inputs.into_iter().map(index_scans).collect(),
            distinct,
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(index_scans(*input)),
        },
        Plan::Aggregate {
            input,
            group_by,
            aggs,
            having,
        } => Plan::Aggregate {
            input: Box::new(index_scans(*input)),
            group_by,
            aggs,
            having,
        },
        Plan::Sort { input, by } => Plan::Sort {
            input: Box::new(index_scans(*input)),
            by,
        },
        Plan::Limit { input, n } => Plan::Limit {
            input: Box::new(index_scans(*input)),
            n,
        },
        leaf => leaf,
    }
}

/// The conjuncts of `pred` that are *not* simple `col = literal` bindings.
fn residual_of(pred: &Expr) -> Option<Expr> {
    let parts: Vec<Expr> = match pred {
        Expr::And(ps) => ps.clone(),
        p => vec![p.clone()],
    };
    let residual: Vec<Expr> = parts
        .into_iter()
        .filter(|p| !is_simple_binding(p))
        .collect();
    recombine(residual)
}

fn is_simple_binding(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Bin(crate::expr::BinOp::Eq, a, b)
            if matches!((a.as_ref(), b.as_ref()),
                (Expr::Col(_), Expr::Lit(_)) | (Expr::Lit(_), Expr::Col(_)))
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::exec::execute;
    use crate::expr::BinOp;
    use crate::index::IndexKind;
    use proql_common::{tup, Schema, ValueType};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            Schema::build("T", &[("a", ValueType::Int), ("b", ValueType::Int)], &[0]).unwrap(),
        )
        .unwrap();
        for i in 0..10 {
            db.insert("T", tup![i, i * 10]).unwrap();
        }
        db
    }

    #[test]
    fn filter_scan_becomes_index_lookup() {
        let p = Plan::scan("T").filter(Expr::col(0).eq(Expr::lit(3)));
        let opt = optimize(p);
        match &opt {
            Plan::IndexLookup {
                table,
                columns,
                key,
                residual,
            } => {
                assert_eq!(table, "T");
                assert_eq!(columns, &[0]);
                assert_eq!(key, &[Value::Int(3)]);
                assert!(residual.is_none());
            }
            other => panic!("expected IndexLookup, got {other:?}"),
        }
        assert_eq!(execute(&db(), &opt).unwrap().rows, vec![tup![3, 30]]);
    }

    #[test]
    fn residual_predicate_preserved() {
        let p = Plan::scan("T").filter(Expr::And(vec![
            Expr::col(0).eq(Expr::lit(3)),
            Expr::cmp(BinOp::Gt, Expr::col(1), Expr::lit(100)),
        ]));
        let opt = optimize(p);
        match &opt {
            Plan::IndexLookup { residual, .. } => assert!(residual.is_some()),
            other => panic!("expected IndexLookup, got {other:?}"),
        }
        assert!(execute(&db(), &opt).unwrap().is_empty());
    }

    #[test]
    fn stacked_filters_merge() {
        let p = Plan::scan("T")
            .filter(Expr::col(0).eq(Expr::lit(3)))
            .filter(Expr::cmp(BinOp::Lt, Expr::col(1), Expr::lit(100)));
        let opt = optimize(p.clone());
        // Optimized and unoptimized agree.
        assert_eq!(
            execute(&db(), &opt).unwrap().sorted_rows(),
            execute(&db(), &p).unwrap().sorted_rows()
        );
    }

    #[test]
    fn pushdown_through_union() {
        let p = Plan::Union {
            inputs: vec![Plan::scan("T"), Plan::scan("T")],
            distinct: false,
        }
        .filter(Expr::col(0).eq(Expr::lit(1)));
        let opt = optimize(p.clone());
        // Both branches now index lookups under the union.
        match &opt {
            Plan::Union { inputs, .. } => {
                assert!(matches!(inputs[0], Plan::IndexLookup { .. }));
                assert!(matches!(inputs[1], Plan::IndexLookup { .. }));
            }
            other => panic!("expected Union, got {other:?}"),
        }
        assert_eq!(
            execute(&db(), &opt).unwrap().sorted_rows(),
            execute(&db(), &p).unwrap().sorted_rows()
        );
    }

    #[test]
    fn pushdown_through_projected_join_sides() {
        // Join of two projections (arity known), filter references left col.
        let left = Plan::scan("T").project(vec![Expr::col(0), Expr::col(1)]);
        let right = Plan::scan("T").project(vec![Expr::col(0)]);
        let p = left
            .join(right, vec![0], vec![0])
            .filter(Expr::col(2).eq(Expr::lit(5)));
        let opt = optimize(p.clone());
        assert_eq!(
            execute(&db(), &opt).unwrap().sorted_rows(),
            execute(&db(), &p).unwrap().sorted_rows()
        );
    }

    #[test]
    fn outer_join_filters_not_pushed() {
        let p = Plan::scan("T")
            .join_as(Plan::scan("T"), JoinType::LeftOuter, vec![0], vec![0])
            .filter(Expr::IsNull(Box::new(Expr::col(2))));
        let opt = optimize(p.clone());
        assert_eq!(
            execute(&db(), &opt).unwrap().sorted_rows(),
            execute(&db(), &p).unwrap().sorted_rows()
        );
    }

    #[test]
    fn build_side_picked_from_estimates() {
        let mut db = db(); // T has 10 rows
        db.create_table(
            proql_common::Schema::build("Small", &[("a", proql_common::ValueType::Int)], &[0])
                .unwrap(),
        )
        .unwrap();
        db.insert("Small", proql_common::tup![1]).unwrap();
        let opt = optimize_with(
            &db,
            Plan::scan("Small").join(Plan::scan("T"), vec![0], vec![0]),
        );
        match opt {
            Plan::Join { build, .. } => assert_eq!(build, BuildSide::Left),
            other => panic!("expected Join, got {other:?}"),
        }
        let opt = optimize_with(
            &db,
            Plan::scan("T").join(Plan::scan("Small"), vec![0], vec![0]),
        );
        match opt {
            Plan::Join { build, .. } => assert_eq!(build, BuildSide::Right),
            other => panic!("expected Join, got {other:?}"),
        }
    }

    #[test]
    fn estimator_survives_cyclic_views() {
        // The executors reject cyclic views with an error; the estimator
        // must not stack-overflow on them either.
        let mut db = db();
        let schema =
            proql_common::Schema::build("V", &[("id", proql_common::ValueType::Int)], &[]).unwrap();
        db.create_view("V", Plan::scan("W"), schema.clone())
            .unwrap();
        db.create_view("W", Plan::scan("V"), schema).unwrap();
        let plan = Plan::scan("V").join(Plan::scan("T"), vec![0], vec![0]);
        let opt = optimize_with(&db, plan);
        assert!(matches!(opt, Plan::Join { .. }));
        assert_eq!(estimate_rows(&db, &Plan::scan("V")), 0);
    }

    #[test]
    fn index_lookup_estimate_uses_distinct_keys() {
        // Regression for the fixed len/8 guess: a lookup on a 2-distinct-
        // value column of a 10-row table returns ~5 rows, not 10/8 = 2.
        let mut db = Database::new();
        db.create_table(
            Schema::build("S", &[("id", ValueType::Int), ("g", ValueType::Int)], &[0]).unwrap(),
        )
        .unwrap();
        for i in 0..10 {
            db.insert("S", tup![i, i % 2]).unwrap();
        }
        db.table_mut("S")
            .unwrap()
            .create_index("by_g", vec![1], IndexKind::Hash)
            .unwrap();
        let lookup = Plan::IndexLookup {
            table: "S".into(),
            columns: vec![1],
            key: vec![Value::Int(0)],
            residual: None,
        };
        assert_eq!(estimate_rows(&db, &lookup), 5);
        // And on the (unique) primary column, ~1 row.
        let pk_lookup = Plan::IndexLookup {
            table: "S".into(),
            columns: vec![0],
            key: vec![Value::Int(3)],
            residual: None,
        };
        // No physical index on column 0: the column-NDV fallback applies.
        assert_eq!(estimate_rows(&db, &pk_lookup), 1);
    }

    #[test]
    fn filter_estimates_use_column_stats() {
        let db = db(); // T: 10 rows, col 0 = 0..10 (NDV 10), col 1 = 0..90
                       // Equality on a unique column: ~1 row.
        let eq = Plan::scan("T").filter(Expr::col(0).eq(Expr::lit(3)));
        assert_eq!(estimate_rows(&db, &eq), 1);
        // Range: b < 45 covers half the 0..=90 domain.
        let half = Plan::scan("T").filter(Expr::cmp(BinOp::Lt, Expr::col(1), Expr::lit(45)));
        assert_eq!(estimate_rows(&db, &half), 5);
    }

    #[test]
    fn join_estimate_uses_key_ndv() {
        // FK-shaped join: Child has 100 rows over 10 parents.
        let mut db = Database::new();
        db.create_table(Schema::build("Parent", &[("id", ValueType::Int)], &[0]).unwrap())
            .unwrap();
        db.create_table(
            Schema::build(
                "Child",
                &[("id", ValueType::Int), ("pid", ValueType::Int)],
                &[0],
            )
            .unwrap(),
        )
        .unwrap();
        for i in 0..10 {
            db.insert("Parent", tup![i]).unwrap();
        }
        for i in 0..100 {
            db.insert("Child", tup![i, i % 10]).unwrap();
        }
        let j = Plan::scan("Child").join(Plan::scan("Parent"), vec![1], vec![0]);
        // 100 * 10 / max(10, 10) = 100: the FK join keeps the child side.
        assert_eq!(estimate_rows(&db, &j), 100);
    }

    #[test]
    fn reorder_picks_selective_leaf_first_and_preserves_results() {
        // big ⋈ big first is quadratic; the tiny filtered leaf should be
        // joined early by the cost-based pass.
        let mut db = Database::new();
        db.create_table(
            Schema::build("A", &[("x", ValueType::Int), ("y", ValueType::Int)], &[0]).unwrap(),
        )
        .unwrap();
        db.create_table(
            Schema::build("B", &[("y", ValueType::Int), ("z", ValueType::Int)], &[0]).unwrap(),
        )
        .unwrap();
        db.create_table(
            Schema::build("C", &[("z", ValueType::Int), ("w", ValueType::Int)], &[0]).unwrap(),
        )
        .unwrap();
        for i in 0..60 {
            db.insert("A", tup![i, i % 3]).unwrap();
            db.insert("B", tup![i, i % 4]).unwrap();
        }
        for i in 0..4 {
            db.insert("C", tup![i, i]).unwrap();
        }
        // ((A ⋈ B on A.y=B.y) ⋈ C on B.z=C.z) filtered to one C row.
        let plan = Plan::scan("A")
            .join(Plan::scan("B"), vec![1], vec![0])
            .join(
                Plan::scan("C").filter(Expr::col(0).eq(Expr::lit(2))),
                vec![3],
                vec![0],
            );
        let opt = optimize_with(&db, plan.clone());
        // The reordering pass must have restructured the chain (a
        // restoring projection appears at the top).
        assert!(
            matches!(opt, Plan::Project { .. }),
            "expected reordered chain, got {opt:?}"
        );
        let want = execute(&db, &plan).unwrap();
        let got = execute(&db, &opt).unwrap();
        assert_eq!(want.names, got.names);
        assert_eq!(want.sorted_rows(), got.sorted_rows());
        // And the reordered chain is estimated cheaper at the top.
        assert!(estimate_rows(&db, &opt) <= estimate_rows(&db, &plan));
    }

    #[test]
    fn reorder_skips_order_sensitive_subtrees() {
        let db = db();
        let chain = Plan::scan("T")
            .join(Plan::scan("T"), vec![0], vec![0])
            .join(Plan::scan("T"), vec![0], vec![0]);
        let plan = Plan::Limit {
            input: Box::new(chain.clone()),
            n: 3,
        };
        let opt = optimize_with_config(
            &db,
            plan.clone(),
            &OptimizerConfig {
                passes: vec![Pass::ReorderJoins],
            },
        );
        // The subtree under LIMIT is untouched.
        assert_eq!(opt, plan);
    }

    #[test]
    fn right_deep_chain_bailout_preserves_schema_names() {
        // Regression: `join_names` duplicate disambiguation is not
        // associative, so a right-deep original (`A ⋈ (B ⋈ C)`) rebuilt
        // left-deep on the bail-out path must keep the restoring
        // projection — the greedy lands on the identity order here
        // (all leaves the same size), which is exactly that path.
        let db = db();
        let plan = Plan::scan("T").join(
            Plan::scan("T").join(Plan::scan("T"), vec![0], vec![0]),
            vec![0],
            vec![0],
        );
        let want = execute(&db, &plan).unwrap();
        let opt = optimize_with_config(
            &db,
            plan,
            &OptimizerConfig {
                passes: vec![Pass::ReorderJoins],
            },
        );
        let got = execute(&db, &opt).unwrap();
        assert_eq!(want.names, got.names, "schema names must be preserved");
        assert_eq!(want.sorted_rows(), got.sorted_rows());
    }

    #[test]
    fn reorder_bails_without_connecting_predicates() {
        let db = db();
        // Pure cross products: nothing to reorder by.
        let plan = Plan::scan("T").join(Plan::scan("T"), vec![], vec![]).join(
            Plan::scan("T"),
            vec![],
            vec![],
        );
        let opt = optimize_with_config(
            &db,
            plan.clone(),
            &OptimizerConfig {
                passes: vec![Pass::ReorderJoins],
            },
        );
        assert_eq!(
            execute(&db, &opt).unwrap().sorted_rows(),
            execute(&db, &plan).unwrap().sorted_rows()
        );
    }

    #[test]
    fn pass_ablation_configs_agree_on_results() {
        let db = db();
        let plan = Plan::scan("T")
            .join(Plan::scan("T"), vec![0], vec![0])
            .join(Plan::scan("T"), vec![1], vec![0])
            .filter(Expr::cmp(BinOp::Le, Expr::col(0), Expr::lit(6)));
        let want = execute(&db, &plan).unwrap().sorted_rows();
        for cfg in [
            OptimizerConfig::default(),
            OptimizerConfig::without(Pass::ReorderJoins),
            OptimizerConfig::without(Pass::PushFilters),
            OptimizerConfig::without(Pass::IndexScans),
            OptimizerConfig::without(Pass::PickBuildSides),
            OptimizerConfig { passes: vec![] },
        ] {
            let opt = optimize_with_config(&db, plan.clone(), &cfg);
            assert_eq!(
                execute(&db, &opt).unwrap().sorted_rows(),
                want,
                "cfg {cfg:?}"
            );
        }
    }
}
