//! Render plans as SQL-ish text.
//!
//! The paper's prototype emits actual SQL for DB2; we execute plans directly,
//! but this renderer reproduces the textual form for debugging, tests, and
//! the `EXPLAIN` output of the examples. It also exposes the paper's
//! scalability limit ("the resulting SQL queries were too large for DB2") as
//! a measurable artifact: generated-SQL length is reported by the benches.

use crate::expr::Expr;
use crate::plan::{JoinType, Plan};
use std::fmt::Write;

/// Render a plan as a SQL-like string (single line per block).
pub fn to_sql(plan: &Plan) -> String {
    let mut ctx = Ctx { next_alias: 0 };
    ctx.render(plan)
}

struct Ctx {
    next_alias: usize,
}

impl Ctx {
    fn alias(&mut self) -> String {
        let a = format!("t{}", self.next_alias);
        self.next_alias += 1;
        a
    }

    fn render(&mut self, plan: &Plan) -> String {
        match plan {
            Plan::Scan { table } => format!("SELECT * FROM {table}"),
            Plan::Values { rows, .. } => {
                let mut s = String::from("VALUES ");
                for (i, r) in rows.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    let _ = write!(s, "{r}");
                }
                s
            }
            Plan::Filter { input, predicate } => {
                let inner = self.render(input);
                let a = self.alias();
                format!("SELECT * FROM ({inner}) {a} WHERE {predicate}")
            }
            Plan::Project {
                input,
                exprs,
                names,
            } => {
                let inner = self.render(input);
                let a = self.alias();
                let cols = exprs
                    .iter()
                    .zip(names)
                    .map(|(e, n)| format!("{e} AS {n}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("SELECT {cols} FROM ({inner}) {a}")
            }
            Plan::Join {
                left,
                right,
                join_type,
                left_keys,
                right_keys,
                ..
            } => {
                let l = self.render(left);
                let r = self.render(right);
                let (la, ra) = (self.alias(), self.alias());
                let kind = match join_type {
                    JoinType::Inner => "JOIN",
                    JoinType::LeftOuter => "LEFT OUTER JOIN",
                    JoinType::RightOuter => "RIGHT OUTER JOIN",
                    JoinType::FullOuter => "FULL OUTER JOIN",
                };
                let on = left_keys
                    .iter()
                    .zip(right_keys)
                    .map(|(lk, rk)| format!("{la}.c{lk} = {ra}.c{rk}"))
                    .collect::<Vec<_>>()
                    .join(" AND ");
                let on = if on.is_empty() {
                    "TRUE".to_string()
                } else {
                    on
                };
                format!("SELECT * FROM ({l}) {la} {kind} ({r}) {ra} ON {on}")
            }
            Plan::Union { inputs, distinct } => {
                let sep = if *distinct { " UNION " } else { " UNION ALL " };
                inputs
                    .iter()
                    .map(|p| format!("({})", self.render(p)))
                    .collect::<Vec<_>>()
                    .join(sep)
            }
            Plan::Distinct { input } => {
                let inner = self.render(input);
                let a = self.alias();
                format!("SELECT DISTINCT * FROM ({inner}) {a}")
            }
            Plan::Aggregate {
                input,
                group_by,
                aggs,
                having,
            } => {
                let inner = self.render(input);
                let a = self.alias();
                let mut cols: Vec<String> = group_by.iter().map(|c| format!("c{c}")).collect();
                for agg in aggs {
                    let arg = agg
                        .func
                        .input_column()
                        .map(|c| format!("c{c}"))
                        .unwrap_or_else(|| "*".into());
                    cols.push(format!("{}({arg}) AS {}", agg.func.sql_name(), agg.name));
                }
                let mut s = format!("SELECT {} FROM ({inner}) {a}", cols.join(", "));
                if !group_by.is_empty() {
                    let _ = write!(
                        s,
                        " GROUP BY {}",
                        group_by
                            .iter()
                            .map(|c| format!("c{c}"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                }
                if let Some(h) = having {
                    let _ = write!(s, " HAVING {}", render_having(h));
                }
                s
            }
            Plan::Sort { input, by } => {
                let inner = self.render(input);
                let a = self.alias();
                format!(
                    "SELECT * FROM ({inner}) {a} ORDER BY {}",
                    by.iter()
                        .map(|c| format!("c{c}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            }
            Plan::Limit { input, n } => {
                let inner = self.render(input);
                format!("{inner} FETCH FIRST {n} ROWS ONLY")
            }
            Plan::IndexLookup {
                table,
                columns,
                key,
                residual,
            } => {
                let mut conds: Vec<String> = columns
                    .iter()
                    .zip(key)
                    .map(|(c, v)| format!("c{c} = {v}"))
                    .collect();
                if let Some(r) = residual {
                    conds.push(r.to_string());
                }
                format!(
                    "SELECT * FROM {table} /* INDEX */ WHERE {}",
                    conds.join(" AND ")
                )
            }
        }
    }
}

fn render_having(h: &Expr) -> String {
    h.to_string()
}

/// Length in bytes of the SQL the plan would produce — the paper's proxy for
/// "query too large for the DBMS" (§6.3).
pub fn sql_len(plan: &Plan) -> usize {
    to_sql(plan).len()
}

/// Render a plan as an indented operator tree, one node per line, with the
/// cost-based optimizer's estimated output rows per operator. This is the
/// body of the ProQL `EXPLAIN` output.
pub fn explain_tree(db: &crate::database::Database, plan: &Plan) -> String {
    let mut out = String::new();
    tree_rec(db, plan, 0, &mut out);
    out
}

/// One-line operator label shared by [`explain_tree`] and
/// [`explain_tree_analyzed`].
fn node_label(plan: &Plan) -> String {
    match plan {
        Plan::Scan { table } => format!("Scan {table}"),
        Plan::Values { rows, .. } => format!("Values ({} rows)", rows.len()),
        Plan::Filter { predicate, .. } => format!("Filter {predicate}"),
        Plan::Project { exprs, .. } => format!("Project [{} exprs]", exprs.len()),
        Plan::Join {
            join_type,
            left_keys,
            right_keys,
            build,
            ..
        } => {
            let on = left_keys
                .iter()
                .zip(right_keys)
                .map(|(l, r)| format!("l{l}=r{r}"))
                .collect::<Vec<_>>()
                .join(",");
            format!("{join_type:?}Join on [{on}] build={build:?}")
        }
        Plan::Union { inputs, distinct } => format!(
            "Union{} ({} inputs)",
            if *distinct { " DISTINCT" } else { " ALL" },
            inputs.len()
        ),
        Plan::Distinct { .. } => "Distinct".to_string(),
        Plan::Aggregate { group_by, aggs, .. } => format!(
            "Aggregate group_by={group_by:?} aggs=[{}]",
            aggs.iter()
                .map(|a| format!("{}({:?})", a.func.sql_name(), a.func.input_column()))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Plan::Sort { by, .. } => format!("Sort by {by:?}"),
        Plan::Limit { n, .. } => format!("Limit {n}"),
        Plan::IndexLookup {
            table,
            columns,
            key,
            residual,
        } => {
            let binds = columns
                .iter()
                .zip(key)
                .map(|(c, v)| format!("c{c}={v}"))
                .collect::<Vec<_>>()
                .join(",");
            format!(
                "IndexLookup {table} [{binds}]{}",
                if residual.is_some() { " +residual" } else { "" }
            )
        }
    }
}

fn tree_rec(db: &crate::database::Database, plan: &Plan, indent: usize, out: &mut String) {
    let est = crate::optimize::estimate_rows(db, plan);
    let pad = "  ".repeat(indent);
    let line = format!("{pad}{}", node_label(plan));
    let _ = writeln!(out, "{line:<56} ~{est} rows");
    for_each_rendered_child(plan, |child| tree_rec(db, child, indent + 1, out));
}

/// Visit the children the plan renderer descends into, in render order
/// (single input; Join: left then right; Union: inputs in order; leaves
/// and view bodies: none). The profiled executor reserves stat slots in
/// exactly this pre-order, which is what lets `stats[i]` annotate line
/// `i`.
fn for_each_rendered_child<'p>(plan: &'p Plan, mut f: impl FnMut(&'p Plan)) {
    match plan {
        Plan::Filter { input, .. }
        | Plan::Project { input, .. }
        | Plan::Distinct { input }
        | Plan::Aggregate { input, .. }
        | Plan::Sort { input, .. }
        | Plan::Limit { input, .. } => f(input),
        Plan::Join { left, right, .. } => {
            f(left);
            f(right);
        }
        Plan::Union { inputs, .. } => {
            for p in inputs {
                f(p);
            }
        }
        Plan::Scan { .. } | Plan::Values { .. } | Plan::IndexLookup { .. } => {}
    }
}

/// [`explain_tree`] annotated with **actual** per-operator row counts and
/// inclusive wall times from [`crate::batch_exec::execute_batch_profiled`]
/// — the body of `EXPLAIN ANALYZE`. `stats` must come from profiling the
/// same plan; missing slots (e.g. an operator short-circuited by an
/// error) render as estimates only.
pub fn explain_tree_analyzed(
    db: &crate::database::Database,
    plan: &Plan,
    stats: &[crate::batch_exec::OpStat],
) -> String {
    let mut out = String::new();
    let mut idx = 0usize;
    analyzed_rec(db, plan, 0, stats, &mut idx, &mut out);
    out
}

fn analyzed_rec(
    db: &crate::database::Database,
    plan: &Plan,
    indent: usize,
    stats: &[crate::batch_exec::OpStat],
    idx: &mut usize,
    out: &mut String,
) {
    let est = crate::optimize::estimate_rows(db, plan);
    let pad = "  ".repeat(indent);
    let line = format!("{pad}{}", node_label(plan));
    match stats.get(*idx) {
        Some(s) => {
            // Zone-map and selection-vector telemetry, when the operator
            // produced any: scans report morsels skipped without reading,
            // row-dropping operators report selection-vector density.
            let mut extra = String::new();
            if s.morsels_skipped > 0 {
                let _ = write!(extra, "  skipped {} morsels", s.morsels_skipped);
            }
            if let Some(d) = s.sel_density {
                let _ = write!(extra, "  sel {:.1}%", d * 100.0);
            }
            let _ = writeln!(
                out,
                "{line:<56} ~{est} rows  actual {} rows in {:.3} ms{extra}",
                s.rows,
                s.nanos as f64 / 1e6
            );
        }
        None => {
            let _ = writeln!(out, "{line:<56} ~{est} rows");
        }
    }
    *idx += 1;
    for_each_rendered_child(plan, |child| {
        analyzed_rec(db, child, indent + 1, stats, idx, out)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{AggFunc, Aggregate};

    #[test]
    fn renders_scan_filter_join() {
        let p = Plan::scan("A").filter(Expr::col(0).eq(Expr::lit(1))).join(
            Plan::scan("B"),
            vec![0],
            vec![1],
        );
        let sql = to_sql(&p);
        assert!(sql.contains("FROM A"));
        assert!(sql.contains("JOIN"));
        assert!(sql.contains("WHERE (c0 = 1)"));
    }

    #[test]
    fn renders_union_all_group_by_having() {
        let p = Plan::Aggregate {
            input: Box::new(Plan::union_all(vec![Plan::scan("P1"), Plan::scan("P2")])),
            group_by: vec![0],
            aggs: vec![Aggregate::new(AggFunc::Sum(1), "prov")],
            having: Some(Expr::cmp(
                crate::expr::BinOp::Gt,
                Expr::col(1),
                Expr::lit(0),
            )),
        };
        let sql = to_sql(&p);
        assert!(sql.contains("UNION ALL"));
        assert!(sql.contains("GROUP BY c0"));
        assert!(sql.contains("HAVING"));
        assert!(sql.contains("SUM(c1) AS prov"));
    }

    #[test]
    fn outer_join_keywords() {
        let p = Plan::scan("A").join_as(Plan::scan("B"), JoinType::FullOuter, vec![0], vec![0]);
        assert!(to_sql(&p).contains("FULL OUTER JOIN"));
    }

    #[test]
    fn sql_len_grows_with_plan() {
        let small = Plan::scan("A");
        let big = Plan::union_all(vec![Plan::scan("A"); 10]);
        assert!(sql_len(&big) > sql_len(&small));
    }

    #[test]
    fn explain_tree_shows_operators_and_estimates() {
        use proql_common::{tup, Schema, ValueType};
        let mut db = crate::database::Database::new();
        db.create_table(
            Schema::build("A", &[("id", ValueType::Int), ("v", ValueType::Int)], &[0]).unwrap(),
        )
        .unwrap();
        for i in 0..8 {
            db.insert("A", tup![i, i]).unwrap();
        }
        let plan = Plan::scan("A")
            .join(Plan::scan("A"), vec![0], vec![0])
            .filter(Expr::col(0).eq(Expr::lit(1)));
        let text = explain_tree(&db, &plan);
        assert!(text.contains("Filter"), "{text}");
        assert!(text.contains("InnerJoin"), "{text}");
        assert!(text.contains("Scan A"), "{text}");
        assert!(text.contains("~8 rows"), "{text}");
        // Every line carries an estimate.
        assert!(text.lines().all(|l| l.contains(" rows")), "{text}");
    }

    #[test]
    fn analyzed_tree_aligns_actuals_with_operators() {
        use proql_common::{tup, Parallelism, Schema, ValueType};
        let mut db = crate::database::Database::new();
        db.create_table(
            Schema::build("A", &[("id", ValueType::Int), ("v", ValueType::Int)], &[0]).unwrap(),
        )
        .unwrap();
        for i in 0..8 {
            db.insert("A", tup![i, i]).unwrap();
        }
        let plan = Plan::scan("A")
            .join(Plan::scan("A"), vec![0], vec![0])
            .filter(Expr::col(0).eq(Expr::lit(1)));
        let (batch, stats) =
            crate::batch_exec::execute_batch_profiled(&db, &plan, Parallelism::Serial).unwrap();
        // One stat per rendered line, in the same order.
        let text = explain_tree_analyzed(&db, &plan, &stats);
        assert_eq!(stats.len(), text.lines().count(), "{text}");
        assert!(text.lines().all(|l| l.contains("actual")), "{text}");
        // The root line's actual row count is the query's result size.
        let root = text.lines().next().unwrap();
        assert!(root.starts_with("Filter"), "{text}");
        assert!(
            root.contains(&format!("actual {} rows", batch.len())),
            "{text}"
        );
        // The two scans each produced all 8 base rows.
        assert_eq!(
            text.lines()
                .filter(|l| l.trim_start().starts_with("Scan A") && l.contains("actual 8 rows"))
                .count(),
            2,
            "{text}"
        );
    }

    #[test]
    fn analyzed_tree_reports_zone_skips_and_selection_density() {
        use proql_common::{tup, Parallelism, Schema, ValueType};
        let mut db = crate::database::Database::new();
        db.create_table(
            Schema::build("A", &[("id", ValueType::Int), ("v", ValueType::Int)], &[0]).unwrap(),
        )
        .unwrap();
        // Three zones of ascending ids; `id < 10` prunes the last two.
        let n = crate::zone::ZONE_ROWS as i64 * 3;
        for i in 0..n {
            db.insert("A", tup![i, i % 7]).unwrap();
        }
        let plan = Plan::scan("A").filter(Expr::cmp(
            crate::expr::BinOp::Lt,
            Expr::col(0),
            Expr::lit(10),
        ));
        let (batch, stats) =
            crate::batch_exec::execute_batch_profiled(&db, &plan, Parallelism::Serial).unwrap();
        assert_eq!(batch.len(), 10);
        let text = explain_tree_analyzed(&db, &plan, &stats);
        assert_eq!(stats.len(), text.lines().count(), "{text}");
        let scan = text
            .lines()
            .find(|l| l.trim_start().starts_with("Scan A"))
            .unwrap();
        assert!(scan.contains("skipped 2 morsels"), "{text}");
        let filter = text.lines().find(|l| l.starts_with("Filter")).unwrap();
        assert!(filter.contains("sel "), "{text}");
    }
}
