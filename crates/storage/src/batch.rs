//! Columnar batches: typed column vectors plus [`RecordBatch`].
//!
//! This is the data layout of the batch executor ([`crate::batch_exec`]).
//! A column is stored as a typed vector when every value shares one type
//! and no NULLs occur (`Int`/`Float`/`Bool`/`Str`), and degrades to a boxed
//! [`Value`] vector (`Any`) otherwise — dynamically typed plans (anonymous
//! schemas, outer-join padding) stay correct while the hot provenance
//! workload (dense integer `P_m` columns) runs on flat `Vec<i64>`s.
//!
//! Expression evaluation is vectorized: [`eval_expr`] produces a whole
//! column per operator, and [`eval_mask`] produces a selection mask with
//! SQL filter semantics (NULL counts as false).

use crate::dict::Dictionary;
use crate::expr::{BinOp, Expr};
use proql_common::{Error, Result, Tuple, Value};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A column of values, typed when homogeneous and non-null.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Dense 64-bit integers.
    Int(Vec<i64>),
    /// Dense 64-bit floats.
    Float(Vec<f64>),
    /// Dense booleans.
    Bool(Vec<bool>),
    /// Dense strings (shared, like [`Value::Str`]).
    Str(Vec<Arc<str>>),
    /// Dictionary-encoded strings: `u32` codes into a shared dictionary.
    /// Null-free like `Str`; scans of nullable string columns degrade to
    /// `Any`. Decodes to the same `Value::Str` values as the `Str`
    /// representation — only comparisons get cheaper.
    Dict {
        /// Per-row codes; every code is valid in `dict`.
        codes: Vec<u32>,
        /// The interning table the codes point into.
        dict: Arc<Dictionary>,
    },
    /// Mixed-typed or nullable fallback.
    Any(Vec<Value>),
}

impl Column {
    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Bool(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::Dict { codes, .. } => codes.len(),
            Column::Any(v) => v.len(),
        }
    }

    /// True iff no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at `row` (clones; `Str`/`Any` clones are refcount bumps).
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Int(v) => Value::Int(v[row]),
            Column::Float(v) => Value::Float(v[row]),
            Column::Bool(v) => Value::Bool(v[row]),
            Column::Str(v) => Value::Str(v[row].clone()),
            Column::Dict { codes, dict } => Value::Str(dict.get(codes[row]).clone()),
            Column::Any(v) => v[row].clone(),
        }
    }

    /// True iff the value at `row` is NULL.
    pub fn is_null(&self, row: usize) -> bool {
        match self {
            Column::Any(v) => v[row].is_null(),
            _ => false,
        }
    }

    /// Build a column from an iterator of values, choosing the densest
    /// representation that fits.
    pub fn from_values(values: impl IntoIterator<Item = Value>) -> Column {
        let vals: Vec<Value> = values.into_iter().collect();
        Column::from_value_vec(vals)
    }

    /// Build from an owned value vector (see [`Column::from_values`]).
    pub fn from_value_vec(vals: Vec<Value>) -> Column {
        fn all<T>(vals: &[Value], f: impl Fn(&Value) -> Option<T>) -> Option<Vec<T>> {
            vals.iter().map(f).collect()
        }
        if vals.is_empty() {
            return Column::Any(vals);
        }
        match &vals[0] {
            Value::Int(_) => {
                if let Some(v) = all(&vals, Value::as_int) {
                    return Column::Int(v);
                }
            }
            Value::Float(_) => {
                if let Some(v) = all(&vals, |x| match x {
                    Value::Float(f) => Some(*f),
                    _ => None,
                }) {
                    return Column::Float(v);
                }
            }
            Value::Bool(_) => {
                if let Some(v) = all(&vals, Value::as_bool) {
                    return Column::Bool(v);
                }
            }
            Value::Str(_) => {
                if let Some(v) = all(&vals, |x| match x {
                    Value::Str(s) => Some(s.clone()),
                    _ => None,
                }) {
                    return Column::Str(v);
                }
            }
            Value::Null => {}
        }
        Column::Any(vals)
    }

    /// Keep the rows where `mask` is true.
    pub fn filter(&self, mask: &[bool]) -> Column {
        fn keep<T: Clone>(v: &[T], mask: &[bool]) -> Vec<T> {
            v.iter()
                .zip(mask)
                .filter(|&(_, &m)| m)
                .map(|(x, _)| x.clone())
                .collect()
        }
        match self {
            Column::Int(v) => Column::Int(keep(v, mask)),
            Column::Float(v) => Column::Float(keep(v, mask)),
            Column::Bool(v) => Column::Bool(keep(v, mask)),
            Column::Str(v) => Column::Str(keep(v, mask)),
            Column::Dict { codes, dict } => Column::Dict {
                codes: keep(codes, mask),
                dict: dict.clone(),
            },
            Column::Any(v) => Column::Any(keep(v, mask)),
        }
    }

    /// Take the rows at `indices` (in order, repeats allowed).
    pub fn gather(&self, indices: &[u32]) -> Column {
        fn take<T: Clone>(v: &[T], idx: &[u32]) -> Vec<T> {
            idx.iter().map(|&i| v[i as usize].clone()).collect()
        }
        match self {
            Column::Int(v) => Column::Int(take(v, indices)),
            Column::Float(v) => Column::Float(take(v, indices)),
            Column::Bool(v) => Column::Bool(take(v, indices)),
            Column::Str(v) => Column::Str(take(v, indices)),
            Column::Dict { codes, dict } => Column::Dict {
                codes: take(codes, indices),
                dict: dict.clone(),
            },
            Column::Any(v) => Column::Any(take(v, indices)),
        }
    }

    /// Copy out the contiguous row range `r` (used by morsel-parallel
    /// operators; representation is preserved).
    pub fn slice(&self, r: std::ops::Range<usize>) -> Column {
        match self {
            Column::Int(v) => Column::Int(v[r].to_vec()),
            Column::Float(v) => Column::Float(v[r].to_vec()),
            Column::Bool(v) => Column::Bool(v[r].to_vec()),
            Column::Str(v) => Column::Str(v[r].to_vec()),
            Column::Dict { codes, dict } => Column::Dict {
                codes: codes[r].to_vec(),
                dict: dict.clone(),
            },
            Column::Any(v) => Column::Any(v[r].to_vec()),
        }
    }

    /// Take the rows at `indices`, producing NULL for `None`. All-`Some`
    /// index vectors keep the typed representation.
    pub fn gather_opt(&self, indices: &[Option<u32>]) -> Column {
        if indices.iter().all(Option::is_some) {
            let dense: Vec<u32> = indices.iter().map(|i| i.expect("checked")).collect();
            return self.gather(&dense);
        }
        Column::Any(
            indices
                .iter()
                .map(|i| match i {
                    Some(i) => self.value(*i as usize),
                    None => Value::Null,
                })
                .collect(),
        )
    }

    /// Append `other`'s values, degrading the representation if the types
    /// differ.
    pub fn append(self, other: Column) -> Column {
        match (self, other) {
            (Column::Int(mut a), Column::Int(b)) => {
                a.extend(b);
                Column::Int(a)
            }
            (Column::Float(mut a), Column::Float(b)) => {
                a.extend(b);
                Column::Float(a)
            }
            (Column::Bool(mut a), Column::Bool(b)) => {
                a.extend(b);
                Column::Bool(a)
            }
            (Column::Str(mut a), Column::Str(b)) => {
                a.extend(b);
                Column::Str(a)
            }
            (
                Column::Dict { mut codes, dict },
                Column::Dict {
                    codes: bc,
                    dict: bd,
                },
            ) if Arc::ptr_eq(&dict, &bd) => {
                codes.extend(bc);
                Column::Dict { codes, dict }
            }
            // Mixed string representations decode the dictionary side so
            // the result stays a plain string column (as it would be with
            // dictionaries disabled).
            (a, b) if a.is_string() && b.is_string() => {
                if a.is_empty() {
                    return b;
                }
                if b.is_empty() {
                    return a;
                }
                let mut s = a.to_str_vec();
                s.extend(b.to_str_vec());
                Column::Str(s)
            }
            (a, b) => {
                // Empty columns adopt the other side's representation so a
                // union of an empty branch does not degrade to Any.
                if a.is_empty() {
                    return b;
                }
                if b.is_empty() {
                    return a;
                }
                let mut vals: Vec<Value> = (0..a.len()).map(|i| a.value(i)).collect();
                vals.extend((0..b.len()).map(|i| b.value(i)));
                Column::Any(vals)
            }
        }
    }

    /// A column of `n` NULLs.
    pub fn nulls(n: usize) -> Column {
        Column::Any(vec![Value::Null; n])
    }

    /// True for both null-free string representations.
    fn is_string(&self) -> bool {
        matches!(self, Column::Str(_) | Column::Dict { .. })
    }

    /// Decode a string column (either representation) to shared strings.
    fn to_str_vec(&self) -> Vec<Arc<str>> {
        match self {
            Column::Str(v) => v.clone(),
            Column::Dict { codes, dict } => codes.iter().map(|&c| dict.get(c).clone()).collect(),
            _ => unreachable!("to_str_vec on non-string column"),
        }
    }

    /// Hash the value at `row` consistently with [`Value`]'s `Hash` impl.
    pub(crate) fn hash_value_into<H: Hasher>(&self, row: usize, state: &mut H) {
        match self {
            Column::Int(v) => Value::Int(v[row]).hash(state),
            Column::Float(v) => Value::Float(v[row]).hash(state),
            Column::Bool(v) => Value::Bool(v[row]).hash(state),
            Column::Str(v) => {
                state.write_u8(3);
                v[row].hash(state);
            }
            Column::Dict { codes, dict } => {
                state.write_u8(3);
                dict.get(codes[row]).hash(state);
            }
            Column::Any(v) => v[row].hash(state),
        }
    }

    /// The code vector and dictionary, for dictionary-encoded columns.
    pub(crate) fn dict_parts(&self) -> Option<(&[u32], &Arc<Dictionary>)> {
        match self {
            Column::Dict { codes, dict } => Some((codes, dict)),
            _ => None,
        }
    }

    /// Value equality between two column cells, matching [`Value`]'s `Eq`.
    pub fn value_eq(&self, row: usize, other: &Column, other_row: usize) -> bool {
        match (self, other) {
            (Column::Int(a), Column::Int(b)) => a[row] == b[other_row],
            (Column::Str(a), Column::Str(b)) => a[row] == b[other_row],
            (Column::Bool(a), Column::Bool(b)) => a[row] == b[other_row],
            (Column::Dict { codes: a, dict: da }, Column::Dict { codes: b, dict: db }) => {
                if Arc::ptr_eq(da, db) {
                    a[row] == b[other_row]
                } else {
                    da.get(a[row]) == db.get(b[other_row])
                }
            }
            (Column::Dict { codes, dict }, Column::Str(b)) => *dict.get(codes[row]) == b[other_row],
            (Column::Str(a), Column::Dict { codes, dict }) => a[row] == *dict.get(codes[other_row]),
            _ => self.value(row) == other.value(other_row),
        }
    }
}

/// A batch of rows in columnar layout.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordBatch {
    /// Output column names.
    pub names: Vec<String>,
    /// Columns, all of length [`RecordBatch::len`].
    pub columns: Vec<Column>,
    rows: usize,
}

impl RecordBatch {
    /// Build from columns (all must share one length).
    pub fn new(names: Vec<String>, columns: Vec<Column>, rows: usize) -> RecordBatch {
        debug_assert!(columns.iter().all(|c| c.len() == rows));
        debug_assert_eq!(names.len(), columns.len());
        RecordBatch {
            names,
            columns,
            rows,
        }
    }

    /// An empty batch with the given column names.
    pub fn empty(names: Vec<String>) -> RecordBatch {
        let columns = names.iter().map(|_| Column::Any(Vec::new())).collect();
        RecordBatch {
            names,
            columns,
            rows: 0,
        }
    }

    /// Transpose a row-oriented relation into columns.
    pub fn from_rows<'a>(names: Vec<String>, rows: impl Iterator<Item = &'a Tuple>) -> RecordBatch {
        let arity = names.len();
        let mut cols: Vec<Vec<Value>> = (0..arity).map(|_| Vec::new()).collect();
        let mut n = 0;
        for row in rows {
            n += 1;
            for (c, v) in row.iter().enumerate() {
                cols[c].push(v.clone());
            }
        }
        RecordBatch {
            names,
            columns: cols.into_iter().map(Column::from_value_vec).collect(),
            rows: n,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True iff no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Materialize one row.
    pub fn row(&self, i: usize) -> Tuple {
        Tuple::new(self.columns.iter().map(|c| c.value(i)).collect())
    }

    /// Transpose back into row orientation.
    pub fn to_rows(&self) -> Vec<Tuple> {
        (0..self.rows).map(|i| self.row(i)).collect()
    }

    /// Keep the rows where `mask` is true.
    pub fn filter(&self, mask: &[bool]) -> RecordBatch {
        let rows = mask.iter().filter(|&&m| m).count();
        RecordBatch {
            names: self.names.clone(),
            columns: self.columns.iter().map(|c| c.filter(mask)).collect(),
            rows,
        }
    }

    /// Take the rows at `indices`.
    pub fn gather(&self, indices: &[u32]) -> RecordBatch {
        RecordBatch {
            names: self.names.clone(),
            columns: self.columns.iter().map(|c| c.gather(indices)).collect(),
            rows: indices.len(),
        }
    }

    /// Copy out the contiguous row range `r` as its own batch.
    pub fn slice(&self, r: std::ops::Range<usize>) -> RecordBatch {
        RecordBatch {
            names: self.names.clone(),
            columns: self.columns.iter().map(|c| c.slice(r.clone())).collect(),
            rows: r.len(),
        }
    }

    /// Per-row hashes of the key columns, consistent with `Tuple` hashing
    /// semantics (equal values hash equal regardless of representation).
    pub fn key_hashes(&self, keys: &[usize]) -> Vec<u64> {
        self.key_hashes_range(keys, 0..self.rows)
    }

    /// [`RecordBatch::key_hashes`] restricted to a row range (the unit of
    /// morsel-parallel hashing; hashes depend only on values, so the
    /// parallel concatenation equals the serial whole-batch pass).
    pub fn key_hashes_range(&self, keys: &[usize], r: std::ops::Range<usize>) -> Vec<u64> {
        let cols: Vec<&Column> = keys.iter().map(|&k| &self.columns[k]).collect();
        r.map(|row| {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            for c in &cols {
                c.hash_value_into(row, &mut h);
            }
            h.finish()
        })
        .collect()
    }

    /// Parallel [`RecordBatch::key_hashes`]: morsels hashed on worker
    /// threads, concatenated in morsel order.
    pub fn key_hashes_par(&self, keys: &[usize], par: proql_common::Parallelism) -> Vec<u64> {
        use proql_common::par::{morsel_ranges, par_map, MORSEL_ROWS};
        let threads = par.threads();
        if threads <= 1 || self.rows <= MORSEL_ROWS {
            return self.key_hashes(keys);
        }
        let ranges = morsel_ranges(self.rows);
        let parts = par_map(ranges.len(), threads, |i| {
            self.key_hashes_range(keys, ranges[i].clone())
        });
        let mut out = Vec::with_capacity(self.rows);
        for p in parts {
            out.extend(p);
        }
        out
    }

    /// True iff any key column holds NULL at `row`.
    pub fn key_has_null(&self, keys: &[usize], row: usize) -> bool {
        keys.iter().any(|&k| self.columns[k].is_null(row))
    }

    /// Key equality between a row of `self` and a row of `other`.
    pub fn keys_eq(
        &self,
        keys: &[usize],
        row: usize,
        other: &RecordBatch,
        other_keys: &[usize],
        other_row: usize,
    ) -> bool {
        keys.iter()
            .zip(other_keys)
            .all(|(&a, &b)| self.columns[a].value_eq(row, &other.columns[b], other_row))
    }
}

/// Evaluate `expr` over every row of `batch`, producing one column.
pub fn eval_expr(expr: &Expr, batch: &RecordBatch) -> Result<Column> {
    let n = batch.len();
    match expr {
        Expr::Col(i) => batch
            .columns
            .get(*i)
            .cloned()
            .ok_or_else(|| Error::Storage(format!("column {i} out of range"))),
        Expr::Lit(v) => Ok(match v {
            Value::Int(x) => Column::Int(vec![*x; n]),
            Value::Float(x) => Column::Float(vec![*x; n]),
            Value::Bool(x) => Column::Bool(vec![*x; n]),
            Value::Str(s) => Column::Str(vec![s.clone(); n]),
            Value::Null => Column::nulls(n),
        }),
        Expr::Bin(op, a, b) => {
            let ca = eval_expr(a, batch)?;
            let cb = eval_expr(b, batch)?;
            eval_bin_columns(*op, &ca, &cb)
        }
        Expr::And(ps) => {
            let mut acc = vec![true; n];
            for p in ps {
                let m = eval_mask(p, batch)?;
                for (a, b) in acc.iter_mut().zip(&m) {
                    *a = *a && *b;
                }
            }
            Ok(Column::Bool(acc))
        }
        Expr::Or(ps) => {
            let mut acc = vec![false; n];
            for p in ps {
                let m = eval_mask(p, batch)?;
                for (a, b) in acc.iter_mut().zip(&m) {
                    *a = *a || *b;
                }
            }
            Ok(Column::Bool(acc))
        }
        Expr::Not(p) => {
            let m = eval_mask(p, batch)?;
            Ok(Column::Bool(m.into_iter().map(|b| !b).collect()))
        }
        Expr::IsNull(e) => {
            let c = eval_expr(e, batch)?;
            Ok(Column::Bool((0..n).map(|i| c.is_null(i)).collect()))
        }
    }
}

/// Evaluate a predicate into a selection mask. SQL filter semantics: NULL
/// counts as false; non-boolean non-null results are errors.
pub fn eval_mask(expr: &Expr, batch: &RecordBatch) -> Result<Vec<bool>> {
    match eval_expr(expr, batch)? {
        Column::Bool(v) => Ok(v),
        Column::Any(v) => v
            .iter()
            .map(|x| match x {
                Value::Bool(b) => Ok(*b),
                Value::Null => Ok(false),
                other => Err(Error::Storage(format!(
                    "predicate evaluated to non-boolean {other}"
                ))),
            })
            .collect(),
        other if other.is_empty() => Ok(Vec::new()),
        other => Err(Error::Storage(format!(
            "predicate evaluated to non-boolean column {other:?}"
        ))),
    }
}

fn eval_bin_columns(op: BinOp, a: &Column, b: &Column) -> Result<Column> {
    use BinOp::*;
    let n = a.len().max(b.len());
    // Typed fast path: both dense Int.
    if let (Column::Int(x), Column::Int(y)) = (a, b) {
        return Ok(match op {
            Eq => Column::Bool(x.iter().zip(y).map(|(p, q)| p == q).collect()),
            Ne => Column::Bool(x.iter().zip(y).map(|(p, q)| p != q).collect()),
            Lt => Column::Bool(x.iter().zip(y).map(|(p, q)| p < q).collect()),
            Le => Column::Bool(x.iter().zip(y).map(|(p, q)| p <= q).collect()),
            Gt => Column::Bool(x.iter().zip(y).map(|(p, q)| p > q).collect()),
            Ge => Column::Bool(x.iter().zip(y).map(|(p, q)| p >= q).collect()),
            Add => Column::Int(x.iter().zip(y).map(|(p, q)| p.wrapping_add(*q)).collect()),
            Sub => Column::Int(x.iter().zip(y).map(|(p, q)| p.wrapping_sub(*q)).collect()),
            Mul => Column::Int(x.iter().zip(y).map(|(p, q)| p.wrapping_mul(*q)).collect()),
        });
    }
    // Dictionary fast path: equality against a broadcast string literal or
    // a same-dictionary column runs on u32 codes, no string compares.
    if matches!(op, Eq | Ne) {
        if let Some(out) = dict_eq_columns(op == Eq, a, b) {
            return Ok(out);
        }
    }
    // Generic path: elementwise over values, with the row executor's exact
    // semantics (total Eq, NULL-propagating arithmetic).
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(crate::expr::eval_bin(op, &a.value(i), &b.value(i))?);
    }
    Ok(Column::from_value_vec(out))
}

/// Code-compare fast path for `=` / `<>` involving a dictionary column.
/// Returns `None` when the shapes don't allow it (the generic path is
/// value-identical, just slower).
fn dict_eq_columns(eq: bool, a: &Column, b: &Column) -> Option<Column> {
    let (codes, dict, other) = match (a.dict_parts(), b.dict_parts()) {
        (Some((ca, da)), Some((cb, db))) => {
            if Arc::ptr_eq(da, db) {
                let out = ca.iter().zip(cb).map(|(x, y)| (x == y) == eq).collect();
                return Some(Column::Bool(out));
            }
            // Differing dictionaries: equal codes still mean equal strings
            // only within one dictionary, so fall back.
            return None;
        }
        (Some((c, d)), None) => (c, d, b),
        (None, Some((c, d))) => (c, d, a),
        (None, None) => return None,
    };
    match other {
        Column::Str(s) if s.is_empty() => Some(Column::Bool(Vec::new())),
        // A literal broadcast by `eval_expr` clones one Arc per row; a
        // single `code_of` lookup then decides every row.
        Column::Str(s) if s.iter().all(|x| Arc::ptr_eq(x, &s[0])) => {
            let out = match dict.code_of(&s[0]) {
                Some(k) => codes.iter().map(|&c| (c == k) == eq).collect(),
                None => vec![!eq; codes.len()],
            };
            Some(Column::Bool(out))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proql_common::tup;

    fn batch() -> RecordBatch {
        let rows = [tup![1, "a", 1.5], tup![2, "b", 2.5], tup![3, "a", 3.5]];
        RecordBatch::from_rows(vec!["id".into(), "s".into(), "f".into()], rows.iter())
    }

    #[test]
    fn typed_columns_are_inferred() {
        let b = batch();
        assert!(matches!(b.columns[0], Column::Int(_)));
        assert!(matches!(b.columns[1], Column::Str(_)));
        assert!(matches!(b.columns[2], Column::Float(_)));
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn mixed_or_null_columns_degrade_to_any() {
        let rows = [tup![1], Tuple::new(vec![Value::Null])];
        let b = RecordBatch::from_rows(vec!["x".into()], rows.iter());
        assert!(matches!(b.columns[0], Column::Any(_)));
        assert!(b.columns[0].is_null(1));
    }

    #[test]
    fn round_trip_rows() {
        let b = batch();
        assert_eq!(
            b.to_rows(),
            vec![tup![1, "a", 1.5], tup![2, "b", 2.5], tup![3, "a", 3.5]]
        );
    }

    #[test]
    fn filter_and_gather() {
        let b = batch();
        let f = b.filter(&[true, false, true]);
        assert_eq!(f.len(), 2);
        assert_eq!(f.row(1), tup![3, "a", 3.5]);
        let g = b.gather(&[2, 0, 2]);
        assert_eq!(g.len(), 3);
        assert_eq!(g.row(0), tup![3, "a", 3.5]);
        assert_eq!(g.row(1), tup![1, "a", 1.5]);
    }

    #[test]
    fn vectorized_predicates() {
        let b = batch();
        let mask = eval_mask(&Expr::col(0).eq(Expr::lit(2)), &b).unwrap();
        assert_eq!(mask, vec![false, true, false]);
        let mask = eval_mask(&Expr::cmp(BinOp::Ge, Expr::col(2), Expr::lit(2.0)), &b).unwrap();
        assert_eq!(mask, vec![false, true, true]);
    }

    #[test]
    fn vectorized_arithmetic_matches_row_eval() {
        let b = batch();
        let c = eval_expr(&Expr::cmp(BinOp::Add, Expr::col(0), Expr::lit(10)), &b).unwrap();
        assert_eq!(c, Column::Int(vec![11, 12, 13]));
        // Int + Float widens.
        let c = eval_expr(&Expr::cmp(BinOp::Mul, Expr::col(0), Expr::col(2)), &b).unwrap();
        assert_eq!(c, Column::Float(vec![1.5, 5.0, 10.5]));
    }

    #[test]
    fn null_predicate_is_false_in_mask() {
        let rows = [Tuple::new(vec![Value::Null]), tup![1]];
        let b = RecordBatch::from_rows(vec!["x".into()], rows.iter());
        let mask = eval_mask(&Expr::col(0).eq(Expr::lit(1)), &b).unwrap();
        // NULL = 1 is plain false under total Eq; 1 = 1 is true.
        assert_eq!(mask, vec![false, true]);
        let mask = eval_mask(&Expr::IsNull(Box::new(Expr::col(0))), &b).unwrap();
        assert_eq!(mask, vec![true, false]);
    }

    #[test]
    fn key_hashes_agree_across_representations() {
        // Same logical values, one dense Int column, one Any column.
        let dense = RecordBatch::new(vec!["k".into()], vec![Column::Int(vec![1, 2, 3])], 3);
        let boxed = RecordBatch::new(
            vec!["k".into()],
            vec![Column::Any(vec![
                Value::Int(1),
                Value::Int(2),
                Value::Int(3),
            ])],
            3,
        );
        assert_eq!(dense.key_hashes(&[0]), boxed.key_hashes(&[0]));
        assert!(dense.keys_eq(&[0], 1, &boxed, &[0], 1));
    }

    #[test]
    fn append_preserves_typed_columns() {
        let a = Column::Int(vec![1, 2]);
        let b = Column::Int(vec![3]);
        assert_eq!(a.append(b), Column::Int(vec![1, 2, 3]));
        let mixed = Column::Int(vec![1]).append(Column::Str(vec![Arc::from("x")]));
        assert!(matches!(mixed, Column::Any(_)));
        // Appending to an empty column adopts the non-empty side.
        let e = Column::Any(Vec::new()).append(Column::Int(vec![7]));
        assert_eq!(e, Column::Int(vec![7]));
    }
}
