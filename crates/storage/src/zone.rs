//! Per-morsel zone maps: min/max/null-count per column, per 1024-row zone.
//!
//! A zone covers one morsel-sized range of a table's *physical* row vector
//! (tombstones included), so zone boundaries line up with the parallel
//! executor's morsels and a zone index is just `row_pos / MORSEL_ROWS`.
//! Bounds are maintained incrementally like [`crate::stats`]: inserts widen
//! min/max exactly, deletes only decrement the live/null counters and leave
//! the bounds loose — loose bounds are safe (they can only prevent a skip,
//! never cause a wrong one) and [`Table::compact`](crate::table::Table)
//! rebuilds tight bounds when tombstones are collected.
//!
//! Pruning is exact with respect to the executor's comparison semantics:
//! `=`/`<`/`<=`/`>`/`>=` all use [`Value`]'s total order (NULL sorts first,
//! types are ranked), so an interval test on [min, max] over *all* live
//! values — nulls included — decides satisfiability without any type or
//! null special-casing.

use crate::expr::BinOp;
use proql_common::par::MORSEL_ROWS;
use proql_common::{Tuple, Value};

/// Rows per zone; equal to the executor's morsel size so "morsels skipped"
/// in `EXPLAIN ANALYZE` counts these.
pub const ZONE_ROWS: usize = MORSEL_ROWS;

/// One zone's per-column summary.
#[derive(Debug, Clone, Default, PartialEq)]
struct ColZone {
    /// Smallest live value ever inserted (total [`Value`] order, loose
    /// under deletes).
    min: Option<Value>,
    /// Largest live value ever inserted (loose under deletes).
    max: Option<Value>,
    /// Exact count of live NULLs.
    nulls: u32,
}

/// One zone: live-row counter plus a [`ColZone`] per column.
#[derive(Debug, Clone, Default, PartialEq)]
struct Zone {
    live: u32,
    cols: Vec<ColZone>,
}

/// Incrementally-maintained zone maps for one table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ZoneMaps {
    arity: usize,
    zones: Vec<Zone>,
}

/// A predicate conjunct a zone can rule out: a column compared to a
/// literal, or a null test. Extracted from plan predicates by the executor.
#[derive(Debug, Clone)]
pub enum ZonePred {
    /// `col <op> lit` where `op` is a comparison.
    Cmp(usize, BinOp, Value),
    /// `col IS NULL`.
    IsNull(usize),
}

impl ZoneMaps {
    /// Empty zone maps for an `arity`-column table.
    pub fn new(arity: usize) -> ZoneMaps {
        ZoneMaps {
            arity,
            zones: Vec::new(),
        }
    }

    /// Number of zones.
    pub fn zone_count(&self) -> usize {
        self.zones.len()
    }

    /// Record an insert at physical position `pos`.
    pub fn add_row(&mut self, pos: usize, tuple: &Tuple) {
        let z = pos / ZONE_ROWS;
        while self.zones.len() <= z {
            self.zones.push(Zone {
                live: 0,
                cols: vec![ColZone::default(); self.arity],
            });
        }
        let zone = &mut self.zones[z];
        zone.live += 1;
        for (c, v) in tuple.iter().enumerate() {
            let col = &mut zone.cols[c];
            if v.is_null() {
                col.nulls += 1;
            }
            match &col.min {
                Some(m) if m <= v => {}
                _ => col.min = Some(v.clone()),
            }
            match &col.max {
                Some(m) if m >= v => {}
                _ => col.max = Some(v.clone()),
            }
        }
    }

    /// Record a delete at physical position `pos`. Bounds stay loose.
    pub fn remove_row(&mut self, pos: usize, tuple: &Tuple) {
        let z = pos / ZONE_ROWS;
        let zone = &mut self.zones[z];
        zone.live = zone.live.saturating_sub(1);
        for (c, v) in tuple.iter().enumerate() {
            if v.is_null() {
                zone.cols[c].nulls = zone.cols[c].nulls.saturating_sub(1);
            }
        }
    }

    /// Drop every zone (table truncated or about to be rebuilt).
    pub fn clear(&mut self) {
        self.zones.clear();
    }

    /// True iff zone `z` cannot contain a row satisfying **all** of
    /// `preds` (any single unsatisfiable conjunct suffices). Conservative:
    /// false when unsure.
    pub fn can_skip(&self, z: usize, preds: &[ZonePred]) -> bool {
        let Some(zone) = self.zones.get(z) else {
            return false;
        };
        if zone.live == 0 {
            return true;
        }
        preds.iter().any(|p| match p {
            ZonePred::IsNull(c) => zone.cols.get(*c).is_some_and(|col| col.nulls == 0),
            ZonePred::Cmp(c, op, lit) => {
                let Some(col) = zone.cols.get(*c) else {
                    return false;
                };
                let (Some(min), Some(max)) = (&col.min, &col.max) else {
                    return false;
                };
                // All live values v lie in [min, max] under Value's total
                // order; skip when no point of the interval can satisfy.
                match op {
                    BinOp::Eq => lit < min || lit > max,
                    BinOp::Lt => min >= lit,
                    BinOp::Le => min > lit,
                    BinOp::Gt => max <= lit,
                    BinOp::Ge => max < lit,
                    _ => false,
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proql_common::tup;

    #[test]
    fn bounds_widen_on_insert_and_prune_ranges() {
        let mut zm = ZoneMaps::new(1);
        for (i, v) in [10i64, 20, 30].iter().enumerate() {
            zm.add_row(i, &tup![*v]);
        }
        // Second zone with a disjoint range.
        for (i, v) in [100i64, 200].iter().enumerate() {
            zm.add_row(ZONE_ROWS + i, &tup![*v]);
        }
        let eq = |v: i64| vec![ZonePred::Cmp(0, BinOp::Eq, Value::Int(v))];
        assert!(!zm.can_skip(0, &eq(20)));
        assert!(zm.can_skip(0, &eq(99)));
        assert!(!zm.can_skip(1, &eq(200)));
        assert!(zm.can_skip(1, &eq(20)));
        let lt = vec![ZonePred::Cmp(0, BinOp::Lt, Value::Int(50))];
        assert!(!zm.can_skip(0, &lt));
        assert!(zm.can_skip(1, &lt));
    }

    #[test]
    fn deletes_keep_bounds_loose_but_never_skip_wrongly() {
        let mut zm = ZoneMaps::new(1);
        zm.add_row(0, &tup![1]);
        zm.add_row(1, &tup![100]);
        zm.remove_row(1, &tup![100]);
        // 100 is gone but bounds are loose: must NOT skip Eq(1), MAY not
        // skip Eq(100) (loose), and an emptied zone skips everything.
        assert!(!zm.can_skip(0, &[ZonePred::Cmp(0, BinOp::Eq, Value::Int(1))]));
        zm.remove_row(0, &tup![1]);
        assert!(zm.can_skip(0, &[ZonePred::Cmp(0, BinOp::Eq, Value::Int(1))]));
    }

    #[test]
    fn null_counts_prune_is_null() {
        let mut zm = ZoneMaps::new(1);
        zm.add_row(0, &tup![5]);
        assert!(zm.can_skip(0, &[ZonePred::IsNull(0)]));
        zm.add_row(1, &proql_common::Tuple::new(vec![Value::Null]));
        assert!(!zm.can_skip(0, &[ZonePred::IsNull(0)]));
        // NULL sorts below every non-null value in the total order, so a
        // zone holding a NULL keeps min = NULL and never falsely skips
        // Lt-style predicates (NULL < 5 is true under the total order).
        assert!(!zm.can_skip(0, &[ZonePred::Cmp(0, BinOp::Lt, Value::Int(5))]));
    }

    #[test]
    fn unknown_zone_or_column_never_skips() {
        let zm = ZoneMaps::new(1);
        assert!(!zm.can_skip(7, &[ZonePred::IsNull(0)]));
        let mut zm = ZoneMaps::new(1);
        zm.add_row(0, &tup![1]);
        assert!(!zm.can_skip(0, &[ZonePred::Cmp(9, BinOp::Eq, Value::Int(1))]));
    }
}
