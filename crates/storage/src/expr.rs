//! Scalar expressions evaluated against a single tuple.
//!
//! These are the `WHERE`-clause and projection expressions of the generated
//! plans. Column references are positional; the translator resolves names to
//! positions when it builds plans.

use proql_common::{Error, Result, Tuple, Value};
use std::fmt;

/// Binary operators over [`Value`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Equality (total, `NULL = NULL` is true — see [`Value`] semantics).
    Eq,
    /// Inequality.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Numeric addition (int + int = int; anything with a float = float).
    Add,
    /// Numeric subtraction.
    Sub,
    /// Numeric multiplication.
    Mul,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
        };
        f.write_str(s)
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Positional column reference.
    Col(usize),
    /// Literal value.
    Lit(Value),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Logical conjunction (empty = true).
    And(Vec<Expr>),
    /// Logical disjunction (empty = false).
    Or(Vec<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// True iff the operand is NULL.
    IsNull(Box<Expr>),
}

impl Expr {
    /// Column reference.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Bin(BinOp::Eq, Box::new(self), Box::new(other))
    }

    /// Compare two expressions with `op`.
    pub fn cmp(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }

    /// Conjunction of predicates, flattening nested `And`s.
    pub fn and(preds: Vec<Expr>) -> Expr {
        let mut flat = Vec::new();
        for p in preds {
            match p {
                Expr::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        if flat.len() == 1 {
            flat.pop().unwrap()
        } else {
            Expr::And(flat)
        }
    }

    /// Evaluate against `tuple`.
    pub fn eval(&self, tuple: &Tuple) -> Result<Value> {
        match self {
            Expr::Col(i) => tuple
                .try_get(*i)
                .cloned()
                .ok_or_else(|| Error::Storage(format!("column {i} out of range"))),
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Bin(op, a, b) => {
                let av = a.eval(tuple)?;
                let bv = b.eval(tuple)?;
                eval_bin(*op, &av, &bv)
            }
            Expr::And(ps) => {
                for p in ps {
                    if !p.eval_bool(tuple)? {
                        return Ok(Value::Bool(false));
                    }
                }
                Ok(Value::Bool(true))
            }
            Expr::Or(ps) => {
                for p in ps {
                    if p.eval_bool(tuple)? {
                        return Ok(Value::Bool(true));
                    }
                }
                Ok(Value::Bool(false))
            }
            Expr::Not(p) => Ok(Value::Bool(!p.eval_bool(tuple)?)),
            Expr::IsNull(e) => Ok(Value::Bool(e.eval(tuple)?.is_null())),
        }
    }

    /// Evaluate as a predicate. NULL results count as false (SQL-style
    /// filtering), non-boolean non-null results are errors.
    pub fn eval_bool(&self, tuple: &Tuple) -> Result<bool> {
        match self.eval(tuple)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            other => Err(Error::Storage(format!(
                "predicate evaluated to non-boolean {other}"
            ))),
        }
    }

    /// The largest column index referenced, if any (used to validate plans).
    pub fn max_col(&self) -> Option<usize> {
        match self {
            Expr::Col(i) => Some(*i),
            Expr::Lit(_) => None,
            Expr::Bin(_, a, b) => a.max_col().into_iter().chain(b.max_col()).max(),
            Expr::And(ps) | Expr::Or(ps) => ps.iter().filter_map(|p| p.max_col()).max(),
            Expr::Not(p) | Expr::IsNull(p) => p.max_col(),
        }
    }

    /// Shift every column reference by `delta` (used when an expression moves
    /// to the right side of a join output).
    pub fn shift_cols(&self, delta: usize) -> Expr {
        match self {
            Expr::Col(i) => Expr::Col(i + delta),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Bin(op, a, b) => Expr::Bin(
                *op,
                Box::new(a.shift_cols(delta)),
                Box::new(b.shift_cols(delta)),
            ),
            Expr::And(ps) => Expr::And(ps.iter().map(|p| p.shift_cols(delta)).collect()),
            Expr::Or(ps) => Expr::Or(ps.iter().map(|p| p.shift_cols(delta)).collect()),
            Expr::Not(p) => Expr::Not(Box::new(p.shift_cols(delta))),
            Expr::IsNull(p) => Expr::IsNull(Box::new(p.shift_cols(delta))),
        }
    }

    /// If this predicate (possibly a conjunction) pins a set of columns to
    /// literal values, return the `(column, value)` pairs. Used for index
    /// pushdown.
    pub fn equality_bindings(&self) -> Vec<(usize, Value)> {
        let mut out = Vec::new();
        self.collect_equalities(&mut out);
        out
    }

    fn collect_equalities(&self, out: &mut Vec<(usize, Value)>) {
        match self {
            Expr::Bin(BinOp::Eq, a, b) => match (a.as_ref(), b.as_ref()) {
                (Expr::Col(i), Expr::Lit(v)) | (Expr::Lit(v), Expr::Col(i)) => {
                    out.push((*i, v.clone()));
                }
                _ => {}
            },
            Expr::And(ps) => {
                for p in ps {
                    p.collect_equalities(out);
                }
            }
            _ => {}
        }
    }
}

/// Evaluate a binary operator over two values (shared with the batch
/// executor's generic column path).
pub(crate) fn eval_bin(op: BinOp, a: &Value, b: &Value) -> Result<Value> {
    use BinOp::*;
    match op {
        Eq => Ok(Value::Bool(a == b)),
        Ne => Ok(Value::Bool(a != b)),
        Lt => Ok(Value::Bool(a < b)),
        Le => Ok(Value::Bool(a <= b)),
        Gt => Ok(Value::Bool(a > b)),
        Ge => Ok(Value::Bool(a >= b)),
        Add | Sub | Mul => {
            if a.is_null() || b.is_null() {
                return Ok(Value::Null);
            }
            match (a, b) {
                (Value::Int(x), Value::Int(y)) => Ok(Value::Int(match op {
                    Add => x.wrapping_add(*y),
                    Sub => x.wrapping_sub(*y),
                    Mul => x.wrapping_mul(*y),
                    _ => unreachable!(),
                })),
                _ => {
                    let (x, y) = (
                        a.as_float().ok_or_else(|| non_numeric(a))?,
                        b.as_float().ok_or_else(|| non_numeric(b))?,
                    );
                    Ok(Value::Float(match op {
                        Add => x + y,
                        Sub => x - y,
                        Mul => x * y,
                        _ => unreachable!(),
                    }))
                }
            }
        }
    }
}

fn non_numeric(v: &Value) -> Error {
    Error::Storage(format!("arithmetic on non-numeric value {v}"))
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(i) => write!(f, "c{i}"),
            Expr::Lit(Value::Str(s)) => write!(f, "'{s}'"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Bin(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::And(ps) => {
                if ps.is_empty() {
                    return write!(f, "TRUE");
                }
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Expr::Or(ps) => {
                if ps.is_empty() {
                    return write!(f, "FALSE");
                }
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Expr::Not(p) => write!(f, "NOT {p}"),
            Expr::IsNull(p) => write!(f, "{p} IS NULL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proql_common::tup;

    #[test]
    fn comparisons() {
        let t = tup![5, "abc"];
        assert_eq!(
            Expr::col(0).eq(Expr::lit(5)).eval(&t).unwrap(),
            Value::Bool(true)
        );
        assert!(Expr::cmp(BinOp::Lt, Expr::col(0), Expr::lit(10))
            .eval_bool(&t)
            .unwrap());
        assert!(Expr::cmp(BinOp::Ge, Expr::col(1), Expr::lit("abc"))
            .eval_bool(&t)
            .unwrap());
    }

    #[test]
    fn arithmetic() {
        let t = tup![5, 2.5];
        assert_eq!(
            Expr::cmp(BinOp::Add, Expr::col(0), Expr::lit(3))
                .eval(&t)
                .unwrap(),
            Value::Int(8)
        );
        assert_eq!(
            Expr::cmp(BinOp::Mul, Expr::col(0), Expr::col(1))
                .eval(&t)
                .unwrap(),
            Value::Float(12.5)
        );
        assert!(Expr::cmp(BinOp::Add, Expr::col(0), Expr::lit("x"))
            .eval(&t)
            .is_err());
    }

    #[test]
    fn arithmetic_with_null_is_null() {
        let t = proql_common::Tuple::new(vec![Value::Null, Value::Int(1)]);
        assert_eq!(
            Expr::cmp(BinOp::Add, Expr::col(0), Expr::col(1))
                .eval(&t)
                .unwrap(),
            Value::Null
        );
    }

    #[test]
    fn boolean_connectives_short_circuit() {
        let t = tup![1];
        let tru = Expr::lit(true);
        let fls = Expr::lit(false);
        assert!(Expr::And(vec![tru.clone(), tru.clone()])
            .eval_bool(&t)
            .unwrap());
        assert!(!Expr::And(vec![tru.clone(), fls.clone()])
            .eval_bool(&t)
            .unwrap());
        assert!(Expr::Or(vec![fls.clone(), tru.clone()])
            .eval_bool(&t)
            .unwrap());
        assert!(!Expr::Or(vec![]).eval_bool(&t).unwrap());
        assert!(Expr::And(vec![]).eval_bool(&t).unwrap());
        assert!(Expr::Not(Box::new(fls)).eval_bool(&t).unwrap());
    }

    #[test]
    fn null_predicate_is_false() {
        let t = proql_common::Tuple::new(vec![Value::Null]);
        // c0 = 1 where c0 is NULL: our Eq is total so NULL = 1 is plain false.
        assert!(!Expr::col(0).eq(Expr::lit(1)).eval_bool(&t).unwrap());
        assert!(Expr::IsNull(Box::new(Expr::col(0))).eval_bool(&t).unwrap());
    }

    #[test]
    fn out_of_range_column_errors() {
        assert!(Expr::col(3).eval(&tup![1]).is_err());
    }

    #[test]
    fn shift_and_max_col() {
        let e = Expr::And(vec![
            Expr::col(1).eq(Expr::lit(1)),
            Expr::cmp(BinOp::Lt, Expr::col(4), Expr::col(0)),
        ]);
        assert_eq!(e.max_col(), Some(4));
        assert_eq!(e.shift_cols(2).max_col(), Some(6));
    }

    #[test]
    fn equality_bindings_found_through_and() {
        let e = Expr::And(vec![
            Expr::col(2).eq(Expr::lit(7)),
            Expr::lit("x").eq(Expr::col(0)),
            Expr::cmp(BinOp::Lt, Expr::col(1), Expr::lit(3)),
        ]);
        let mut b = e.equality_bindings();
        b.sort_by_key(|(i, _)| *i);
        assert_eq!(b, vec![(0, Value::str("x")), (2, Value::Int(7))]);
    }

    #[test]
    fn and_flattens() {
        let e = Expr::and(vec![
            Expr::And(vec![Expr::lit(true), Expr::lit(true)]),
            Expr::lit(false),
        ]);
        match e {
            Expr::And(ps) => assert_eq!(ps.len(), 3),
            _ => panic!("expected And"),
        }
    }

    #[test]
    fn display_renders_sqlish() {
        let e = Expr::col(0).eq(Expr::lit("a"));
        assert_eq!(e.to_string(), "(c0 = 'a')");
    }
}
