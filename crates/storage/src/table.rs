//! Tables: schema + rows + primary-key map + secondary indexes.

use crate::index::{Index, IndexKind};
use crate::stats::TableStats;
use proql_common::{Error, Result, Schema, Tuple};
use std::collections::HashMap;

/// A stored table with set semantics on the primary key.
///
/// Inserting a tuple whose key already exists is a no-op returning `false`
/// (set semantics, as in the paper's data-exchange instances); the first
/// writer wins. Rows are append-only except for [`Table::delete_by_key`],
/// which is used by incremental update exchange.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    rows: Vec<Tuple>,
    /// key tuple -> row position; tombstoned rows are removed from this map.
    pk: HashMap<Tuple, usize>,
    /// live-row flags aligned with `rows` (deletion tombstones).
    live: Vec<bool>,
    indexes: Vec<Index>,
    tombstones: usize,
    /// Optimizer statistics, maintained incrementally on insert/delete.
    stats: TableStats,
}

impl Table {
    /// Create an empty table.
    pub fn new(schema: Schema) -> Self {
        let arity = schema.arity();
        Table {
            schema,
            rows: Vec::new(),
            pk: HashMap::new(),
            live: Vec::new(),
            indexes: Vec::new(),
            tombstones: 0,
            stats: TableStats::new(arity),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Optimizer statistics over the live rows: row count plus per-column
    /// NDV and min/max, kept exact by incremental maintenance.
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.pk.len()
    }

    /// True iff no live rows.
    pub fn is_empty(&self) -> bool {
        self.pk.is_empty()
    }

    /// Insert a tuple. Returns `Ok(true)` if it was new, `Ok(false)` if a
    /// row with the same key already existed.
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool> {
        self.schema.check(&tuple)?;
        let key = self.schema.key_of(&tuple);
        if self.pk.contains_key(&key) {
            return Ok(false);
        }
        let pos = self.rows.len();
        for ix in &mut self.indexes {
            ix.insert(&tuple, pos);
        }
        self.pk.insert(key, pos);
        self.stats.add_row(&tuple);
        self.rows.push(tuple);
        self.live.push(true);
        Ok(true)
    }

    /// Bulk insert; returns how many were new.
    pub fn insert_all(&mut self, tuples: impl IntoIterator<Item = Tuple>) -> Result<usize> {
        let mut n = 0;
        for t in tuples {
            if self.insert(t)? {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Fetch the live row with primary key `key`.
    pub fn get_by_key(&self, key: &Tuple) -> Option<&Tuple> {
        self.pk.get(key).map(|&pos| &self.rows[pos])
    }

    /// True iff a live row with this exact tuple's key exists **and** equals it.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        let key = self.schema.key_of(tuple);
        self.get_by_key(&key) == Some(tuple)
    }

    /// Delete the row with primary key `key`. Returns the removed tuple.
    /// Secondary indexes are rebuilt lazily on the next scan-through if the
    /// tombstone fraction exceeds 1/2 (compaction).
    pub fn delete_by_key(&mut self, key: &Tuple) -> Option<Tuple> {
        let pos = self.pk.remove(key)?;
        self.live[pos] = false;
        self.tombstones += 1;
        let removed = self.rows[pos].clone();
        self.stats.remove_row(&removed);
        if self.tombstones * 2 > self.rows.len() {
            self.compact();
        }
        Some(removed)
    }

    fn compact(&mut self) {
        let mut new_rows = Vec::with_capacity(self.pk.len());
        for (pos, row) in self.rows.iter().enumerate() {
            if self.live[pos] {
                new_rows.push(row.clone());
            }
        }
        self.rows = new_rows;
        self.live = vec![true; self.rows.len()];
        self.tombstones = 0;
        self.pk.clear();
        for (pos, row) in self.rows.iter().enumerate() {
            self.pk.insert(self.schema.key_of(row), pos);
        }
        for ix in &mut self.indexes {
            ix.rebuild(&self.rows);
        }
    }

    /// Iterate over live rows.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.rows
            .iter()
            .zip(self.live.iter())
            .filter_map(|(r, &l)| l.then_some(r))
    }

    /// Materialize all live rows.
    pub fn scan(&self) -> Vec<Tuple> {
        self.iter().cloned().collect()
    }

    /// Create a secondary index on `columns`. Errors if a same-named index
    /// exists.
    pub fn create_index(
        &mut self,
        name: impl Into<String>,
        columns: Vec<usize>,
        kind: IndexKind,
    ) -> Result<()> {
        let name = name.into();
        if self.indexes.iter().any(|ix| ix.name() == name) {
            return Err(Error::AlreadyExists(format!("index {name}")));
        }
        for &c in &columns {
            if c >= self.schema.arity() {
                return Err(Error::Storage(format!(
                    "index column {c} out of range for {}",
                    self.schema.name()
                )));
            }
        }
        let mut ix = Index::new(name, columns, kind);
        ix.rebuild(&self.rows);
        // Rebuild indexes see tombstoned rows too; lookups filter on `live`.
        self.indexes.push(ix);
        Ok(())
    }

    /// Find an index covering exactly the given column set (order-insensitive).
    pub fn find_index(&self, columns: &[usize]) -> Option<&Index> {
        self.indexes.iter().find(|ix| {
            ix.columns().len() == columns.len() && ix.columns().iter().all(|c| columns.contains(c))
        })
    }

    /// All indexes.
    pub fn indexes(&self) -> &[Index] {
        &self.indexes
    }

    /// Rows matching `key` on the columns of `index` (live rows only).
    pub fn index_lookup(&self, index: &Index, key: &Tuple) -> Vec<Tuple> {
        index
            .lookup(key)
            .iter()
            .filter(|&&pos| self.live[pos])
            .map(|&pos| self.rows[pos].clone())
            .collect()
    }

    /// Clear all rows, keeping schema and (empty) indexes.
    pub fn truncate(&mut self) {
        self.rows.clear();
        self.pk.clear();
        self.live.clear();
        self.tombstones = 0;
        self.stats.clear();
        for ix in &mut self.indexes {
            ix.rebuild(&[]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proql_common::{tup, ValueType};

    fn table() -> Table {
        Table::new(
            Schema::build(
                "N",
                &[
                    ("id", ValueType::Int),
                    ("name", ValueType::Str),
                    ("canon", ValueType::Bool),
                ],
                &[0, 1],
            )
            .unwrap(),
        )
    }

    #[test]
    fn insert_and_set_semantics() {
        let mut t = table();
        assert!(t.insert(tup![1, "cn1", false]).unwrap());
        assert!(!t.insert(tup![1, "cn1", true]).unwrap()); // same key: no-op
        assert!(t.insert(tup![1, "cn2", false]).unwrap()); // different key
        assert_eq!(t.len(), 2);
        // first writer wins
        assert_eq!(t.get_by_key(&tup![1, "cn1"]), Some(&tup![1, "cn1", false]));
    }

    #[test]
    fn schema_violation_rejected() {
        let mut t = table();
        assert!(t.insert(tup![1, 2, false]).is_err());
        assert!(t.insert(tup![1]).is_err());
    }

    #[test]
    fn contains_checks_full_tuple() {
        let mut t = table();
        t.insert(tup![1, "a", true]).unwrap();
        assert!(t.contains(&tup![1, "a", true]));
        assert!(!t.contains(&tup![1, "a", false]));
    }

    #[test]
    fn delete_and_scan() {
        let mut t = table();
        t.insert(tup![1, "a", true]).unwrap();
        t.insert(tup![2, "b", false]).unwrap();
        let removed = t.delete_by_key(&tup![1, "a"]).unwrap();
        assert_eq!(removed, tup![1, "a", true]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.scan(), vec![tup![2, "b", false]]);
        assert!(t.delete_by_key(&tup![1, "a"]).is_none());
    }

    #[test]
    fn reinsert_after_delete() {
        let mut t = table();
        t.insert(tup![1, "a", true]).unwrap();
        t.delete_by_key(&tup![1, "a"]).unwrap();
        assert!(t.insert(tup![1, "a", false]).unwrap());
        assert_eq!(t.get_by_key(&tup![1, "a"]), Some(&tup![1, "a", false]));
    }

    #[test]
    fn compaction_preserves_contents_and_indexes() {
        let mut t = table();
        t.create_index("by_name", vec![1], IndexKind::Hash).unwrap();
        for i in 0..10 {
            t.insert(tup![i, "x", true]).unwrap();
        }
        for i in 0..8 {
            t.delete_by_key(&tup![i, "x"]);
        }
        assert_eq!(t.len(), 2);
        let ix = t.find_index(&[1]).unwrap();
        let hits = t.index_lookup(ix, &tup!["x"]);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn index_lookup_skips_tombstones() {
        let mut t = table();
        t.create_index("by_name", vec![1], IndexKind::BTree)
            .unwrap();
        t.insert(tup![1, "a", true]).unwrap();
        t.insert(tup![2, "a", true]).unwrap();
        t.insert(tup![3, "b", true]).unwrap();
        t.delete_by_key(&tup![1, "a"]);
        let ix = t.find_index(&[1]).unwrap();
        assert_eq!(t.index_lookup(ix, &tup!["a"]), vec![tup![2, "a", true]]);
    }

    #[test]
    fn duplicate_index_name_rejected() {
        let mut t = table();
        t.create_index("i", vec![0], IndexKind::Hash).unwrap();
        assert!(t.create_index("i", vec![1], IndexKind::Hash).is_err());
    }

    #[test]
    fn find_index_is_order_insensitive() {
        let mut t = table();
        t.create_index("i", vec![1, 0], IndexKind::Hash).unwrap();
        assert!(t.find_index(&[0, 1]).is_some());
        assert!(t.find_index(&[0]).is_none());
    }

    #[test]
    fn stats_follow_inserts_and_deletes() {
        let mut t = table();
        t.insert(tup![1, "a", true]).unwrap();
        t.insert(tup![2, "a", false]).unwrap();
        t.insert(tup![3, "b", true]).unwrap();
        let s = t.stats();
        assert_eq!(s.rows(), 3);
        assert_eq!(s.column(0).unwrap().ndv(), 3);
        assert_eq!(s.column(1).unwrap().ndv(), 2);
        t.delete_by_key(&tup![3, "b"]);
        let s = t.stats();
        assert_eq!(s.rows(), 2);
        assert_eq!(s.column(1).unwrap().ndv(), 1);
        // Compaction must not disturb the incrementally-maintained stats.
        for i in 10..20 {
            t.insert(tup![i, "x", true]).unwrap();
        }
        for i in 10..20 {
            t.delete_by_key(&tup![i, "x"]);
        }
        assert_eq!(t.stats().rows(), t.len());
        assert_eq!(t.stats().column(1).unwrap().ndv(), 1);
        t.truncate();
        assert_eq!(t.stats().rows(), 0);
        assert_eq!(t.stats().column(0).unwrap().ndv(), 0);
    }

    #[test]
    fn truncate_empties() {
        let mut t = table();
        t.insert(tup![1, "a", true]).unwrap();
        t.truncate();
        assert!(t.is_empty());
        assert!(t.insert(tup![1, "a", true]).unwrap());
    }
}
