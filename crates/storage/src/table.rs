//! Tables: schema + rows + primary-key map + secondary indexes, plus the
//! incrementally-maintained columnar side-structures the batch executor
//! scans through: per-column string [dictionaries](crate::dict) and
//! per-morsel [zone maps](crate::zone).

use crate::batch::{Column, RecordBatch};
use crate::dict::{Dictionary, NULL_CODE};
use crate::index::{Index, IndexKind};
use crate::stats::TableStats;
use crate::zone::{ZoneMaps, ZonePred, ZONE_ROWS};
use proql_common::{Error, Result, Schema, Tuple, Value, ValueType};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-process default for dictionary encoding, from the `PROQL_DICT`
/// environment variable (`0` disables — the ablation knob). Read at
/// table-creation time; [`crate::database::Database`] carries its own copy
/// so tests can flip it per database without races.
pub fn dict_default() -> bool {
    std::env::var("PROQL_DICT")
        .map(|v| v != "0")
        .unwrap_or(true)
}

/// Dictionary encoding of one `Str`-typed column: codes aligned with the
/// table's physical row vector (tombstones included, `NULL_CODE` for NULL)
/// plus the shared interning table.
#[derive(Debug, Clone)]
struct ColDict {
    codes: Vec<u32>,
    dict: Arc<Dictionary>,
}

/// A stored table with set semantics on the primary key.
///
/// Inserting a tuple whose key already exists is a no-op returning `false`
/// (set semantics, as in the paper's data-exchange instances); the first
/// writer wins. Rows are append-only except for [`Table::delete_by_key`],
/// which is used by incremental update exchange.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    rows: Vec<Tuple>,
    /// key tuple -> row position; tombstoned rows are removed from this map.
    pk: HashMap<Tuple, usize>,
    /// live-row flags aligned with `rows` (deletion tombstones).
    live: Vec<bool>,
    indexes: Vec<Index>,
    tombstones: usize,
    /// Optimizer statistics, maintained incrementally on insert/delete.
    stats: TableStats,
    /// One entry per column: `Some` iff the column is `Str`-typed and
    /// dictionary encoding is enabled for this table.
    dicts: Vec<Option<ColDict>>,
    /// Per-morsel min/max/null-count, maintained like `stats`.
    zones: ZoneMaps,
}

impl Table {
    /// Create an empty table (dictionary encoding per [`dict_default`]).
    pub fn new(schema: Schema) -> Self {
        Table::with_dict(schema, dict_default())
    }

    /// Create an empty table, explicitly enabling or disabling dictionary
    /// encoding for its string columns.
    pub fn with_dict(schema: Schema, dict: bool) -> Self {
        let arity = schema.arity();
        let dicts = schema
            .attributes()
            .iter()
            .map(|a| {
                (dict && a.ty == ValueType::Str).then(|| ColDict {
                    codes: Vec::new(),
                    dict: Arc::new(Dictionary::new()),
                })
            })
            .collect();
        Table {
            schema,
            rows: Vec::new(),
            pk: HashMap::new(),
            live: Vec::new(),
            indexes: Vec::new(),
            tombstones: 0,
            stats: TableStats::new(arity),
            dicts,
            zones: ZoneMaps::new(arity),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Optimizer statistics over the live rows: row count plus per-column
    /// NDV and min/max, kept exact by incremental maintenance.
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.pk.len()
    }

    /// True iff no live rows.
    pub fn is_empty(&self) -> bool {
        self.pk.is_empty()
    }

    /// Insert a tuple. Returns `Ok(true)` if it was new, `Ok(false)` if a
    /// row with the same key already existed.
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool> {
        self.schema.check(&tuple)?;
        let key = self.schema.key_of(&tuple);
        if self.pk.contains_key(&key) {
            return Ok(false);
        }
        let pos = self.rows.len();
        for ix in &mut self.indexes {
            ix.insert(&tuple, pos);
        }
        self.pk.insert(key, pos);
        let codes = self.encode_row(&tuple);
        self.stats.add_row_coded(&tuple, &codes);
        self.zones.add_row(pos, &tuple);
        self.rows.push(tuple);
        self.live.push(true);
        Ok(true)
    }

    /// Intern the row's string cells into the per-column dictionaries and
    /// append their codes; returns the codes for stats keying (empty when
    /// no column is dictionary-encoded).
    fn encode_row(&mut self, tuple: &Tuple) -> Vec<Option<u32>> {
        if self.dicts.iter().all(Option::is_none) {
            return Vec::new();
        }
        let mut out = vec![None; self.dicts.len()];
        for (c, slot) in self.dicts.iter_mut().enumerate() {
            let Some(cd) = slot else { continue };
            let code = match &tuple.values()[c] {
                Value::Str(s) => Arc::make_mut(&mut cd.dict).intern(s),
                Value::Null => NULL_CODE,
                other => unreachable!("schema-checked Str column holds {other}"),
            };
            cd.codes.push(code);
            if code != NULL_CODE {
                out[c] = Some(code);
            }
        }
        out
    }

    /// The stats-keying codes of the physical row at `pos`.
    fn codes_at(&self, pos: usize) -> Vec<Option<u32>> {
        if self.dicts.iter().all(Option::is_none) {
            return Vec::new();
        }
        self.dicts
            .iter()
            .map(|slot| {
                slot.as_ref().and_then(|cd| {
                    let c = cd.codes[pos];
                    (c != NULL_CODE).then_some(c)
                })
            })
            .collect()
    }

    /// Bulk insert; returns how many were new.
    pub fn insert_all(&mut self, tuples: impl IntoIterator<Item = Tuple>) -> Result<usize> {
        let mut n = 0;
        for t in tuples {
            if self.insert(t)? {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Fetch the live row with primary key `key`.
    pub fn get_by_key(&self, key: &Tuple) -> Option<&Tuple> {
        self.pk.get(key).map(|&pos| &self.rows[pos])
    }

    /// True iff a live row with this exact tuple's key exists **and** equals it.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        let key = self.schema.key_of(tuple);
        self.get_by_key(&key) == Some(tuple)
    }

    /// Delete the row with primary key `key`. Returns the removed tuple.
    /// Secondary indexes are rebuilt lazily on the next scan-through if the
    /// tombstone fraction exceeds 1/2 (compaction).
    pub fn delete_by_key(&mut self, key: &Tuple) -> Option<Tuple> {
        let pos = self.pk.remove(key)?;
        self.live[pos] = false;
        self.tombstones += 1;
        let removed = self.rows[pos].clone();
        let codes = self.codes_at(pos);
        self.stats.remove_row_coded(&removed, &codes);
        self.zones.remove_row(pos, &removed);
        if self.tombstones * 2 > self.rows.len() {
            self.compact();
        }
        Some(removed)
    }

    fn compact(&mut self) {
        // Compact the code vectors with the same live filter (codes stay
        // valid — the dictionary is append-only and untouched).
        for cd in self.dicts.iter_mut().flatten() {
            cd.codes = cd
                .codes
                .iter()
                .zip(&self.live)
                .filter(|&(_, &l)| l)
                .map(|(&c, _)| c)
                .collect();
        }
        let mut new_rows = Vec::with_capacity(self.pk.len());
        for (pos, row) in self.rows.iter().enumerate() {
            if self.live[pos] {
                new_rows.push(row.clone());
            }
        }
        self.rows = new_rows;
        self.live = vec![true; self.rows.len()];
        self.tombstones = 0;
        self.pk.clear();
        for (pos, row) in self.rows.iter().enumerate() {
            self.pk.insert(self.schema.key_of(row), pos);
        }
        for ix in &mut self.indexes {
            ix.rebuild(&self.rows);
        }
        // Zone bounds went loose under the deletes; rebuild them tight on
        // the compacted positions.
        self.zones.clear();
        for (pos, row) in self.rows.iter().enumerate() {
            self.zones.add_row(pos, row);
        }
    }

    /// Iterate over live rows.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.rows
            .iter()
            .zip(self.live.iter())
            .filter_map(|(r, &l)| l.then_some(r))
    }

    /// Materialize all live rows.
    pub fn scan(&self) -> Vec<Tuple> {
        self.iter().cloned().collect()
    }

    /// Create a secondary index on `columns`. Errors if a same-named index
    /// exists.
    pub fn create_index(
        &mut self,
        name: impl Into<String>,
        columns: Vec<usize>,
        kind: IndexKind,
    ) -> Result<()> {
        let name = name.into();
        if self.indexes.iter().any(|ix| ix.name() == name) {
            return Err(Error::AlreadyExists(format!("index {name}")));
        }
        for &c in &columns {
            if c >= self.schema.arity() {
                return Err(Error::Storage(format!(
                    "index column {c} out of range for {}",
                    self.schema.name()
                )));
            }
        }
        let mut ix = Index::new(name, columns, kind);
        ix.rebuild(&self.rows);
        // Rebuild indexes see tombstoned rows too; lookups filter on `live`.
        self.indexes.push(ix);
        Ok(())
    }

    /// Find an index covering exactly the given column set (order-insensitive).
    pub fn find_index(&self, columns: &[usize]) -> Option<&Index> {
        self.indexes.iter().find(|ix| {
            ix.columns().len() == columns.len() && ix.columns().iter().all(|c| columns.contains(c))
        })
    }

    /// All indexes.
    pub fn indexes(&self) -> &[Index] {
        &self.indexes
    }

    /// Rows matching `key` on the columns of `index` (live rows only).
    pub fn index_lookup(&self, index: &Index, key: &Tuple) -> Vec<Tuple> {
        index
            .lookup(key)
            .iter()
            .filter(|&&pos| self.live[pos])
            .map(|&pos| self.rows[pos].clone())
            .collect()
    }

    /// Clear all rows, keeping schema and (empty) indexes. Dictionaries
    /// reset to empty — codes do not survive a truncate.
    pub fn truncate(&mut self) {
        self.rows.clear();
        self.pk.clear();
        self.live.clear();
        self.tombstones = 0;
        self.stats.clear();
        for cd in self.dicts.iter_mut().flatten() {
            cd.codes.clear();
            cd.dict = Arc::new(Dictionary::new());
        }
        self.zones.clear();
        for ix in &mut self.indexes {
            ix.rebuild(&[]);
        }
    }

    /// The dictionary backing column `c`, when it is dictionary-encoded.
    pub fn dictionary(&self, c: usize) -> Option<&Arc<Dictionary>> {
        self.dicts.get(c)?.as_ref().map(|cd| &cd.dict)
    }

    /// True iff any column is dictionary-encoded.
    pub fn has_dict(&self) -> bool {
        self.dicts.iter().any(Option::is_some)
    }

    /// The table's zone maps.
    pub fn zones(&self) -> &ZoneMaps {
        &self.zones
    }

    /// Columnar scan of all live rows. Dictionary-encoded NULL-free string
    /// columns come out as [`Column::Dict`] (a code memcpy — no string
    /// clones); every other column decodes exactly as
    /// [`RecordBatch::from_rows`] would.
    pub fn to_batch(&self) -> RecordBatch {
        self.to_batch_pruned(None).0
    }

    /// Zone-pruned columnar scan: zones that [`ZoneMaps::can_skip`] proves
    /// cannot satisfy `preds` are skipped wholesale. Returns the batch and
    /// the number of zones (morsels) skipped. With `preds = None` this is a
    /// full scan.
    pub fn to_batch_pruned(&self, preds: Option<&[ZonePred]>) -> (RecordBatch, u64) {
        let names: Vec<String> = self
            .schema
            .attributes()
            .iter()
            .map(|a| a.name.clone())
            .collect();
        let mut skipped = 0u64;
        let mut positions: Vec<u32> = Vec::with_capacity(self.pk.len());
        match preds {
            Some(preds) => {
                let zone_n = self.rows.len().div_ceil(ZONE_ROWS);
                for z in 0..zone_n {
                    if self.zones.can_skip(z, preds) {
                        skipped += 1;
                        continue;
                    }
                    let end = ((z + 1) * ZONE_ROWS).min(self.rows.len());
                    for pos in z * ZONE_ROWS..end {
                        if self.live[pos] {
                            positions.push(pos as u32);
                        }
                    }
                }
            }
            None => {
                for (pos, &alive) in self.live.iter().enumerate() {
                    if alive {
                        positions.push(pos as u32);
                    }
                }
            }
        }
        let columns = (0..self.schema.arity())
            .map(|c| self.scan_column(c, &positions))
            .collect();
        (RecordBatch::new(names, columns, positions.len()), skipped)
    }

    /// One column of a scan over the given physical positions.
    fn scan_column(&self, c: usize, positions: &[u32]) -> Column {
        let dict_ok =
            self.dicts[c].is_some() && self.stats.column(c).is_some_and(|s| s.null_count() == 0);
        if dict_ok {
            let cd = self.dicts[c].as_ref().expect("checked");
            return Column::Dict {
                codes: positions.iter().map(|&p| cd.codes[p as usize]).collect(),
                dict: cd.dict.clone(),
            };
        }
        Column::from_values(
            positions
                .iter()
                .map(|&p| self.rows[p as usize].values()[c].clone()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proql_common::{tup, ValueType};

    fn table() -> Table {
        Table::new(
            Schema::build(
                "N",
                &[
                    ("id", ValueType::Int),
                    ("name", ValueType::Str),
                    ("canon", ValueType::Bool),
                ],
                &[0, 1],
            )
            .unwrap(),
        )
    }

    #[test]
    fn insert_and_set_semantics() {
        let mut t = table();
        assert!(t.insert(tup![1, "cn1", false]).unwrap());
        assert!(!t.insert(tup![1, "cn1", true]).unwrap()); // same key: no-op
        assert!(t.insert(tup![1, "cn2", false]).unwrap()); // different key
        assert_eq!(t.len(), 2);
        // first writer wins
        assert_eq!(t.get_by_key(&tup![1, "cn1"]), Some(&tup![1, "cn1", false]));
    }

    #[test]
    fn schema_violation_rejected() {
        let mut t = table();
        assert!(t.insert(tup![1, 2, false]).is_err());
        assert!(t.insert(tup![1]).is_err());
    }

    #[test]
    fn contains_checks_full_tuple() {
        let mut t = table();
        t.insert(tup![1, "a", true]).unwrap();
        assert!(t.contains(&tup![1, "a", true]));
        assert!(!t.contains(&tup![1, "a", false]));
    }

    #[test]
    fn delete_and_scan() {
        let mut t = table();
        t.insert(tup![1, "a", true]).unwrap();
        t.insert(tup![2, "b", false]).unwrap();
        let removed = t.delete_by_key(&tup![1, "a"]).unwrap();
        assert_eq!(removed, tup![1, "a", true]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.scan(), vec![tup![2, "b", false]]);
        assert!(t.delete_by_key(&tup![1, "a"]).is_none());
    }

    #[test]
    fn reinsert_after_delete() {
        let mut t = table();
        t.insert(tup![1, "a", true]).unwrap();
        t.delete_by_key(&tup![1, "a"]).unwrap();
        assert!(t.insert(tup![1, "a", false]).unwrap());
        assert_eq!(t.get_by_key(&tup![1, "a"]), Some(&tup![1, "a", false]));
    }

    #[test]
    fn compaction_preserves_contents_and_indexes() {
        let mut t = table();
        t.create_index("by_name", vec![1], IndexKind::Hash).unwrap();
        for i in 0..10 {
            t.insert(tup![i, "x", true]).unwrap();
        }
        for i in 0..8 {
            t.delete_by_key(&tup![i, "x"]);
        }
        assert_eq!(t.len(), 2);
        let ix = t.find_index(&[1]).unwrap();
        let hits = t.index_lookup(ix, &tup!["x"]);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn index_lookup_skips_tombstones() {
        let mut t = table();
        t.create_index("by_name", vec![1], IndexKind::BTree)
            .unwrap();
        t.insert(tup![1, "a", true]).unwrap();
        t.insert(tup![2, "a", true]).unwrap();
        t.insert(tup![3, "b", true]).unwrap();
        t.delete_by_key(&tup![1, "a"]);
        let ix = t.find_index(&[1]).unwrap();
        assert_eq!(t.index_lookup(ix, &tup!["a"]), vec![tup![2, "a", true]]);
    }

    #[test]
    fn duplicate_index_name_rejected() {
        let mut t = table();
        t.create_index("i", vec![0], IndexKind::Hash).unwrap();
        assert!(t.create_index("i", vec![1], IndexKind::Hash).is_err());
    }

    #[test]
    fn find_index_is_order_insensitive() {
        let mut t = table();
        t.create_index("i", vec![1, 0], IndexKind::Hash).unwrap();
        assert!(t.find_index(&[0, 1]).is_some());
        assert!(t.find_index(&[0]).is_none());
    }

    #[test]
    fn stats_follow_inserts_and_deletes() {
        let mut t = table();
        t.insert(tup![1, "a", true]).unwrap();
        t.insert(tup![2, "a", false]).unwrap();
        t.insert(tup![3, "b", true]).unwrap();
        let s = t.stats();
        assert_eq!(s.rows(), 3);
        assert_eq!(s.column(0).unwrap().ndv(), 3);
        assert_eq!(s.column(1).unwrap().ndv(), 2);
        t.delete_by_key(&tup![3, "b"]);
        let s = t.stats();
        assert_eq!(s.rows(), 2);
        assert_eq!(s.column(1).unwrap().ndv(), 1);
        // Compaction must not disturb the incrementally-maintained stats.
        for i in 10..20 {
            t.insert(tup![i, "x", true]).unwrap();
        }
        for i in 10..20 {
            t.delete_by_key(&tup![i, "x"]);
        }
        assert_eq!(t.stats().rows(), t.len());
        assert_eq!(t.stats().column(1).unwrap().ndv(), 1);
        t.truncate();
        assert_eq!(t.stats().rows(), 0);
        assert_eq!(t.stats().column(0).unwrap().ndv(), 0);
    }

    #[test]
    fn truncate_empties() {
        let mut t = table();
        t.insert(tup![1, "a", true]).unwrap();
        t.truncate();
        assert!(t.is_empty());
        assert!(t.insert(tup![1, "a", true]).unwrap());
    }

    #[test]
    fn dictionary_is_maintained_across_insert_delete_truncate() {
        // Pin the knob on: this test is about dictionary maintenance, so
        // it must not go vacuous under the `PROQL_DICT=0` ablation run.
        let mut t = Table::with_dict(table().schema().clone(), true);
        assert!(t.has_dict());
        t.insert(tup![1, "a", true]).unwrap();
        t.insert(tup![2, "b", true]).unwrap();
        t.insert(tup![3, "a", true]).unwrap();
        let d = t.dictionary(1).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.code_of("a"), Some(0));
        // Deletes leave the dictionary alone (codes are append-only) but
        // stats NDV tracks live values exactly.
        t.delete_by_key(&tup![2, "b"]);
        assert_eq!(t.dictionary(1).unwrap().len(), 2);
        assert_eq!(t.stats().column(1).unwrap().ndv(), 1);
        // Compaction keeps codes aligned with the surviving rows.
        for i in 10..30 {
            t.insert(tup![i, "x", false]).unwrap();
        }
        for i in 10..30 {
            t.delete_by_key(&tup![i, "x"]);
        }
        let b = t.to_batch();
        assert_eq!(b.to_rows(), t.scan());
        t.truncate();
        assert_eq!(t.dictionary(1).unwrap().len(), 0);
        assert!(t.to_batch().is_empty());
    }

    #[test]
    fn to_batch_matches_from_rows_with_and_without_dict() {
        use crate::batch::Column;
        for dict in [true, false] {
            let mut t = Table::with_dict(table().schema().clone(), dict);
            t.insert(tup![1, "a", true]).unwrap();
            t.insert(tup![2, "b", false]).unwrap();
            t.insert(tup![3, "a", true]).unwrap();
            t.delete_by_key(&tup![2, "b"]);
            let b = t.to_batch();
            assert_eq!(b.to_rows(), t.scan());
            assert!(matches!(b.columns[0], Column::Int(_)));
            match (&b.columns[1], dict) {
                (Column::Dict { codes, .. }, true) => assert_eq!(codes, &vec![0, 0]),
                (Column::Str(_), false) => {}
                other => panic!("unexpected string column shape {other:?}"),
            }
        }
    }

    #[test]
    fn nullable_string_columns_degrade_on_scan() {
        let mut t = Table::with_dict(
            Schema::build("S", &[("id", ValueType::Int), ("s", ValueType::Str)], &[0]).unwrap(),
            true,
        );
        t.insert(tup![1, "a"]).unwrap();
        t.insert(Tuple::new(vec![Value::Int(2), Value::Null]))
            .unwrap();
        let b = t.to_batch();
        assert!(matches!(b.columns[1], crate::batch::Column::Any(_)));
        assert_eq!(b.to_rows(), t.scan());
        // Once the NULL is deleted the dictionary path is live again.
        t.delete_by_key(&tup![2]);
        assert!(matches!(
            t.to_batch().columns[1],
            crate::batch::Column::Dict { .. }
        ));
    }

    #[test]
    fn zone_pruned_scan_is_exact() {
        use crate::expr::BinOp;
        let mut t = Table::with_dict(
            Schema::build("Z", &[("id", ValueType::Int), ("s", ValueType::Str)], &[0]).unwrap(),
            true,
        );
        let n = ZONE_ROWS * 3 + 17;
        for i in 0..n {
            t.insert(tup![i as i64, format!("s{}", i % 7)]).unwrap();
        }
        // id < ZONE_ROWS/2 lives entirely in zone 0: two zones skip.
        let preds = vec![ZonePred::Cmp(
            0,
            BinOp::Lt,
            Value::Int(ZONE_ROWS as i64 / 2),
        )];
        let (b, skipped) = t.to_batch_pruned(Some(&preds));
        assert_eq!(skipped, 3);
        assert_eq!(b.len(), ZONE_ROWS);
        // The surviving zone still contains every candidate row.
        let all: Vec<_> = t
            .scan()
            .into_iter()
            .filter(|r| r.values()[0] < Value::Int(ZONE_ROWS as i64 / 2))
            .collect();
        let got: Vec<_> = b
            .to_rows()
            .into_iter()
            .filter(|r| r.values()[0] < Value::Int(ZONE_ROWS as i64 / 2))
            .collect();
        assert_eq!(got, all);
    }
}
