//! Relational-algebra plans.
//!
//! These are the executable form of the SQL the paper generates: each
//! unfolded conjunctive rule becomes a tree of scans, equi-joins, filters,
//! and a projection; alternatives are combined with `UNION ALL`; and the
//! annotation-computation step adds a final `GROUP BY` + aggregate +
//! `HAVING` (paper §4.2.4).

use crate::expr::Expr;
use proql_common::{Attribute, Schema, Tuple, ValueType};

/// Which input of a hash join the hash table is built on. Set by the
/// optimizer from catalog cardinality estimates ([`crate::optimize::optimize_with`]);
/// `Auto` lets the batch executor decide from the actual materialized input
/// sizes (and means "right" for the row executor, its historical behavior).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BuildSide {
    /// Decide at execution time.
    #[default]
    Auto,
    /// Build the hash table on the left input, probe with the right.
    Left,
    /// Build the hash table on the right input, probe with the left.
    Right,
}

/// Join variants. Outer joins are required for building subpath/prefix/suffix
/// ASRs (paper §5.1: "a left outerjoin results in a path and its prefixes…").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinType {
    /// Inner equi-join.
    Inner,
    /// Keep unmatched left rows, padding right columns with NULL.
    LeftOuter,
    /// Keep unmatched right rows, padding left columns with NULL.
    RightOuter,
    /// Keep unmatched rows from both sides.
    FullOuter,
}

/// Aggregate functions supported by the grouping operator.
///
/// The paper evaluates semiring sums in SQL with `SUM` (derivability / trust
/// / number of derivations, with booleans encoded as 0/1) and `MIN`
/// (weight/cost, confidentiality); `MAX`/`BoolOr`/`BoolAnd` round out the
/// set for the other orderings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Row count.
    Count,
    /// Numeric sum of a column.
    Sum(usize),
    /// Minimum of a column.
    Min(usize),
    /// Maximum of a column.
    Max(usize),
    /// OR of a boolean column.
    BoolOr(usize),
    /// AND of a boolean column.
    BoolAnd(usize),
}

impl AggFunc {
    /// The column the aggregate reads, if any.
    pub fn input_column(&self) -> Option<usize> {
        match self {
            AggFunc::Count => None,
            AggFunc::Sum(c)
            | AggFunc::Min(c)
            | AggFunc::Max(c)
            | AggFunc::BoolOr(c)
            | AggFunc::BoolAnd(c) => Some(*c),
        }
    }

    /// Name used in rendered SQL.
    pub fn sql_name(&self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum(_) => "SUM",
            AggFunc::Min(_) => "MIN",
            AggFunc::Max(_) => "MAX",
            AggFunc::BoolOr(_) => "BOOL_OR",
            AggFunc::BoolAnd(_) => "BOOL_AND",
        }
    }
}

/// One output aggregate with a column name.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    /// The function.
    pub func: AggFunc,
    /// Output column name.
    pub name: String,
}

impl Aggregate {
    /// Build an aggregate output column.
    pub fn new(func: AggFunc, name: impl Into<String>) -> Self {
        Aggregate {
            func,
            name: name.into(),
        }
    }
}

/// A relational-algebra plan tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Scan a named table or view.
    Scan {
        /// Table/view name in the catalog.
        table: String,
    },
    /// Inline constant relation.
    Values {
        /// Schema of the rows.
        schema: Schema,
        /// The rows.
        rows: Vec<Tuple>,
    },
    /// Filter rows by a predicate.
    Filter {
        /// Input plan.
        input: Box<Plan>,
        /// Predicate over the input's columns.
        predicate: Expr,
    },
    /// Compute output columns from input rows.
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// One expression per output column.
        exprs: Vec<Expr>,
        /// Output column names (len == exprs.len()).
        names: Vec<String>,
    },
    /// Hash equi-join.
    Join {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// Join variant.
        join_type: JoinType,
        /// Key columns on the left input.
        left_keys: Vec<usize>,
        /// Key columns on the right input (same length as `left_keys`).
        right_keys: Vec<usize>,
        /// Hash-table build side (performance hint; never affects results).
        build: BuildSide,
    },
    /// N-ary union. `distinct: false` is SQL `UNION ALL`.
    Union {
        /// Inputs, all with identical arity.
        inputs: Vec<Plan>,
        /// Deduplicate output rows.
        distinct: bool,
    },
    /// Remove duplicate rows.
    Distinct {
        /// Input plan.
        input: Box<Plan>,
    },
    /// Group by + aggregate + HAVING.
    Aggregate {
        /// Input plan.
        input: Box<Plan>,
        /// Grouping columns (come first in the output).
        group_by: Vec<usize>,
        /// Aggregates (appended after the grouping columns).
        aggs: Vec<Aggregate>,
        /// Optional predicate over the *output* row (group cols + agg cols).
        having: Option<Expr>,
    },
    /// Sort by columns ascending.
    Sort {
        /// Input plan.
        input: Box<Plan>,
        /// Sort key columns (lexicographic).
        by: Vec<usize>,
    },
    /// Keep the first `n` rows.
    Limit {
        /// Input plan.
        input: Box<Plan>,
        /// Row budget.
        n: usize,
    },
    /// Direct index lookup: rows of `table` whose `columns` equal `key`.
    /// Produced by the optimizer from `Filter(Scan)` when an index matches.
    IndexLookup {
        /// Table name.
        table: String,
        /// Indexed column positions.
        columns: Vec<usize>,
        /// Key values, aligned with `columns`.
        key: Vec<proql_common::Value>,
        /// Residual predicate not covered by the index (if any).
        residual: Option<Expr>,
    },
}

impl Plan {
    /// Scan helper.
    pub fn scan(table: impl Into<String>) -> Plan {
        Plan::Scan {
            table: table.into(),
        }
    }

    /// Filter helper.
    pub fn filter(self, predicate: Expr) -> Plan {
        Plan::Filter {
            input: Box::new(self),
            predicate,
        }
    }

    /// Project helper with `cN` default names.
    pub fn project(self, exprs: Vec<Expr>) -> Plan {
        let names = (0..exprs.len()).map(|i| format!("c{i}")).collect();
        Plan::Project {
            input: Box::new(self),
            exprs,
            names,
        }
    }

    /// Project helper with explicit names.
    pub fn project_named(self, exprs: Vec<Expr>, names: Vec<String>) -> Plan {
        Plan::Project {
            input: Box::new(self),
            exprs,
            names,
        }
    }

    /// Inner-join helper.
    pub fn join(self, right: Plan, left_keys: Vec<usize>, right_keys: Vec<usize>) -> Plan {
        Plan::Join {
            left: Box::new(self),
            right: Box::new(right),
            join_type: JoinType::Inner,
            left_keys,
            right_keys,
            build: BuildSide::Auto,
        }
    }

    /// Join helper with explicit type.
    pub fn join_as(
        self,
        right: Plan,
        join_type: JoinType,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
    ) -> Plan {
        Plan::Join {
            left: Box::new(self),
            right: Box::new(right),
            join_type,
            left_keys,
            right_keys,
            build: BuildSide::Auto,
        }
    }

    /// UNION ALL helper.
    pub fn union_all(inputs: Vec<Plan>) -> Plan {
        Plan::Union {
            inputs,
            distinct: false,
        }
    }

    /// Distinct helper.
    pub fn distinct(self) -> Plan {
        Plan::Distinct {
            input: Box::new(self),
        }
    }

    /// Count the base-table scans in the plan (used in tests and stats;
    /// joins-per-rule is the paper's complexity driver).
    pub fn count_scans(&self) -> usize {
        match self {
            Plan::Scan { .. } | Plan::IndexLookup { .. } => 1,
            Plan::Values { .. } => 0,
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::Distinct { input }
            | Plan::Aggregate { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. } => input.count_scans(),
            Plan::Join { left, right, .. } => left.count_scans() + right.count_scans(),
            Plan::Union { inputs, .. } => inputs.iter().map(Plan::count_scans).sum(),
        }
    }

    /// Collect the names of every table or view this plan reads into
    /// `out`. Used by the query service's result cache to expand view
    /// definitions down to the base tables a cached result depends on.
    pub fn collect_scanned(&self, out: &mut std::collections::BTreeSet<String>) {
        match self {
            Plan::Scan { table } | Plan::IndexLookup { table, .. } => {
                out.insert(table.clone());
            }
            Plan::Values { .. } => {}
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::Distinct { input }
            | Plan::Aggregate { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. } => input.collect_scanned(out),
            Plan::Join { left, right, .. } => {
                left.collect_scanned(out);
                right.collect_scanned(out);
            }
            Plan::Union { inputs, .. } => {
                for p in inputs {
                    p.collect_scanned(out);
                }
            }
        }
    }

    /// Count join operators in the plan.
    pub fn count_joins(&self) -> usize {
        match self {
            Plan::Scan { .. } | Plan::IndexLookup { .. } | Plan::Values { .. } => 0,
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::Distinct { input }
            | Plan::Aggregate { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. } => input.count_joins(),
            Plan::Join { left, right, .. } => 1 + left.count_joins() + right.count_joins(),
            Plan::Union { inputs, .. } => inputs.iter().map(Plan::count_joins).sum(),
        }
    }
}

/// Build an anonymous output schema with the given column names, all typed
/// `Null` ("any"). Plans are dynamically typed; names matter only for
/// rendering and for mapping provenance-relation columns.
pub fn anon_schema(name: &str, names: &[String]) -> Schema {
    Schema::new(
        name,
        names
            .iter()
            .map(|n| Attribute::new(n.clone(), ValueType::Null))
            .collect(),
        vec![],
    )
    .expect("anonymous schema construction cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proql_common::tup;

    #[test]
    fn builders_compose() {
        let p = Plan::scan("A")
            .filter(Expr::col(0).eq(Expr::lit(1)))
            .join(Plan::scan("B"), vec![0], vec![0])
            .project(vec![Expr::col(0)]);
        assert_eq!(p.count_scans(), 2);
        assert_eq!(p.count_joins(), 1);
    }

    #[test]
    fn union_counts_all_branches() {
        let p = Plan::union_all(vec![
            Plan::scan("A").join(Plan::scan("B"), vec![0], vec![0]),
            Plan::scan("C"),
        ]);
        assert_eq!(p.count_scans(), 3);
        assert_eq!(p.count_joins(), 1);
    }

    #[test]
    fn agg_func_columns() {
        assert_eq!(AggFunc::Count.input_column(), None);
        assert_eq!(AggFunc::Sum(3).input_column(), Some(3));
        assert_eq!(AggFunc::Min(1).sql_name(), "MIN");
    }

    #[test]
    fn values_plan_has_no_scans() {
        let p = Plan::Values {
            schema: anon_schema("v", &["a".into()]),
            rows: vec![tup![1]],
        };
        assert_eq!(p.count_scans(), 0);
    }
}
