//! # proql-storage
//!
//! An embedded, in-memory relational engine. This is the substrate standing
//! in for the RDBMS (DB2) the paper runs on: ProQL queries are translated to
//! unions of conjunctive queries plus a grouping/aggregation step, and those
//! plans execute here.
//!
//! The engine provides:
//! * typed [`Table`]s with primary keys and secondary hash/B-tree [`Index`]es,
//! * a [`Database`] catalog with virtual [views](Database::create_view)
//!   (used for *superfluous* provenance relations, paper §4.1),
//! * a relational-algebra [`Plan`] language — scan, filter, project,
//!   inner/left/right/full hash joins, union (all/distinct), aggregation —
//!   mirroring the `SELECT..FROM..WHERE`, `UNION ALL`, and `GROUP
//!   BY..HAVING` blocks the paper generates,
//! * a **columnar batch executor** ([`batch_exec`], the default): typed
//!   column vectors ([`batch::Column`] / [`RecordBatch`]), vectorized
//!   predicate evaluation, hash equi-joins with optimizer-picked build
//!   sides, and hash-grouped aggregation — with an optional
//!   **morsel-driven parallel** mode ([`Parallelism`], via
//!   [`execute_batch_opts`]) that is bit-identical to the serial pass,
//! * a row-at-a-time [executor](exec::execute) (hash-join or nested-loop
//!   [`JoinAlgo`]) kept as the equivalence oracle and ablation baseline —
//!   pick one via [`ExecMode`] / [`execute_with`],
//! * an incrementally-maintained [statistics subsystem](stats) (per-table
//!   row counts, per-column NDV/min-max) feeding a **cost-based
//!   multi-pass [optimizer](optimize::optimize_with)** — selection
//!   pushdown, index conversion, join reordering over equi-join chains,
//!   build-side selection — plus an `EXPLAIN`-style
//!   [SQL renderer](explain::to_sql) and
//!   [operator-tree renderer](explain::explain_tree) with estimated rows
//!   per operator.

pub mod batch;
pub mod batch_exec;
pub mod database;
pub mod dict;
pub mod exec;
pub mod explain;
pub mod expr;
pub mod index;
pub mod optimize;
pub mod plan;
pub mod stats;
pub mod table;
pub mod zone;

pub use batch::{Column, RecordBatch};
pub use batch_exec::{
    batch_aggregate, batch_aggregate_opts, execute_batch, execute_batch_opts,
    execute_batch_profiled, execute_with, execute_with_opts, ExecMode, OpStat,
};
pub use database::Database;
pub use dict::Dictionary;
pub use exec::{execute, JoinAlgo, Relation};
pub use expr::{BinOp, Expr};
pub use index::{Index, IndexKind};
pub use optimize::{OptimizerConfig, Pass};
pub use plan::{AggFunc, Aggregate, BuildSide, JoinType, Plan};
pub use proql_common::Parallelism;
pub use stats::{ColumnStats, TableStats};
pub use table::Table;
