//! The catalog: named tables and virtual views.

use crate::plan::Plan;
use crate::table::Table;
use proql_common::{Error, Result, Schema, Tuple};
use std::collections::BTreeMap;

/// An in-memory database: a set of named [`Table`]s plus virtual views.
///
/// Views exist to implement the paper's **superfluous provenance relations**
/// (§4.1): when a mapping is a pure projection, its provenance relation is
/// not materialized but defined as a view over the source relation.
#[derive(Debug, Default, Clone)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    views: BTreeMap<String, View>,
}

/// A named virtual view: a plan plus the schema its output rows follow.
#[derive(Debug, Clone)]
pub struct View {
    /// Definition; may reference base tables and other views (acyclically).
    pub plan: Plan,
    /// Output schema.
    pub schema: Schema,
}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Create a table with `schema` named after the schema.
    pub fn create_table(&mut self, schema: Schema) -> Result<()> {
        let name = schema.name().to_string();
        if self.tables.contains_key(&name) || self.views.contains_key(&name) {
            return Err(Error::AlreadyExists(format!("relation {name}")));
        }
        self.tables.insert(name, Table::new(schema));
        Ok(())
    }

    /// Create (or replace) a virtual view.
    pub fn create_view(
        &mut self,
        name: impl Into<String>,
        plan: Plan,
        schema: Schema,
    ) -> Result<()> {
        let name = name.into();
        if self.tables.contains_key(&name) {
            return Err(Error::AlreadyExists(format!(
                "relation {name} exists as a base table"
            )));
        }
        self.views.insert(name, View { plan, schema });
        Ok(())
    }

    /// Drop a table or view.
    pub fn drop_relation(&mut self, name: &str) -> Result<()> {
        if self.tables.remove(name).is_some() || self.views.remove(name).is_some() {
            Ok(())
        } else {
            Err(Error::NotFound(format!("relation {name}")))
        }
    }

    /// Access a base table.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| Error::NotFound(format!("table {name}")))
    }

    /// Mutable access to a base table.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| Error::NotFound(format!("table {name}")))
    }

    /// Access a view definition.
    pub fn view(&self, name: &str) -> Option<&View> {
        self.views.get(name)
    }

    /// True iff `name` is a base table or a view.
    pub fn has_relation(&self, name: &str) -> bool {
        self.tables.contains_key(name) || self.views.contains_key(name)
    }

    /// True iff `name` is a base table.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Schema of a table or view.
    pub fn schema_of(&self, name: &str) -> Result<&Schema> {
        if let Some(t) = self.tables.get(name) {
            Ok(t.schema())
        } else if let Some(v) = self.views.get(name) {
            Ok(&v.schema)
        } else {
            Err(Error::NotFound(format!("relation {name}")))
        }
    }

    /// Insert a tuple into a base table.
    pub fn insert(&mut self, table: &str, tuple: Tuple) -> Result<bool> {
        self.table_mut(table)?.insert(tuple)
    }

    /// Names of all base tables.
    pub fn table_names(&self) -> impl Iterator<Item = &str> + '_ {
        self.tables.keys().map(String::as_str)
    }

    /// Names of all views.
    pub fn view_names(&self) -> impl Iterator<Item = &str> + '_ {
        self.views.keys().map(String::as_str)
    }

    /// Total number of live rows across all base tables (the paper's
    /// "instance size" metric in Figures 9–10).
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proql_common::{tup, ValueType};

    fn schema(name: &str) -> Schema {
        Schema::build(name, &[("id", ValueType::Int)], &[0]).unwrap()
    }

    #[test]
    fn create_and_insert() {
        let mut db = Database::new();
        db.create_table(schema("A")).unwrap();
        assert!(db.insert("A", tup![1]).unwrap());
        assert!(!db.insert("A", tup![1]).unwrap());
        assert_eq!(db.table("A").unwrap().len(), 1);
        assert_eq!(db.total_rows(), 1);
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut db = Database::new();
        db.create_table(schema("A")).unwrap();
        assert!(db.create_table(schema("A")).is_err());
        assert!(db.create_view("A", Plan::scan("B"), schema("A")).is_err());
    }

    #[test]
    fn views_are_relations_but_not_tables() {
        let mut db = Database::new();
        db.create_table(schema("A")).unwrap();
        db.create_view("V", Plan::scan("A"), schema("V")).unwrap();
        assert!(db.has_relation("V"));
        assert!(!db.has_table("V"));
        assert_eq!(db.schema_of("V").unwrap().name(), "V");
        assert!(db.table("V").is_err());
    }

    #[test]
    fn drop_relation() {
        let mut db = Database::new();
        db.create_table(schema("A")).unwrap();
        db.drop_relation("A").unwrap();
        assert!(!db.has_relation("A"));
        assert!(db.drop_relation("A").is_err());
    }

    #[test]
    fn missing_table_errors() {
        let db = Database::new();
        assert!(db.table("nope").is_err());
        assert!(db.schema_of("nope").is_err());
    }
}
