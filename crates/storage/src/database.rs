//! The catalog: named tables and virtual views.

use crate::plan::Plan;
use crate::table::Table;
use proql_common::{Error, Result, Schema, Tuple};
use std::collections::BTreeMap;
use std::sync::Arc;

/// An in-memory database: a set of named [`Table`]s plus virtual views.
///
/// Views exist to implement the paper's **superfluous provenance relations**
/// (§4.1): when a mapping is a pure projection, its provenance relation is
/// not materialized but defined as a view over the source relation.
///
/// # Shared-structure snapshots
///
/// Tables are stored behind `Arc`s, so [`Clone`] is a **snapshot**: it costs
/// O(#relations) pointer bumps, and the clone shares every table's storage
/// with the original. Mutation goes through [`Database::table_mut`], which
/// copy-on-writes at table granularity — only the tables a write actually
/// touches are materialized in the new version. This is what makes the
/// single-writer service's clone-mutate-publish write path proportional to
/// the delta instead of the database.
#[derive(Debug, Clone)]
pub struct Database {
    tables: BTreeMap<String, Arc<Table>>,
    views: Arc<BTreeMap<String, View>>,
    /// Whether tables created through this catalog dictionary-encode their
    /// string columns (seeded from `PROQL_DICT`, overridable per database).
    dict_default: bool,
}

impl Default for Database {
    fn default() -> Self {
        Database {
            tables: BTreeMap::new(),
            views: Arc::new(BTreeMap::new()),
            dict_default: crate::table::dict_default(),
        }
    }
}

/// A named virtual view: a plan plus the schema its output rows follow.
#[derive(Debug, Clone)]
pub struct View {
    /// Definition; may reference base tables and other views (acyclically).
    pub plan: Plan,
    /// Output schema.
    pub schema: Schema,
}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Override the dictionary-encoding default for tables created from
    /// now on (existing tables keep their encoding). Tests and benches use
    /// this to sweep dict-on vs dict-off without touching the environment.
    pub fn set_dict_encoding(&mut self, enabled: bool) {
        self.dict_default = enabled;
    }

    /// Whether newly created tables dictionary-encode string columns.
    pub fn dict_encoding(&self) -> bool {
        self.dict_default
    }

    /// Create a table with `schema` named after the schema.
    pub fn create_table(&mut self, schema: Schema) -> Result<()> {
        let name = schema.name().to_string();
        if self.tables.contains_key(&name) || self.views.contains_key(&name) {
            return Err(Error::AlreadyExists(format!("relation {name}")));
        }
        self.tables
            .insert(name, Arc::new(Table::with_dict(schema, self.dict_default)));
        Ok(())
    }

    /// Create (or replace) a virtual view.
    pub fn create_view(
        &mut self,
        name: impl Into<String>,
        plan: Plan,
        schema: Schema,
    ) -> Result<()> {
        let name = name.into();
        if self.tables.contains_key(&name) {
            return Err(Error::AlreadyExists(format!(
                "relation {name} exists as a base table"
            )));
        }
        Arc::make_mut(&mut self.views).insert(name, View { plan, schema });
        Ok(())
    }

    /// Drop a table or view.
    pub fn drop_relation(&mut self, name: &str) -> Result<()> {
        if self.tables.remove(name).is_some() {
            Ok(())
        } else if self.views.contains_key(name) {
            Arc::make_mut(&mut self.views).remove(name);
            Ok(())
        } else {
            Err(Error::NotFound(format!("relation {name}")))
        }
    }

    /// Access a base table.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .map(Arc::as_ref)
            .ok_or_else(|| Error::NotFound(format!("table {name}")))
    }

    /// Mutable access to a base table. When the table's storage is shared
    /// with another snapshot, it is materialized (deep-copied) first —
    /// copy-on-write at table granularity.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(name)
            .map(Arc::make_mut)
            .ok_or_else(|| Error::NotFound(format!("table {name}")))
    }

    /// Access a view definition.
    pub fn view(&self, name: &str) -> Option<&View> {
        self.views.get(name)
    }

    /// True iff `name` is a base table or a view.
    pub fn has_relation(&self, name: &str) -> bool {
        self.tables.contains_key(name) || self.views.contains_key(name)
    }

    /// True iff `name` is a base table.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Schema of a table or view.
    pub fn schema_of(&self, name: &str) -> Result<&Schema> {
        if let Some(t) = self.tables.get(name) {
            Ok(t.schema())
        } else if let Some(v) = self.views.get(name) {
            Ok(&v.schema)
        } else {
            Err(Error::NotFound(format!("relation {name}")))
        }
    }

    /// Insert a tuple into a base table.
    pub fn insert(&mut self, table: &str, tuple: Tuple) -> Result<bool> {
        self.table_mut(table)?.insert(tuple)
    }

    /// Names of all base tables.
    pub fn table_names(&self) -> impl Iterator<Item = &str> + '_ {
        self.tables.keys().map(String::as_str)
    }

    /// Names of all views.
    pub fn view_names(&self) -> impl Iterator<Item = &str> + '_ {
        self.views.keys().map(String::as_str)
    }

    /// True iff `name`'s storage is physically shared (same `Arc`) between
    /// `self` and `other`. Snapshot tests and the write benchmarks use this
    /// to assert that copy-on-write only materializes what a write touched.
    pub fn shares_table_storage(&self, other: &Database, name: &str) -> bool {
        match (self.tables.get(name), other.tables.get(name)) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// A clone with **no** shared structure: every table is materialized.
    /// This is the old O(database) write-path clone, kept for the
    /// full-rebuild baselines the write benchmarks compare against.
    pub fn deep_clone(&self) -> Database {
        let mut out = self.clone();
        let names: Vec<String> = out.table_names().map(str::to_string).collect();
        for name in names {
            let _ = out.table_mut(&name);
        }
        out
    }

    /// Total number of live rows across all base tables (the paper's
    /// "instance size" metric in Figures 9–10).
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proql_common::{tup, ValueType};

    fn schema(name: &str) -> Schema {
        Schema::build(name, &[("id", ValueType::Int)], &[0]).unwrap()
    }

    #[test]
    fn create_and_insert() {
        let mut db = Database::new();
        db.create_table(schema("A")).unwrap();
        assert!(db.insert("A", tup![1]).unwrap());
        assert!(!db.insert("A", tup![1]).unwrap());
        assert_eq!(db.table("A").unwrap().len(), 1);
        assert_eq!(db.total_rows(), 1);
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut db = Database::new();
        db.create_table(schema("A")).unwrap();
        assert!(db.create_table(schema("A")).is_err());
        assert!(db.create_view("A", Plan::scan("B"), schema("A")).is_err());
    }

    #[test]
    fn views_are_relations_but_not_tables() {
        let mut db = Database::new();
        db.create_table(schema("A")).unwrap();
        db.create_view("V", Plan::scan("A"), schema("V")).unwrap();
        assert!(db.has_relation("V"));
        assert!(!db.has_table("V"));
        assert_eq!(db.schema_of("V").unwrap().name(), "V");
        assert!(db.table("V").is_err());
    }

    #[test]
    fn drop_relation() {
        let mut db = Database::new();
        db.create_table(schema("A")).unwrap();
        db.drop_relation("A").unwrap();
        assert!(!db.has_relation("A"));
        assert!(db.drop_relation("A").is_err());
    }

    #[test]
    fn missing_table_errors() {
        let db = Database::new();
        assert!(db.table("nope").is_err());
        assert!(db.schema_of("nope").is_err());
    }

    #[test]
    fn clone_shares_storage_until_written() {
        let mut db = Database::new();
        db.create_table(schema("A")).unwrap();
        db.create_table(schema("B")).unwrap();
        db.insert("A", tup![1]).unwrap();
        db.insert("B", tup![1]).unwrap();

        let mut snap = db.clone();
        assert!(db.shares_table_storage(&snap, "A"));
        assert!(db.shares_table_storage(&snap, "B"));

        // Writing to A in the snapshot materializes only A.
        snap.insert("A", tup![2]).unwrap();
        assert!(!db.shares_table_storage(&snap, "A"));
        assert!(db.shares_table_storage(&snap, "B"));

        // The original is untouched (copy-on-write, not in-place).
        assert_eq!(db.table("A").unwrap().len(), 1);
        assert_eq!(snap.table("A").unwrap().len(), 2);
    }

    #[test]
    fn deep_clone_shares_nothing() {
        let mut db = Database::new();
        db.create_table(schema("A")).unwrap();
        db.insert("A", tup![1]).unwrap();
        let deep = db.deep_clone();
        assert!(!db.shares_table_storage(&deep, "A"));
        assert_eq!(deep.table("A").unwrap().len(), 1);
    }

    #[test]
    fn view_map_is_cow_too() {
        let mut db = Database::new();
        db.create_table(schema("A")).unwrap();
        db.create_view("V", Plan::scan("A"), schema("V")).unwrap();
        let mut snap = db.clone();
        snap.create_view("W", Plan::scan("A"), schema("W")).unwrap();
        assert!(db.view("W").is_none());
        assert!(snap.view("W").is_some());
        assert!(snap.view("V").is_some());
    }
}
