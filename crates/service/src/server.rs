//! A zero-dependency TCP front end over [`ServiceCore`].
//!
//! `std::net` only: an acceptor thread hands incoming connections to a
//! fixed pool of worker threads over an `mpsc` channel; each worker
//! owns one connection at a time and serves the line protocol
//! ([`crate::proto`]) until the peer closes or sends `QUIT`. Because a
//! worker is pinned to its connection, the pool size bounds the number
//! of *concurrent connections*, not requests.

use crate::core::{ServiceCore, SubscriptionEvent};
use crate::proto::{handle_line, push_json, subscribe_json};
use proql_common::{Error, Result};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A running server: connection details plus shutdown control. Dropping
/// the handle shuts the server down and joins every thread.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, close idle workers, and join all threads.
    /// Connections currently being served finish their current line.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and serve
/// `core` on `workers` connection-handler threads.
pub fn serve(core: Arc<ServiceCore>, addr: &str, workers: usize) -> Result<ServerHandle> {
    let listener = TcpListener::bind(addr).map_err(io_err)?;
    let addr = listener.local_addr().map_err(io_err)?;
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));

    let mut threads = Vec::new();
    for _ in 0..workers.max(1) {
        let core = Arc::clone(&core);
        let rx = Arc::clone(&rx);
        let stop = Arc::clone(&stop);
        threads.push(std::thread::spawn(move || worker_loop(core, rx, stop)));
    }

    let acceptor_stop = Arc::clone(&stop);
    threads.push(std::thread::spawn(move || {
        for conn in listener.incoming() {
            if acceptor_stop.load(Ordering::SeqCst) {
                break;
            }
            match conn {
                // A send error means every worker is gone; stop accepting.
                Ok(stream) => {
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(_) => continue,
            }
        }
        // Dropping `tx` unblocks idle workers.
    }));

    Ok(ServerHandle {
        addr,
        stop,
        threads,
    })
}

fn worker_loop(core: Arc<ServiceCore>, rx: Arc<Mutex<Receiver<TcpStream>>>, stop: Arc<AtomicBool>) {
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // Hold the receiver lock only while picking up a connection. A
        // worker that panicked mid-connection poisons the queue lock, but
        // the receiver itself is still usable — recover instead of letting
        // one crash starve every remaining worker.
        let stream = match rx.lock().unwrap_or_else(|e| e.into_inner()).recv() {
            Ok(s) => s,
            Err(_) => return, // acceptor gone
        };
        let _ = serve_connection(&core, stream, &stop);
    }
}

fn serve_connection(
    core: &ServiceCore,
    stream: TcpStream,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    // Per-connection subscription plumbing: every SUBSCRIBE on this
    // connection shares one event channel, drained into `PUSH` lines
    // between requests (and on read timeouts, so push latency is bounded
    // by the read timeout even on an idle connection).
    let (push_tx, push_rx) = channel::<(u64, SubscriptionEvent)>();
    let mut sub_ids: Vec<u64> = Vec::new();
    let result = serve_connection_inner(core, stream, stop, &push_tx, &push_rx, &mut sub_ids);
    for id in sub_ids {
        core.unsubscribe(id);
    }
    result
}

fn serve_connection_inner(
    core: &ServiceCore,
    stream: TcpStream,
    stop: &AtomicBool,
    push_tx: &Sender<(u64, SubscriptionEvent)>,
    push_rx: &Receiver<(u64, SubscriptionEvent)>,
    sub_ids: &mut Vec<u64>,
) -> std::io::Result<()> {
    // A finite read timeout lets the worker notice shutdown even while a
    // client holds its connection open without sending anything; the
    // write timeout keeps a client that stops draining responses from
    // pinning the worker (and hanging shutdown) in `write_all`.
    stream.set_read_timeout(Some(std::time::Duration::from_millis(200)))?;
    stream.set_write_timeout(Some(std::time::Duration::from_secs(5)))?;
    // Request/response in lockstep: Nagle's algorithm only adds latency.
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        // Deliver pending subscription events before blocking on the
        // next request (dead subscriptions were already pruned serverside
        // when their send failed; a disconnected channel cannot happen —
        // we hold `push_tx`).
        while let Ok((id, event)) = push_rx.try_recv() {
            writer.write_all(b"PUSH ")?;
            writer.write_all(push_json(id, &event).as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()?;
        }
        // Keep `line` across timeouts: a timeout mid-request leaves the
        // partial bytes in place and the next read appends the rest.
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // EOF
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(e) => return Err(e),
        }
        let request = std::mem::take(&mut line);
        let trimmed = request.trim();
        if trimmed.eq_ignore_ascii_case("QUIT") {
            return Ok(());
        }
        if trimmed.is_empty() {
            continue;
        }
        // SUBSCRIBE is connection-stateful (it registers this
        // connection's push channel), so it is intercepted here rather
        // than dispatched through the stateless `handle_line`.
        let response = match subscribe_request(trimmed) {
            Some(query) => match core.subscribe_with(query, push_tx.clone()) {
                Ok((id, resp)) => {
                    sub_ids.push(id);
                    format!("OK {}", subscribe_json(id, &resp))
                }
                Err(e) => format!(
                    "ERR {}: {}",
                    e.kind(),
                    e.message().replace(['\n', '\r'], " ")
                ),
            },
            None => handle_line(core, trimmed),
        };
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
}

/// If `line` is a `SUBSCRIBE` request, return its query text.
fn subscribe_request(line: &str) -> Option<&str> {
    let (verb, rest) = line.split_once(char::is_whitespace)?;
    if verb.eq_ignore_ascii_case("SUBSCRIBE") {
        Some(rest.trim())
    } else {
        None
    }
}

/// A minimal blocking client for the line protocol — used by the
/// integration tests and the `serve` load generator.
///
/// `PUSH` lines (asynchronous subscription events) arriving while a
/// response is awaited are stashed and handed out in order via
/// [`Client::next_push`], so request/response callers never see them.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    pushes: VecDeque<String>,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: SocketAddr) -> Result<Client> {
        let stream = TcpStream::connect(addr).map_err(io_err)?;
        stream.set_nodelay(true).map_err(io_err)?;
        let writer = stream.try_clone().map_err(io_err)?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            pushes: VecDeque::new(),
        })
    }

    /// Read one non-push line, stashing any `PUSH` lines encountered.
    fn read_response(&mut self) -> Result<String> {
        loop {
            let mut response = String::new();
            let n = self.reader.read_line(&mut response).map_err(io_err)?;
            if n == 0 {
                return Err(Error::Other("server closed the connection".into()));
            }
            let response = response.trim_end().to_string();
            match response.strip_prefix("PUSH ") {
                Some(event) => self.pushes.push_back(event.to_string()),
                None => return Ok(response),
            }
        }
    }

    /// Send one request line, read one response line.
    pub fn request(&mut self, line: &str) -> Result<String> {
        self.writer.write_all(line.as_bytes()).map_err(io_err)?;
        self.writer.write_all(b"\n").map_err(io_err)?;
        self.writer.flush().map_err(io_err)?;
        self.read_response()
    }

    /// `QUERY` helper: sends the query, returns the `OK` JSON payload or
    /// the server's error.
    pub fn query(&mut self, proql: &str) -> Result<String> {
        expect_ok(self.request(&format!("QUERY {proql}"))?)
    }

    /// `STATS` helper.
    pub fn stats(&mut self) -> Result<String> {
        expect_ok(self.request("STATS")?)
    }

    /// `SUBSCRIBE` helper: returns the `OK` JSON payload (the initial
    /// answer plus the `subscription` id).
    pub fn subscribe(&mut self, proql: &str) -> Result<String> {
        expect_ok(self.request(&format!("SUBSCRIBE {proql}"))?)
    }

    /// Next pushed subscription event (the JSON after `PUSH `): a
    /// stashed one if available, else a blocking read. The server flushes
    /// pushes between requests, within its read-timeout cadence.
    pub fn next_push(&mut self) -> Result<String> {
        if let Some(event) = self.pushes.pop_front() {
            return Ok(event);
        }
        loop {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line).map_err(io_err)?;
            if n == 0 {
                return Err(Error::Other("server closed the connection".into()));
            }
            if let Some(event) = line.trim_end().strip_prefix("PUSH ") {
                return Ok(event.to_string());
            }
            // A non-push line here means responses and pushes raced;
            // that cannot happen in the lockstep client, so drop it.
        }
    }
}

fn expect_ok(response: String) -> Result<String> {
    match response.strip_prefix("OK ") {
        Some(json) => Ok(json.to_string()),
        None => Err(Error::Other(response)),
    }
}

fn io_err(e: std::io::Error) -> Error {
    Error::Other(format!("io: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{json_str_field, json_u64_field};
    use proql::engine::EngineOptions;
    use proql_provgraph::system::example_2_1;

    fn start(workers: usize) -> (Arc<ServiceCore>, ServerHandle) {
        let core = Arc::new(ServiceCore::new(
            example_2_1().unwrap(),
            EngineOptions::default(),
        ));
        let handle = serve(Arc::clone(&core), "127.0.0.1:0", workers).unwrap();
        (core, handle)
    }

    const Q: &str = "FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x";

    #[test]
    fn wire_session_query_delete_stats() {
        let (_core, handle) = start(2);
        let mut c = Client::connect(handle.addr()).unwrap();

        let first = c.query(Q).unwrap();
        assert_eq!(json_u64_field(&first, "bindings"), Some(4));
        assert_eq!(json_str_field(&first, "cache").as_deref(), Some("miss"));

        let second = c.query(Q).unwrap();
        assert_eq!(json_str_field(&second, "cache").as_deref(), Some("hit"));
        assert_eq!(
            json_str_field(&first, "digest"),
            json_str_field(&second, "digest")
        );

        let del = c.request("DELETE C 2,cn2").unwrap();
        assert!(del.starts_with("OK "), "{del}");

        let third = c.query(Q).unwrap();
        assert_eq!(json_u64_field(&third, "bindings"), Some(3));

        let stats = c.stats().unwrap();
        assert_eq!(json_u64_field(&stats, "writes"), Some(1));
        assert!(json_u64_field(&stats, "cache_hits").unwrap() >= 1);

        let err = c.request("QUERY FOR [O $x RETURN $x").unwrap();
        assert!(err.starts_with("ERR parse:"), "{err}");

        assert!(c.request("INVALIDATE").unwrap().starts_with("OK"));
        drop(c);
        handle.shutdown();
    }

    #[test]
    fn concurrent_clients_share_the_cache() {
        let (core, handle) = start(4);
        let addr = handle.addr();
        let results: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(move || {
                        let mut c = Client::connect(addr).unwrap();
                        let mut digests = Vec::new();
                        for _ in 0..5 {
                            let json = c.query(Q).unwrap();
                            digests.push(
                                json_str_field(&json, "digest")
                                    .unwrap()
                                    .parse::<u64>()
                                    .unwrap(),
                            );
                        }
                        digests
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(results.len(), 20);
        assert!(results.windows(2).all(|w| w[0] == w[1]));
        let stats = core.stats();
        assert_eq!(stats.queries, 20);
        assert!(stats.cache.hits >= 16, "stats: {stats:?}");
        handle.shutdown();
    }

    #[test]
    fn subscribe_pushes_deltas_and_resyncs_over_the_wire() {
        use proql_common::{tup, Schema, ValueType};
        use proql_provgraph::ProvenanceSystem;
        // An acyclic X → Y family: unfold strategy, so writes are
        // maintained and subscribers get deltas (not just resyncs).
        let mut sys = ProvenanceSystem::new();
        for name in ["X", "Y"] {
            sys.add_relation_with_local(
                Schema::build(name, &[("id", ValueType::Int), ("w", ValueType::Int)], &[0])
                    .unwrap(),
            )
            .unwrap();
        }
        sys.add_mapping_text("mxy: Y(i, w) :- X(i, w)").unwrap();
        for i in 0..5 {
            sys.insert_local("X", tup![i, i * 10]).unwrap();
        }
        sys.run_exchange().unwrap();
        let core = Arc::new(ServiceCore::new(sys, EngineOptions::default()));
        let handle = serve(Arc::clone(&core), "127.0.0.1:0", 2).unwrap();
        let qy = "FOR [Y $x] INCLUDE PATH [$x] <-+ [] RETURN $x";

        let mut c = Client::connect(handle.addr()).unwrap();
        let sub = c.subscribe(qy).unwrap();
        let sub_id = json_u64_field(&sub, "subscription").expect("subscription id");
        assert_eq!(json_u64_field(&sub, "bindings"), Some(5));

        // A touching write from another client: the maintained entry's
        // delta is pushed to the subscriber.
        let mut w = Client::connect(handle.addr()).unwrap();
        let del = w.request("DELETE X 0").unwrap();
        assert!(del.starts_with("OK "), "{del}");
        let push = c.next_push().unwrap();
        assert_eq!(json_u64_field(&push, "subscription"), Some(sub_id));
        assert_eq!(json_str_field(&push, "event").as_deref(), Some("delta"));
        assert!(json_u64_field(&push, "rows_patched").unwrap() > 0);
        let pushed_digest = json_u64_field(&push, "digest").unwrap();

        // The pushed digest is exactly what a re-query serves (a cache
        // hit on the patched entry).
        let requery = c.query(qy).unwrap();
        assert_eq!(json_str_field(&requery, "cache").as_deref(), Some("hit"));
        assert_eq!(json_u64_field(&requery, "bindings"), Some(4));
        assert_eq!(json_u64_field(&requery, "digest"), Some(pushed_digest));

        // Kill the entry, then write again: the subscriber must resync.
        assert!(c.request("INVALIDATE").unwrap().starts_with("OK"));
        let del2 = w.request("DELETE X 1").unwrap();
        assert!(del2.starts_with("OK "), "{del2}");
        let push2 = c.next_push().unwrap();
        assert_eq!(json_str_field(&push2, "event").as_deref(), Some("resync"));

        // Closing the subscriber's connection unsubscribes it.
        drop(c);
        for _ in 0..100 {
            if core.subscription_count() == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert_eq!(core.subscription_count(), 0);
        drop(w);
        handle.shutdown();
    }

    #[test]
    fn quit_closes_cleanly_and_server_survives() {
        let (_core, handle) = start(1);
        {
            let mut c = Client::connect(handle.addr()).unwrap();
            c.query(Q).unwrap();
            // QUIT gets no response; the connection just closes.
            let _ = c.writer.write_all(b"QUIT\n");
        }
        // The single worker must be free again for the next connection.
        let mut c2 = Client::connect(handle.addr()).unwrap();
        assert!(c2.query(Q).is_ok());
        drop(c2);
        handle.shutdown();
    }
}
