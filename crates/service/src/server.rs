//! A zero-dependency TCP front end over [`ServiceCore`], built around a
//! nonblocking readiness-driven event loop.
//!
//! One loop thread owns every connection socket: it [`crate::net::poll`]s
//! for readiness, accepts, reads into per-connection buffers, decodes
//! requests, and hands them to a fixed worker pool over a channel.
//! Workers never touch sockets — they execute the request and enqueue the
//! encoded response on the connection's outbound queue (a seq-numbered
//! reorder buffer, so pipelined requests complete out of order on the
//! pool but flush strictly in order), then wake the loop via
//! [`crate::net::Waker`]. The pool size bounds *concurrent request
//! execution*, not connections.
//!
//! Two wire protocols share the port, auto-detected from a connection's
//! first byte: the binary framing layer ([`crate::frame`], first byte
//! [`crate::frame::MAGIC`]) supports pipelining, out-of-band `PUSH`
//! frames, and explicit `OVERLOADED` shedding; anything else is the
//! legacy line protocol ([`crate::proto`]) served in the same loop.
//!
//! Backpressure and admission control are per connection: more than
//! [`ServerConfig::max_inflight`] unanswered requests, or an outbound
//! queue past [`ServerConfig::out_high_water`], sheds new requests with
//! an `OVERLOADED` frame (line mode: an `ERR overloaded:` line) *without
//! executing them*; past [`ServerConfig::out_hard_cap`] the loop stops
//! reading the connection entirely so TCP flow control pushes back on
//! the client. Shedding and latency are recorded in
//! [`crate::metrics::TransportMetrics`], surfaced through `STATS`.
//!
//! [`serve_blocking`] keeps the previous thread-per-connection blocking
//! design (minus its 200 ms read-timeout shutdown polling — shutdown now
//! closes the registered sockets directly) as a measurable baseline for
//! the `serve` bench.

use crate::core::{ReplFrameKind, ServiceCore, SubscriptionEvent};
use crate::frame::{self, verb};
use crate::metrics::TransportMetrics;
use crate::net::{poll, PollFd, WakeReceiver, Waker, POLLHUP, POLLIN, POLLOUT};
use crate::proto::dispatch;
use crate::proto::{error_payload, handle_line, push_json, subscribe_json};
use proql_common::{trace, Error, Result};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Recover from a poisoned lock: every structure here stays consistent
/// across a panicking holder (queues and counters, no multi-step
/// invariants worth dying for).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Tuning for the event-loop server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Request-executor threads (bounds concurrent execution).
    pub workers: usize,
    /// Per-connection cap on decoded-but-unanswered requests; beyond it
    /// new requests are shed with `OVERLOADED`.
    pub max_inflight: usize,
    /// Outbound-queue size (bytes) beyond which new requests are shed.
    pub out_high_water: usize,
    /// Outbound-queue size (bytes) beyond which the loop stops reading
    /// the connection (TCP backpressure).
    pub out_hard_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            max_inflight: 64,
            out_high_water: 1 << 20,
            out_hard_cap: 4 << 20,
        }
    }
}

/// A running server: connection details plus shutdown control. Dropping
/// the handle shuts the server down and joins every thread.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    waker: Option<Arc<Waker>>,
    registry: Option<Arc<BlockingRegistry>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, close every connection, and join all threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Event loop: one wake makes it observe `stop`. Blocking
        // baseline: unblock the acceptor with a throwaway connection and
        // every pinned worker by closing its registered socket.
        if let Some(waker) = &self.waker {
            waker.wake();
        }
        if let Some(registry) = &self.registry {
            let _ = TcpStream::connect(self.addr);
            registry.close_all();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and serve
/// `core` on the event loop with `workers` executor threads and default
/// backpressure limits.
pub fn serve(core: Arc<ServiceCore>, addr: &str, workers: usize) -> Result<ServerHandle> {
    serve_with(
        core,
        addr,
        ServerConfig {
            workers,
            ..ServerConfig::default()
        },
    )
}

/// [`serve`] with explicit [`ServerConfig`] limits.
pub fn serve_with(core: Arc<ServiceCore>, addr: &str, cfg: ServerConfig) -> Result<ServerHandle> {
    let listener = TcpListener::bind(addr).map_err(io_err)?;
    let addr = listener.local_addr().map_err(io_err)?;
    listener.set_nonblocking(true).map_err(io_err)?;
    let metrics = Arc::new(TransportMetrics::new());
    core.set_transport_metrics(Arc::clone(&metrics));
    let (waker, wake_rx) = Waker::pair().map_err(io_err)?;
    let waker = Arc::new(waker);
    let stop = Arc::new(AtomicBool::new(false));
    let (work_tx, work_rx) = channel::<Job>();
    let work_rx = Arc::new(Mutex::new(work_rx));

    let mut threads = Vec::new();
    for _ in 0..cfg.workers.max(1) {
        let core = Arc::clone(&core);
        let work_rx = Arc::clone(&work_rx);
        let waker = Arc::clone(&waker);
        let metrics = Arc::clone(&metrics);
        threads.push(std::thread::spawn(move || {
            worker_loop(core, work_rx, waker, metrics)
        }));
    }

    let ctx = Ctx {
        core,
        cfg,
        metrics,
        work_tx,
        waker: Arc::clone(&waker),
    };
    let loop_stop = Arc::clone(&stop);
    threads.push(std::thread::spawn(move || {
        event_loop(ctx, listener, loop_stop, wake_rx)
    }));

    Ok(ServerHandle {
        addr,
        stop,
        threads,
        waker: Some(waker),
        registry: None,
    })
}

/// Loop-wide context shared by dispatch helpers. Dropping it (when the
/// event loop returns) drops `work_tx`, which ends every worker.
struct Ctx {
    core: Arc<ServiceCore>,
    cfg: ServerConfig,
    metrics: Arc<TransportMetrics>,
    work_tx: Sender<Job>,
    waker: Arc<Waker>,
}

/// One decoded request traveling to the worker pool.
enum Request {
    Line(String),
    Frame(frame::Frame),
}

struct Job {
    conn: Arc<ConnShared>,
    seq: u64,
    req: Request,
    started: Instant,
}

/// The connection state shared with workers and subscription push sinks.
#[derive(Debug)]
struct ConnShared {
    out: Mutex<OutBuf>,
    /// Set once the loop has torn the connection down; sinks and workers
    /// stop enqueueing.
    closed: AtomicBool,
    /// Decoded-but-unanswered requests (admission control input).
    in_flight: AtomicUsize,
    /// Whether this connection speaks the binary framing (push sinks
    /// pick their encoding off this).
    binary: AtomicBool,
    /// Subscription ids to drop when the connection closes.
    subs: Mutex<Vec<u64>>,
    /// Replication subscription ids to drop when the connection closes.
    repl_subs: Mutex<Vec<u64>>,
    /// This connection's trace anchor (when tracing is enabled at
    /// accept): every request executed on the worker pool opens its
    /// span as a child of this context, so a pipelined batch
    /// reconstructs as one span tree no matter which workers ran it or
    /// in what order the reorder buffer released the responses.
    trace_ctx: Option<trace::Context>,
    waker: Arc<Waker>,
    metrics: Arc<TransportMetrics>,
}

impl ConnShared {
    /// Enqueue an out-of-band message (a push) and wake the loop. PUSH
    /// bytes bypass the reorder buffer: they are ordered with respect to
    /// each other and with already-completed responses, which is exactly
    /// the per-subscription in-order guarantee.
    fn push_oob(&self, bytes: Vec<u8>) {
        if self.closed.load(Ordering::Acquire) {
            return;
        }
        lock(&self.out).append(bytes);
        self.metrics.frames_out.fetch_add(1, Ordering::Relaxed);
        self.waker.wake();
    }
}

/// Outbound bytes for one connection: a flush queue fed in seq order by
/// a reorder buffer, so out-of-order worker completions never reorder
/// responses on the wire.
#[derive(Debug, Default)]
struct OutBuf {
    queue: VecDeque<Vec<u8>>,
    /// Bytes of `queue.front()` already written to the socket.
    head_written: usize,
    /// Total unwritten bytes (queue + pending), for backpressure.
    bytes: usize,
    /// Completed responses waiting for their predecessors.
    pending: BTreeMap<u64, Vec<u8>>,
    /// Next seq eligible to enter `queue`.
    next_release: u64,
}

impl OutBuf {
    /// A response for request `seq` is ready; release it (and any
    /// unblocked successors) to the flush queue in order.
    fn complete(&mut self, seq: u64, bytes: Vec<u8>) {
        self.bytes += bytes.len();
        self.pending.insert(seq, bytes);
        while let Some(b) = self.pending.remove(&self.next_release) {
            self.queue.push_back(b);
            self.next_release += 1;
        }
    }

    /// Append out-of-band bytes (pushes) directly to the flush queue.
    fn append(&mut self, bytes: Vec<u8>) {
        self.bytes += bytes.len();
        self.queue.push_back(bytes);
    }

    fn is_empty(&self) -> bool {
        self.queue.is_empty() && self.pending.is_empty()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Awaiting the first byte.
    Detect,
    Line,
    Binary,
}

/// Loop-local per-connection state (the loop thread exclusively owns the
/// socket).
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    shared: Arc<ConnShared>,
    rbuf: Vec<u8>,
    mode: Mode,
    /// Next request seq to assign (paired with `OutBuf::next_release`).
    next_seq: u64,
    /// QUIT received: read no more; close once responses drain.
    closing: bool,
    /// Tear down at the end of this loop iteration.
    dead: bool,
}

/// Largest buffered input per connection: one max frame. A line longer
/// than this is treated as framing corruption too.
const MAX_INPUT_BUFFER: usize = frame::MAX_PAYLOAD as usize + frame::HEADER_LEN;

/// Per-iteration read budget per connection, so one firehose connection
/// cannot starve the rest of the loop.
const READ_BUDGET: usize = 256 * 1024;

fn event_loop(ctx: Ctx, listener: TcpListener, stop: Arc<AtomicBool>, mut wake_rx: WakeReceiver) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = vec![0u8; 64 * 1024];
    loop {
        // Build the poll set: waker, listener, then one entry per
        // connection. Backpressure is expressed here — a connection past
        // its hard cap is simply not polled for reads.
        let mut fds = Vec::with_capacity(2 + conns.len());
        fds.push(PollFd::new(wake_rx.fd(), POLLIN));
        fds.push(PollFd::new(listener.as_raw_fd(), POLLIN));
        for c in &conns {
            let (out_empty, out_bytes) = {
                let out = lock(&c.shared.out);
                (out.queue.is_empty(), out.bytes)
            };
            let mut events = 0i16;
            if !c.closing && out_bytes < ctx.cfg.out_hard_cap {
                events |= POLLIN;
            }
            if !out_empty {
                events |= POLLOUT;
            }
            fds.push(PollFd::new(c.stream.as_raw_fd(), events));
        }
        if poll(&mut fds, None).is_err() {
            // EINTR is retried inside poll; anything else here is a
            // broken descriptor that the per-connection handling below
            // will surface. Yield briefly to avoid a hot error loop.
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        wake_rx.drain(&ctx.waker);
        if stop.load(Ordering::SeqCst) {
            break;
        }

        // Connections accepted below have no entry in this iteration's
        // poll set; only the polled prefix is serviced here.
        let polled = fds.len() - 2;
        if fds[1].ready(POLLIN) || fds[1].broken() {
            accept_new(&ctx, &listener, &mut conns);
        }

        for (i, c) in conns.iter_mut().take(polled).enumerate() {
            let pf = fds[2 + i];
            if pf.broken() {
                c.dead = true;
                continue;
            }
            if !c.closing && !c.dead && pf.ready(POLLIN | POLLHUP) {
                read_and_process(&ctx, c, &mut scratch);
            }
        }

        // Flush everything with queued output (new completions included,
        // whether or not POLLOUT was reported — WouldBlock is a no-op),
        // then reap finished connections.
        conns.retain_mut(|c| {
            if !c.dead && !flush_conn(c) {
                c.dead = true;
            }
            if !c.dead
                && c.closing
                && c.shared.in_flight.load(Ordering::Acquire) == 0
                && lock(&c.shared.out).is_empty()
            {
                c.dead = true;
            }
            if c.dead {
                close_conn(c, &ctx);
                false
            } else {
                true
            }
        });
    }
    for mut c in conns {
        close_conn(&mut c, &ctx);
    }
}

fn accept_new(ctx: &Ctx, listener: &TcpListener, conns: &mut Vec<Conn>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                    continue;
                }
                ctx.metrics
                    .connections_total
                    .fetch_add(1, Ordering::Relaxed);
                ctx.metrics.connections_open.fetch_add(1, Ordering::Relaxed);
                conns.push(Conn {
                    stream,
                    shared: Arc::new(ConnShared {
                        out: Mutex::new(OutBuf::default()),
                        closed: AtomicBool::new(false),
                        in_flight: AtomicUsize::new(0),
                        binary: AtomicBool::new(false),
                        subs: Mutex::new(Vec::new()),
                        repl_subs: Mutex::new(Vec::new()),
                        trace_ctx: trace::new_trace(),
                        waker: Arc::clone(&ctx.waker),
                        metrics: Arc::clone(&ctx.metrics),
                    }),
                    rbuf: Vec::new(),
                    mode: Mode::Detect,
                    next_seq: 0,
                    closing: false,
                    dead: false,
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(_) => break,
        }
    }
}

fn read_and_process(ctx: &Ctx, c: &mut Conn, scratch: &mut [u8]) {
    let mut total = 0;
    loop {
        match c.stream.read(scratch) {
            Ok(0) => {
                c.dead = true;
                break;
            }
            Ok(n) => {
                c.rbuf.extend_from_slice(&scratch[..n]);
                total += n;
                if total >= READ_BUDGET {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                c.dead = true;
                break;
            }
        }
    }
    process_input(ctx, c);
}

fn process_input(ctx: &Ctx, c: &mut Conn) {
    if c.mode == Mode::Detect {
        match c.rbuf.first() {
            None => return,
            Some(&frame::MAGIC) => {
                c.mode = Mode::Binary;
                c.shared.binary.store(true, Ordering::Relaxed);
            }
            Some(_) => c.mode = Mode::Line,
        }
    }
    match c.mode {
        Mode::Binary => process_frames(ctx, c),
        Mode::Line => process_lines(ctx, c),
        Mode::Detect => unreachable!("mode decided above"),
    }
    if c.rbuf.len() > MAX_INPUT_BUFFER {
        ctx.metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
        c.dead = true;
    }
    if c.closing || c.dead {
        c.rbuf.clear();
    }
}

fn process_frames(ctx: &Ctx, c: &mut Conn) {
    let mut consumed = 0;
    while !c.closing && !c.dead {
        match frame::decode(&c.rbuf[consumed..]) {
            Ok(Some((f, n))) => {
                consumed += n;
                if f.verb == verb::QUIT {
                    c.closing = true;
                } else {
                    dispatch_request(ctx, c, Request::Frame(f));
                }
            }
            Ok(None) => break,
            Err(_) => {
                ctx.metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
                c.dead = true;
            }
        }
    }
    c.rbuf.drain(..consumed);
}

fn process_lines(ctx: &Ctx, c: &mut Conn) {
    let mut consumed = 0;
    while !c.closing && !c.dead {
        let Some(pos) = c.rbuf[consumed..].iter().position(|&b| b == b'\n') else {
            break;
        };
        let line = String::from_utf8_lossy(&c.rbuf[consumed..consumed + pos])
            .trim()
            .to_string();
        consumed += pos + 1;
        if line.is_empty() {
            continue;
        }
        if line.eq_ignore_ascii_case("QUIT") {
            c.closing = true;
        } else {
            dispatch_request(ctx, c, Request::Line(line));
        }
    }
    c.rbuf.drain(..consumed);
}

/// Admission control, then hand-off: a request past the in-flight or
/// outbound-bytes limit is answered `OVERLOADED` through its seq slot
/// (so shed notices keep wire order too) without executing.
fn dispatch_request(ctx: &Ctx, c: &mut Conn, req: Request) {
    ctx.metrics.frames_in.fetch_add(1, Ordering::Relaxed);
    let seq = c.next_seq;
    c.next_seq += 1;
    let in_flight = c.shared.in_flight.load(Ordering::Acquire);
    let out_bytes = lock(&c.shared.out).bytes;
    if in_flight >= ctx.cfg.max_inflight || out_bytes >= ctx.cfg.out_high_water {
        ctx.metrics.shed_count.fetch_add(1, Ordering::Relaxed);
        let notice = match &req {
            Request::Frame(f) => frame::encode(verb::OVERLOADED, f.id, b""),
            Request::Line(_) => {
                b"ERR overloaded: request shed by admission control; drain responses and retry\n"
                    .to_vec()
            }
        };
        lock(&c.shared.out).complete(seq, notice);
        ctx.metrics.frames_out.fetch_add(1, Ordering::Relaxed);
        return;
    }
    c.shared.in_flight.fetch_add(1, Ordering::AcqRel);
    let job = Job {
        conn: Arc::clone(&c.shared),
        seq,
        req,
        started: Instant::now(),
    };
    if ctx.work_tx.send(job).is_err() {
        // Workers gone (can only happen mid-shutdown): answer in place.
        c.shared.in_flight.fetch_sub(1, Ordering::AcqRel);
        lock(&c.shared.out).complete(seq, b"ERR internal: worker pool unavailable\n".to_vec());
    }
}

/// Write queued output until the socket blocks. Returns false when the
/// connection is broken.
fn flush_conn(c: &mut Conn) -> bool {
    let mut out = lock(&c.shared.out);
    loop {
        let (front_len, res) = {
            let Some(front) = out.queue.front() else {
                return true;
            };
            (front.len(), c.stream.write(&front[out.head_written..]))
        };
        match res {
            Ok(0) => return false,
            Ok(n) => {
                out.head_written += n;
                out.bytes = out.bytes.saturating_sub(n);
                if out.head_written == front_len {
                    out.head_written = 0;
                    out.queue.pop_front();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
}

fn close_conn(c: &mut Conn, ctx: &Ctx) {
    c.shared.closed.store(true, Ordering::Release);
    for id in lock(&c.shared.subs).drain(..) {
        ctx.core.unsubscribe(id);
    }
    for id in lock(&c.shared.repl_subs).drain(..) {
        ctx.core.repl_unsubscribe(id);
    }
    ctx.metrics.connections_open.fetch_sub(1, Ordering::Relaxed);
}

fn worker_loop(
    core: Arc<ServiceCore>,
    work_rx: Arc<Mutex<Receiver<Job>>>,
    waker: Arc<Waker>,
    metrics: Arc<TransportMetrics>,
) {
    loop {
        // Hold the receiver lock only while picking up a job; recover
        // from a panicked sibling's poison.
        let job = match lock(&work_rx).recv() {
            Ok(j) => j,
            Err(_) => return, // loop gone
        };
        // The explicit context hand-off: this worker thread has no span
        // stack of its own, so the request span is parented on the
        // connection's trace anchor — every engine span opened below
        // nests under it via the thread-local stack.
        let mut sp = trace::span_child_of("request", job.conn.trace_ctx);
        sp.field("seq", job.seq.to_string());
        sp.field(
            "proto",
            if matches!(job.req, Request::Frame(_)) {
                "binary"
            } else {
                "line"
            },
        );
        let bytes = match job.req {
            Request::Line(ref line) => {
                let mut response = execute_line(&core, &job.conn, line);
                response.push('\n');
                response.into_bytes()
            }
            Request::Frame(ref f) => execute_frame(&core, &job.conn, f),
        };
        let span_id = sp.id();
        drop(sp); // record the finished span before rendering its tree
        let elapsed = job.started.elapsed();
        log_slow_query(span_id, elapsed);
        lock(&job.conn.out).complete(job.seq, bytes);
        job.conn.in_flight.fetch_sub(1, Ordering::AcqRel);
        metrics.latency.record(elapsed);
        metrics.frames_out.fetch_add(1, Ordering::Relaxed);
        waker.wake();
    }
}

/// Parsed `PROQL_SLOW_QUERY_MS` threshold, read once. Unset (or
/// unparsable) disables the slow-query log.
fn slow_query_threshold_ms() -> Option<u64> {
    static THRESHOLD: std::sync::OnceLock<Option<u64>> = std::sync::OnceLock::new();
    *THRESHOLD.get_or_init(|| {
        std::env::var("PROQL_SLOW_QUERY_MS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
    })
}

/// Slow-query log: when a request outlives the `PROQL_SLOW_QUERY_MS`
/// threshold, write its full span tree to stderr (span trees need
/// tracing enabled; without it the outlier is still logged, treeless).
fn log_slow_query(span_id: Option<u64>, elapsed: std::time::Duration) {
    let Some(threshold) = slow_query_threshold_ms() else {
        return;
    };
    let ms = elapsed.as_millis().min(u64::MAX as u128) as u64;
    if ms < threshold {
        return;
    }
    match span_id.and_then(trace::render_span_tree) {
        Some(tree) => eprintln!("[slow-query] {ms} ms (threshold {threshold} ms)\n{tree}"),
        None => eprintln!(
            "[slow-query] {ms} ms (threshold {threshold} ms); set PROQL_TRACE=1 for span trees"
        ),
    }
}

fn execute_line(core: &Arc<ServiceCore>, conn: &Arc<ConnShared>, line: &str) -> String {
    // SUBSCRIBE is connection-stateful (it registers this connection's
    // push sink), so it is intercepted rather than dispatched through
    // the stateless `handle_line`.
    match subscribe_request(line) {
        Some(query) => match subscribe_on_conn(core, conn, query) {
            Ok((id, json)) => {
                let _ = id;
                format!("OK {json}")
            }
            Err(e) => format!("ERR {}", error_payload(&e)),
        },
        None => handle_line(core, line),
    }
}

fn execute_frame(core: &Arc<ServiceCore>, conn: &Arc<ConnShared>, f: &frame::Frame) -> Vec<u8> {
    let id = f.id;
    // A well-formed frame from a future protocol (version inside the
    // decoder's window but beyond ours) gets a clean per-frame ERR — the
    // connection and its pipeline stay healthy. Version 0 is a legacy
    // peer and fine.
    if f.proto > frame::PROTOCOL_VERSION {
        let msg = format!(
            "unsupported: frame protocol version {} (this server speaks {})",
            f.proto,
            frame::PROTOCOL_VERSION
        );
        return frame::encode(verb::ERR, id, msg.as_bytes());
    }
    let Some(text) = f.text() else {
        return frame::encode(verb::ERR, id, b"parse: frame payload is not valid UTF-8");
    };
    if f.verb == verb::HELLO {
        return match hello_response(text.trim()) {
            Ok(json) => frame::encode(verb::OK, id, json.as_bytes()),
            Err(e) => frame::encode(verb::ERR, id, error_payload(&e).as_bytes()),
        };
    }
    if f.verb == verb::SUBSCRIBE {
        return match subscribe_on_conn(core, conn, text.trim()) {
            Ok((_, json)) => frame::encode(verb::OK, id, json.as_bytes()),
            Err(e) => frame::encode(verb::ERR, id, error_payload(&e).as_bytes()),
        };
    }
    if f.verb == verb::REPL_SUBSCRIBE {
        return match repl_subscribe_on_conn(core, conn, text.trim()) {
            Ok(json) => frame::encode(verb::OK, id, json.as_bytes()),
            Err(e) => frame::encode(verb::ERR, id, error_payload(&e).as_bytes()),
        };
    }
    let verb_str = match f.verb {
        verb::QUERY => "QUERY",
        verb::DELETE => "DELETE",
        verb::INSERT => "INSERT",
        verb::STATS => "STATS",
        verb::INVALIDATE => "INVALIDATE",
        verb::PING => "PING",
        verb::TRACE => "TRACE",
        other => {
            let msg = format!("parse: unknown frame verb {other}");
            return frame::encode(verb::ERR, id, msg.as_bytes());
        }
    };
    match dispatch(core, verb_str, text.trim()) {
        Ok(json) => frame::encode(verb::OK, id, json.as_bytes()),
        Err(e) => frame::encode(verb::ERR, id, error_payload(&e).as_bytes()),
    }
}

/// Register a subscription whose sink writes `PUSH` bytes straight into
/// this connection's outbound queue (encoding picked by the connection's
/// detected protocol) and wakes the loop. Returns the `OK` payload JSON.
fn subscribe_on_conn(
    core: &Arc<ServiceCore>,
    conn: &Arc<ConnShared>,
    query: &str,
) -> Result<(u64, String)> {
    let sink_conn = Arc::clone(conn);
    let (id, resp) = core.subscribe_sink(
        query,
        Box::new(move |id, event: SubscriptionEvent| {
            if sink_conn.closed.load(Ordering::Acquire) {
                return false; // prune: the connection is gone
            }
            let json = push_json(id, &event);
            let bytes = if sink_conn.binary.load(Ordering::Relaxed) {
                frame::encode(verb::PUSH, id, json.as_bytes())
            } else {
                format!("PUSH {json}\n").into_bytes()
            };
            sink_conn.push_oob(bytes);
            true
        }),
    )?;
    lock(&conn.subs).push(id);
    Ok((id, subscribe_json(id, &resp)))
}

/// Answer a `HELLO` handshake: the payload is the client's protocol
/// version as decimal text. A version this server cannot serve is a
/// clean error (the client may retry with a lower version on the same
/// connection); garbage is a parse error. The OK payload reports the
/// server's version either way the client can proceed.
fn hello_response(text: &str) -> Result<String> {
    let client: u8 = text
        .trim()
        .parse()
        .map_err(|_| Error::Parse(format!("HELLO payload {text:?} is not a version number")))?;
    if client == 0 || client > frame::VERSION_WINDOW {
        return Err(Error::Parse(format!(
            "HELLO version {client} is outside the valid window 1..={}",
            frame::VERSION_WINDOW
        )));
    }
    if client > frame::PROTOCOL_VERSION {
        return Err(Error::Other(format!(
            "unsupported: protocol version {client} (this server speaks {})",
            frame::PROTOCOL_VERSION
        )));
    }
    Ok(format!("{{\"protocol\": {}}}", frame::PROTOCOL_VERSION))
}

/// Register a replication subscription whose sink writes `REPL_DELTA` /
/// `REPL_SNAPSHOT` frames straight into this connection's outbound
/// queue. Payload: `<from_version> [SNAPSHOT]` — `SNAPSHOT` forces a
/// full-state transfer (the digest-mismatch recovery path). Returns the
/// `OK` payload JSON. Replication requires the binary framing; the line
/// protocol has no out-of-band binary channel.
fn repl_subscribe_on_conn(
    core: &Arc<ServiceCore>,
    conn: &Arc<ConnShared>,
    args: &str,
) -> Result<String> {
    if !conn.binary.load(Ordering::Relaxed) {
        return Err(Error::Other(
            "unsupported: REPL_SUBSCRIBE requires the binary framing".into(),
        ));
    }
    let mut parts = args.split_whitespace();
    let from_version: u64 = parts.next().unwrap_or("").parse().map_err(|_| {
        Error::Parse(format!(
            "REPL_SUBSCRIBE payload {args:?}: expected <from_version> [SNAPSHOT]"
        ))
    })?;
    let force_snapshot = match parts.next() {
        None => false,
        Some(s) if s.eq_ignore_ascii_case("SNAPSHOT") => true,
        Some(other) => {
            return Err(Error::Parse(format!(
                "REPL_SUBSCRIBE: unexpected argument {other:?}"
            )))
        }
    };
    let sink_conn = Arc::clone(conn);
    let id = core.repl_subscribe_sink(
        from_version,
        force_snapshot,
        Box::new(move |kind, payload| {
            if sink_conn.closed.load(Ordering::Acquire) {
                return false; // prune: the connection is gone
            }
            let verb = match kind {
                ReplFrameKind::Delta => verb::REPL_DELTA,
                ReplFrameKind::Snapshot => verb::REPL_SNAPSHOT,
            };
            // Replication frames are out-of-band like PUSH (they bypass
            // the reorder buffer); the id slot is unused — the frame
            // payload itself carries the version ordering.
            sink_conn.push_oob(frame::encode(verb, 0, payload));
            true
        }),
    );
    lock(&conn.repl_subs).push(id);
    Ok(format!(
        "{{\"repl_subscription\": {id}, \"version\": {}}}",
        core.version()
    ))
}

/// If `line` is a `SUBSCRIBE` request, return its query text.
fn subscribe_request(line: &str) -> Option<&str> {
    let (verb, rest) = line.split_once(char::is_whitespace)?;
    if verb.eq_ignore_ascii_case("SUBSCRIBE") {
        Some(rest.trim())
    } else {
        None
    }
}

// ---------------------------------------------------------------------
// Thread-per-connection blocking baseline
// ---------------------------------------------------------------------

/// Open connections of the blocking baseline, so shutdown can close them
/// directly instead of the old 200 ms read-timeout polling.
#[derive(Debug, Default)]
struct BlockingRegistry {
    closed: AtomicBool,
    next: AtomicU64,
    streams: Mutex<HashMap<u64, TcpStream>>,
}

impl BlockingRegistry {
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        lock(&self.streams).insert(id, clone);
        // Close-all may have raced the insert: re-check so no connection
        // registered after shutdown lingers blocked in a read.
        if self.closed.load(Ordering::SeqCst) {
            self.deregister(id);
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return None;
        }
        Some(id)
    }

    fn deregister(&self, id: u64) {
        lock(&self.streams).remove(&id);
    }

    fn close_all(&self) {
        self.closed.store(true, Ordering::SeqCst);
        for (_, s) in lock(&self.streams).drain() {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// The previous design, kept as the bench baseline: an acceptor thread
/// hands connections to a pool of workers, each pinned to one connection
/// at a time, serving the line protocol with blocking reads. Shutdown
/// closes registered sockets (no read-timeout spin), but pushes still
/// only flush between requests — the event loop has no such coupling.
pub fn serve_blocking(core: Arc<ServiceCore>, addr: &str, workers: usize) -> Result<ServerHandle> {
    let listener = TcpListener::bind(addr).map_err(io_err)?;
    let addr = listener.local_addr().map_err(io_err)?;
    let metrics = Arc::new(TransportMetrics::new());
    core.set_transport_metrics(Arc::clone(&metrics));
    let stop = Arc::new(AtomicBool::new(false));
    let registry = Arc::new(BlockingRegistry::default());
    let (tx, rx) = channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));

    let mut threads = Vec::new();
    for _ in 0..workers.max(1) {
        let core = Arc::clone(&core);
        let rx = Arc::clone(&rx);
        let stop = Arc::clone(&stop);
        let registry = Arc::clone(&registry);
        let metrics = Arc::clone(&metrics);
        threads.push(std::thread::spawn(move || {
            blocking_worker_loop(core, rx, stop, registry, metrics)
        }));
    }

    let acceptor_stop = Arc::clone(&stop);
    threads.push(std::thread::spawn(move || {
        for conn in listener.incoming() {
            if acceptor_stop.load(Ordering::SeqCst) {
                break;
            }
            match conn {
                // A send error means every worker is gone; stop accepting.
                Ok(stream) => {
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(_) => continue,
            }
        }
        // Dropping `tx` unblocks idle workers.
    }));

    Ok(ServerHandle {
        addr,
        stop,
        threads,
        waker: None,
        registry: Some(registry),
    })
}

fn blocking_worker_loop(
    core: Arc<ServiceCore>,
    rx: Arc<Mutex<Receiver<TcpStream>>>,
    stop: Arc<AtomicBool>,
    registry: Arc<BlockingRegistry>,
    metrics: Arc<TransportMetrics>,
) {
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // Hold the receiver lock only while picking up a connection.
        let stream = match lock(&rx).recv() {
            Ok(s) => s,
            Err(_) => return, // acceptor gone
        };
        let Some(reg_id) = registry.register(&stream) else {
            continue; // shutdown raced the hand-off
        };
        metrics.connections_total.fetch_add(1, Ordering::Relaxed);
        metrics.connections_open.fetch_add(1, Ordering::Relaxed);
        let _ = blocking_serve_connection(&core, stream, &metrics);
        metrics.connections_open.fetch_sub(1, Ordering::Relaxed);
        registry.deregister(reg_id);
    }
}

fn blocking_serve_connection(
    core: &ServiceCore,
    stream: TcpStream,
    metrics: &TransportMetrics,
) -> io::Result<()> {
    // Per-connection subscription plumbing: every SUBSCRIBE on this
    // connection shares one event channel, drained into `PUSH` lines
    // between requests. The write timeout keeps a client that stops
    // draining responses from pinning the worker in `write_all`. Reads
    // block indefinitely — shutdown closes the socket via the registry.
    let (push_tx, push_rx) = channel::<(u64, SubscriptionEvent)>();
    let mut sub_ids: Vec<u64> = Vec::new();
    let conn_trace = trace::new_trace();
    stream.set_write_timeout(Some(std::time::Duration::from_secs(5)))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let result = 'session: loop {
        // Deliver pending subscription events before blocking on the
        // next request.
        while let Ok((id, event)) = push_rx.try_recv() {
            let push = format!("PUSH {}\n", push_json(id, &event));
            if let Err(e) = writer
                .write_all(push.as_bytes())
                .and_then(|()| writer.flush())
            {
                break 'session Err(e);
            }
            metrics.frames_out.fetch_add(1, Ordering::Relaxed);
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break Ok(()), // EOF (or shutdown via the registry)
            Ok(_) => {}
            Err(e) => break Err(e),
        }
        let trimmed = line.trim();
        if trimmed.eq_ignore_ascii_case("QUIT") {
            break Ok(());
        }
        if trimmed.is_empty() {
            continue;
        }
        metrics.frames_in.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let mut sp = trace::span_child_of("request", conn_trace);
        sp.field("proto", "line");
        let response = match subscribe_request(trimmed) {
            Some(query) => match core.subscribe_with(query, push_tx.clone()) {
                Ok((id, resp)) => {
                    sub_ids.push(id);
                    format!("OK {}", subscribe_json(id, &resp))
                }
                Err(e) => format!("ERR {}", error_payload(&e)),
            },
            None => handle_line(core, trimmed),
        };
        let span_id = sp.id();
        drop(sp);
        let elapsed = started.elapsed();
        log_slow_query(span_id, elapsed);
        metrics.latency.record(elapsed);
        if let Err(e) = writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
        {
            break Err(e);
        }
        metrics.frames_out.fetch_add(1, Ordering::Relaxed);
    };
    for id in sub_ids {
        core.unsubscribe(id);
    }
    result
}

fn io_err(e: io::Error) -> Error {
    Error::Other(format!("io: {e}"))
}

// ---------------------------------------------------------------------
// Clients
// ---------------------------------------------------------------------

/// A minimal blocking client for the line protocol — used by the
/// integration tests and the `serve` load generator.
///
/// Responses and asynchronous `PUSH` lines can interleave arbitrarily on
/// the wire (the event loop pushes the instant an event fires, not
/// between requests), so both read paths stash what the other expects:
/// the internal `read_response` stashes pushes for
/// [`Client::next_push`], and `next_push` stashes responses for
/// `read_response`.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    pushes: VecDeque<String>,
    responses: VecDeque<String>,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: SocketAddr) -> Result<Client> {
        let stream = TcpStream::connect(addr).map_err(io_err)?;
        stream.set_nodelay(true).map_err(io_err)?;
        let writer = stream.try_clone().map_err(io_err)?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            pushes: VecDeque::new(),
            responses: VecDeque::new(),
        })
    }

    fn read_line(&mut self) -> Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).map_err(io_err)?;
        if n == 0 {
            return Err(Error::Other("server closed the connection".into()));
        }
        Ok(line.trim_end().to_string())
    }

    /// Read one non-push line, stashing any `PUSH` lines encountered.
    fn read_response(&mut self) -> Result<String> {
        if let Some(stashed) = self.responses.pop_front() {
            return Ok(stashed);
        }
        loop {
            let line = self.read_line()?;
            match line.strip_prefix("PUSH ") {
                Some(event) => self.pushes.push_back(event.to_string()),
                None => return Ok(line),
            }
        }
    }

    /// Send one request line, read one response line.
    pub fn request(&mut self, line: &str) -> Result<String> {
        self.writer.write_all(line.as_bytes()).map_err(io_err)?;
        self.writer.write_all(b"\n").map_err(io_err)?;
        self.writer.flush().map_err(io_err)?;
        self.read_response()
    }

    /// `QUERY` helper: sends the query, returns the `OK` JSON payload or
    /// the server's error.
    pub fn query(&mut self, proql: &str) -> Result<String> {
        expect_ok(self.request(&format!("QUERY {proql}"))?)
    }

    /// `STATS` helper.
    pub fn stats(&mut self) -> Result<String> {
        expect_ok(self.request("STATS")?)
    }

    /// `TRACE` helper: the `limit` most recent span trees as JSON.
    pub fn trace(&mut self, limit: usize) -> Result<String> {
        expect_ok(self.request(&format!("TRACE {limit}"))?)
    }

    /// `SUBSCRIBE` helper: returns the `OK` JSON payload (the initial
    /// answer plus the `subscription` id).
    pub fn subscribe(&mut self, proql: &str) -> Result<String> {
        expect_ok(self.request(&format!("SUBSCRIBE {proql}"))?)
    }

    /// Next pushed subscription event (the JSON after `PUSH `): a
    /// stashed one if available, else a blocking read. A response line
    /// racing in here is stashed for the next [`Client::request`], never
    /// dropped.
    pub fn next_push(&mut self) -> Result<String> {
        if let Some(event) = self.pushes.pop_front() {
            return Ok(event);
        }
        loop {
            let line = self.read_line()?;
            match line.strip_prefix("PUSH ") {
                Some(event) => return Ok(event.to_string()),
                None => self.responses.push_back(line),
            }
        }
    }
}

fn expect_ok(response: String) -> Result<String> {
    match response.strip_prefix("OK ") {
        Some(json) => Ok(json.to_string()),
        None => Err(Error::Other(response)),
    }
}

/// A blocking client for the binary framing layer with pipelining:
/// requests carry client-chosen ids, any number may be sent (or batched
/// into a single write) before reading responses, and `PUSH` frames are
/// stashed out-of-band exactly like [`Client`] does for push lines.
#[derive(Debug)]
pub struct BinClient {
    stream: TcpStream,
    rbuf: Vec<u8>,
    pushes: VecDeque<frame::Frame>,
    repls: VecDeque<frame::Frame>,
    responses: VecDeque<frame::Frame>,
    next_id: u64,
}

/// Whether a frame verb is out-of-band (never the answer to a request).
fn is_oob_verb(v: u8) -> bool {
    v == verb::PUSH || v == verb::REPL_DELTA || v == verb::REPL_SNAPSHOT
}

impl BinClient {
    /// Connect to a server; the first frame sent selects binary mode.
    pub fn connect(addr: SocketAddr) -> Result<BinClient> {
        let stream = TcpStream::connect(addr).map_err(io_err)?;
        stream.set_nodelay(true).map_err(io_err)?;
        Ok(BinClient {
            stream,
            rbuf: Vec::new(),
            pushes: VecDeque::new(),
            repls: VecDeque::new(),
            responses: VecDeque::new(),
            next_id: 1,
        })
    }

    /// Send one request frame (auto-assigned id, returned) without
    /// waiting for the response — the pipelining primitive.
    pub fn send(&mut self, verb: u8, payload: &[u8]) -> Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        let bytes = frame::encode(verb, id, payload);
        self.stream.write_all(&bytes).map_err(io_err)?;
        Ok(id)
    }

    /// Encode a whole batch of requests into one buffer and send it with
    /// a single write. Returns the assigned ids in order.
    pub fn send_batch(&mut self, reqs: &[(u8, &[u8])]) -> Result<Vec<u64>> {
        let mut buf = Vec::new();
        let mut ids = Vec::with_capacity(reqs.len());
        for &(verb, payload) in reqs {
            let id = self.next_id;
            self.next_id += 1;
            frame::encode_into(&mut buf, verb, id, payload);
            ids.push(id);
        }
        self.stream.write_all(&buf).map_err(io_err)?;
        Ok(ids)
    }

    /// Read one frame off the wire (blocking, incremental decode).
    fn read_frame(&mut self) -> Result<frame::Frame> {
        loop {
            if let Some(f) = self.read_frame_step()? {
                return Ok(f);
            }
        }
    }

    /// One decode/read step. `Ok(None)` means the socket read timed out
    /// (only possible while a read timeout is set); any partial frame
    /// stays buffered for the next call.
    fn read_frame_step(&mut self) -> Result<Option<frame::Frame>> {
        let mut scratch = [0u8; 16 * 1024];
        loop {
            match frame::decode(&self.rbuf) {
                Ok(Some((f, n))) => {
                    self.rbuf.drain(..n);
                    return Ok(Some(f));
                }
                Ok(None) => {}
                Err(e) => return Err(Error::Other(format!("framing: {e}"))),
            }
            match self.stream.read(&mut scratch) {
                Ok(0) => return Err(Error::Other("server closed the connection".into())),
                Ok(n) => self.rbuf.extend_from_slice(&scratch[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(None);
                }
                Err(e) => return Err(io_err(e)),
            }
        }
    }

    /// Stash an out-of-band frame on the queue its reader expects.
    fn stash_oob(&mut self, f: frame::Frame) {
        if f.verb == verb::PUSH {
            self.pushes.push_back(f);
        } else {
            self.repls.push_back(f);
        }
    }

    /// Next response frame (`OK` / `ERR` / `OVERLOADED`), stashing any
    /// out-of-band frames for [`BinClient::next_push`] /
    /// [`BinClient::next_repl`].
    pub fn recv_response(&mut self) -> Result<frame::Frame> {
        if let Some(f) = self.responses.pop_front() {
            return Ok(f);
        }
        loop {
            let f = self.read_frame()?;
            if is_oob_verb(f.verb) {
                self.stash_oob(f);
            } else {
                return Ok(f);
            }
        }
    }

    /// Next `PUSH` frame, stashing any other frames encountered.
    pub fn next_push(&mut self) -> Result<frame::Frame> {
        if let Some(f) = self.pushes.pop_front() {
            return Ok(f);
        }
        loop {
            let f = self.read_frame()?;
            if f.verb == verb::PUSH {
                return Ok(f);
            } else if is_oob_verb(f.verb) {
                self.repls.push_back(f);
            } else {
                self.responses.push_back(f);
            }
        }
    }

    /// Next replication frame (`REPL_DELTA` / `REPL_SNAPSHOT`), stashing
    /// any other frames encountered. Blocks until one arrives.
    pub fn next_repl(&mut self) -> Result<frame::Frame> {
        if let Some(f) = self.repls.pop_front() {
            return Ok(f);
        }
        loop {
            let f = self.read_frame()?;
            if f.verb == verb::REPL_DELTA || f.verb == verb::REPL_SNAPSHOT {
                return Ok(f);
            } else if is_oob_verb(f.verb) {
                self.pushes.push_back(f);
            } else {
                self.responses.push_back(f);
            }
        }
    }

    /// Like [`BinClient::next_repl`], but waits at most `timeout` for
    /// bytes, returning `Ok(None)` on a quiet wire — the replica loop
    /// uses this to recheck its shutdown flag between waits.
    pub fn next_repl_timeout(&mut self, timeout: Duration) -> Result<Option<frame::Frame>> {
        if let Some(f) = self.repls.pop_front() {
            return Ok(Some(f));
        }
        self.stream
            .set_read_timeout(Some(timeout))
            .map_err(io_err)?;
        let stepped = self.read_frame_step();
        self.stream.set_read_timeout(None).map_err(io_err)?;
        match stepped? {
            None => Ok(None),
            Some(f) if f.verb == verb::REPL_DELTA || f.verb == verb::REPL_SNAPSHOT => Ok(Some(f)),
            Some(f) if is_oob_verb(f.verb) => {
                self.pushes.push_back(f);
                Ok(None)
            }
            Some(f) => {
                self.responses.push_back(f);
                Ok(None)
            }
        }
    }

    /// Send one request and wait for its response frame.
    pub fn request(&mut self, verb: u8, payload: &[u8]) -> Result<frame::Frame> {
        self.send(verb, payload)?;
        self.recv_response()
    }

    /// `QUERY` helper: OK payload JSON or the server's error.
    pub fn query(&mut self, proql: &str) -> Result<String> {
        expect_ok_frame(self.request(verb::QUERY, proql.as_bytes())?)
    }

    /// `STATS` helper.
    pub fn stats(&mut self) -> Result<String> {
        expect_ok_frame(self.request(verb::STATS, b"")?)
    }

    /// `TRACE` helper: the `limit` most recent span trees as JSON.
    pub fn trace(&mut self, limit: usize) -> Result<String> {
        expect_ok_frame(self.request(verb::TRACE, limit.to_string().as_bytes())?)
    }

    /// `SUBSCRIBE` helper: returns the `OK` JSON payload.
    pub fn subscribe(&mut self, proql: &str) -> Result<String> {
        expect_ok_frame(self.request(verb::SUBSCRIBE, proql.as_bytes())?)
    }

    /// `HELLO` handshake: advertise this build's protocol version and
    /// return the server's. A server that cannot serve our version
    /// answers with a clean error (the connection survives).
    pub fn hello(&mut self) -> Result<String> {
        expect_ok_frame(self.request(verb::HELLO, frame::PROTOCOL_VERSION.to_string().as_bytes())?)
    }

    /// `REPL_SUBSCRIBE` helper: join the replication stream from
    /// `from_version` (set `force_snapshot` for the digest-mismatch
    /// recovery path). Catch-up and live frames arrive out-of-band via
    /// [`BinClient::next_repl`]. Returns the `OK` JSON payload.
    pub fn repl_subscribe(&mut self, from_version: u64, force_snapshot: bool) -> Result<String> {
        let payload = if force_snapshot {
            format!("{from_version} SNAPSHOT")
        } else {
            from_version.to_string()
        };
        expect_ok_frame(self.request(verb::REPL_SUBSCRIBE, payload.as_bytes())?)
    }

    /// Pipeline `queries` in one batched write, then collect every OK
    /// payload in request order (errors and sheds become `Err`).
    pub fn pipeline_queries(&mut self, queries: &[&str]) -> Result<Vec<String>> {
        let reqs: Vec<(u8, &[u8])> = queries
            .iter()
            .map(|q| (verb::QUERY, q.as_bytes()))
            .collect();
        let ids = self.send_batch(&reqs)?;
        let mut out = Vec::with_capacity(ids.len());
        for id in ids {
            let f = self.recv_response()?;
            if f.id != id {
                return Err(Error::Other(format!(
                    "response id {} for request {id}: pipelined order violated",
                    f.id
                )));
            }
            out.push(expect_ok_frame(f)?);
        }
        Ok(out)
    }

    /// Ask the server to close the connection once responses drain.
    pub fn quit(&mut self) -> Result<()> {
        self.send(verb::QUIT, b"")?;
        Ok(())
    }
}

fn expect_ok_frame(f: frame::Frame) -> Result<String> {
    let text = f.text().unwrap_or("<non-utf8 payload>").to_string();
    match f.verb {
        verb::OK => Ok(text),
        verb::ERR => Err(Error::Other(text)),
        verb::OVERLOADED => Err(Error::Other("overloaded".into())),
        other => Err(Error::Other(format!("unexpected frame verb {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{json_str_field, json_u64_field};
    use proql::engine::EngineOptions;
    use proql_provgraph::system::example_2_1;

    fn start(workers: usize) -> (Arc<ServiceCore>, ServerHandle) {
        let core = Arc::new(ServiceCore::new(
            example_2_1().unwrap(),
            EngineOptions::default(),
        ));
        let handle = serve(Arc::clone(&core), "127.0.0.1:0", workers).unwrap();
        (core, handle)
    }

    const Q: &str = "FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x";

    #[test]
    fn wire_session_query_delete_stats() {
        let (_core, handle) = start(2);
        let mut c = Client::connect(handle.addr()).unwrap();

        let first = c.query(Q).unwrap();
        assert_eq!(json_u64_field(&first, "bindings"), Some(4));
        assert_eq!(json_str_field(&first, "cache").as_deref(), Some("miss"));

        let second = c.query(Q).unwrap();
        assert_eq!(json_str_field(&second, "cache").as_deref(), Some("hit"));
        assert_eq!(
            json_str_field(&first, "digest"),
            json_str_field(&second, "digest")
        );

        let del = c.request("DELETE C 2,cn2").unwrap();
        assert!(del.starts_with("OK "), "{del}");

        let third = c.query(Q).unwrap();
        assert_eq!(json_u64_field(&third, "bindings"), Some(3));

        let stats = c.stats().unwrap();
        assert_eq!(json_u64_field(&stats, "writes"), Some(1));
        assert!(json_u64_field(&stats, "cache_hits").unwrap() >= 1);
        // Transport counters flow through STATS.
        assert_eq!(json_u64_field(&stats, "connections_open"), Some(1));
        assert!(json_u64_field(&stats, "frames_in").unwrap() >= 5);

        let err = c.request("QUERY FOR [O $x RETURN $x").unwrap();
        assert!(err.starts_with("ERR parse:"), "{err}");

        assert!(c.request("INVALIDATE").unwrap().starts_with("OK"));
        drop(c);
        handle.shutdown();
    }

    #[test]
    fn concurrent_clients_share_the_cache() {
        let (core, handle) = start(4);
        let addr = handle.addr();
        let results: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(move || {
                        let mut c = Client::connect(addr).unwrap();
                        let mut digests = Vec::new();
                        for _ in 0..5 {
                            let json = c.query(Q).unwrap();
                            digests.push(
                                json_str_field(&json, "digest")
                                    .unwrap()
                                    .parse::<u64>()
                                    .unwrap(),
                            );
                        }
                        digests
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(results.len(), 20);
        assert!(results.windows(2).all(|w| w[0] == w[1]));
        let stats = core.stats();
        assert_eq!(stats.queries, 20);
        assert!(stats.cache.hits >= 16, "stats: {stats:?}");
        handle.shutdown();
    }

    #[test]
    fn subscribe_pushes_deltas_and_resyncs_over_the_wire() {
        use proql_common::{tup, Schema, ValueType};
        use proql_provgraph::ProvenanceSystem;
        // An acyclic X → Y family: unfold strategy, so writes are
        // maintained and subscribers get deltas (not just resyncs).
        let mut sys = ProvenanceSystem::new();
        for name in ["X", "Y"] {
            sys.add_relation_with_local(
                Schema::build(name, &[("id", ValueType::Int), ("w", ValueType::Int)], &[0])
                    .unwrap(),
            )
            .unwrap();
        }
        sys.add_mapping_text("mxy: Y(i, w) :- X(i, w)").unwrap();
        for i in 0..5 {
            sys.insert_local("X", tup![i, i * 10]).unwrap();
        }
        sys.run_exchange().unwrap();
        let core = Arc::new(ServiceCore::new(sys, EngineOptions::default()));
        let handle = serve(Arc::clone(&core), "127.0.0.1:0", 2).unwrap();
        let qy = "FOR [Y $x] INCLUDE PATH [$x] <-+ [] RETURN $x";

        let mut c = Client::connect(handle.addr()).unwrap();
        let sub = c.subscribe(qy).unwrap();
        let sub_id = json_u64_field(&sub, "subscription").expect("subscription id");
        assert_eq!(json_u64_field(&sub, "bindings"), Some(5));

        // A touching write from another client: the maintained entry's
        // delta is pushed to the subscriber.
        let mut w = Client::connect(handle.addr()).unwrap();
        let del = w.request("DELETE X 0").unwrap();
        assert!(del.starts_with("OK "), "{del}");
        let push = c.next_push().unwrap();
        assert_eq!(json_u64_field(&push, "subscription"), Some(sub_id));
        assert_eq!(json_str_field(&push, "event").as_deref(), Some("delta"));
        assert!(json_u64_field(&push, "rows_patched").unwrap() > 0);
        let pushed_digest = json_u64_field(&push, "digest").unwrap();

        // The pushed digest is exactly what a re-query serves (a cache
        // hit on the patched entry).
        let requery = c.query(qy).unwrap();
        assert_eq!(json_str_field(&requery, "cache").as_deref(), Some("hit"));
        assert_eq!(json_u64_field(&requery, "bindings"), Some(4));
        assert_eq!(json_u64_field(&requery, "digest"), Some(pushed_digest));

        // Kill the entry, then write again: the subscriber must resync.
        assert!(c.request("INVALIDATE").unwrap().starts_with("OK"));
        let del2 = w.request("DELETE X 1").unwrap();
        assert!(del2.starts_with("OK "), "{del2}");
        let push2 = c.next_push().unwrap();
        assert_eq!(json_str_field(&push2, "event").as_deref(), Some("resync"));

        // Closing the subscriber's connection unsubscribes it.
        drop(c);
        for _ in 0..250 {
            if core.subscription_count() == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert_eq!(core.subscription_count(), 0);
        drop(w);
        handle.shutdown();
    }

    #[test]
    fn quit_closes_cleanly_and_server_survives() {
        let (_core, handle) = start(1);
        {
            let mut c = Client::connect(handle.addr()).unwrap();
            c.query(Q).unwrap();
            // QUIT gets no response; the connection just closes.
            let _ = c.writer.write_all(b"QUIT\n");
        }
        // The worker pool must be free again for the next connection.
        let mut c2 = Client::connect(handle.addr()).unwrap();
        assert!(c2.query(Q).is_ok());
        drop(c2);
        handle.shutdown();
    }

    #[test]
    fn binary_mode_roundtrips_and_pipelines_in_order() {
        let (_core, handle) = start(2);
        let mut c = BinClient::connect(handle.addr()).unwrap();

        let pong = c.request(verb::PING, b"").unwrap();
        assert_eq!(pong.verb, verb::OK);

        let first = c.query(Q).unwrap();
        assert_eq!(json_u64_field(&first, "bindings"), Some(4));

        // A pipelined batch answers every request, in request order.
        let queries = [Q; 8];
        let payloads = c.pipeline_queries(&queries).unwrap();
        assert_eq!(payloads.len(), 8);
        for p in &payloads {
            assert_eq!(
                json_str_field(p, "digest"),
                json_str_field(&first, "digest")
            );
        }

        // Errors come back as ERR frames with the request id, not drops.
        let bad = c.request(verb::QUERY, b"FOR [O $x RETURN $x").unwrap();
        assert_eq!(bad.verb, verb::ERR);
        assert!(
            bad.text().unwrap().starts_with("parse:"),
            "{:?}",
            bad.text()
        );

        let unknown = c.request(77, b"").unwrap();
        assert_eq!(unknown.verb, verb::ERR);

        c.quit().unwrap();
        handle.shutdown();
    }

    #[test]
    fn blocking_baseline_serves_and_shuts_down_fast() {
        let core = Arc::new(ServiceCore::new(
            example_2_1().unwrap(),
            EngineOptions::default(),
        ));
        let handle = serve_blocking(Arc::clone(&core), "127.0.0.1:0", 2).unwrap();
        let mut c = Client::connect(handle.addr()).unwrap();
        let json = c.query(Q).unwrap();
        assert_eq!(json_u64_field(&json, "bindings"), Some(4));
        // Shutdown with the connection still open must not hang: the
        // registry closes the socket (no read-timeout polling anymore).
        let t = std::time::Instant::now();
        handle.shutdown();
        assert!(
            t.elapsed() < std::time::Duration::from_secs(2),
            "blocking shutdown took {:?}",
            t.elapsed()
        );
        drop(c);
    }
}
