//! A zero-dependency TCP front end over [`ServiceCore`].
//!
//! `std::net` only: an acceptor thread hands incoming connections to a
//! fixed pool of worker threads over an `mpsc` channel; each worker
//! owns one connection at a time and serves the line protocol
//! ([`crate::proto`]) until the peer closes or sends `QUIT`. Because a
//! worker is pinned to its connection, the pool size bounds the number
//! of *concurrent connections*, not requests.

use crate::core::ServiceCore;
use crate::proto::handle_line;
use proql_common::{Error, Result};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A running server: connection details plus shutdown control. Dropping
/// the handle shuts the server down and joins every thread.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, close idle workers, and join all threads.
    /// Connections currently being served finish their current line.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and serve
/// `core` on `workers` connection-handler threads.
pub fn serve(core: Arc<ServiceCore>, addr: &str, workers: usize) -> Result<ServerHandle> {
    let listener = TcpListener::bind(addr).map_err(io_err)?;
    let addr = listener.local_addr().map_err(io_err)?;
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));

    let mut threads = Vec::new();
    for _ in 0..workers.max(1) {
        let core = Arc::clone(&core);
        let rx = Arc::clone(&rx);
        let stop = Arc::clone(&stop);
        threads.push(std::thread::spawn(move || worker_loop(core, rx, stop)));
    }

    let acceptor_stop = Arc::clone(&stop);
    threads.push(std::thread::spawn(move || {
        for conn in listener.incoming() {
            if acceptor_stop.load(Ordering::SeqCst) {
                break;
            }
            match conn {
                // A send error means every worker is gone; stop accepting.
                Ok(stream) => {
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(_) => continue,
            }
        }
        // Dropping `tx` unblocks idle workers.
    }));

    Ok(ServerHandle {
        addr,
        stop,
        threads,
    })
}

fn worker_loop(core: Arc<ServiceCore>, rx: Arc<Mutex<Receiver<TcpStream>>>, stop: Arc<AtomicBool>) {
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // Hold the receiver lock only while picking up a connection. A
        // worker that panicked mid-connection poisons the queue lock, but
        // the receiver itself is still usable — recover instead of letting
        // one crash starve every remaining worker.
        let stream = match rx.lock().unwrap_or_else(|e| e.into_inner()).recv() {
            Ok(s) => s,
            Err(_) => return, // acceptor gone
        };
        let _ = serve_connection(&core, stream, &stop);
    }
}

fn serve_connection(
    core: &ServiceCore,
    stream: TcpStream,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    // A finite read timeout lets the worker notice shutdown even while a
    // client holds its connection open without sending anything; the
    // write timeout keeps a client that stops draining responses from
    // pinning the worker (and hanging shutdown) in `write_all`.
    stream.set_read_timeout(Some(std::time::Duration::from_millis(200)))?;
    stream.set_write_timeout(Some(std::time::Duration::from_secs(5)))?;
    // Request/response in lockstep: Nagle's algorithm only adds latency.
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        // Keep `line` across timeouts: a timeout mid-request leaves the
        // partial bytes in place and the next read appends the rest.
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // EOF
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(e) => return Err(e),
        }
        let request = std::mem::take(&mut line);
        let trimmed = request.trim();
        if trimmed.eq_ignore_ascii_case("QUIT") {
            return Ok(());
        }
        if trimmed.is_empty() {
            continue;
        }
        let response = handle_line(core, trimmed);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
}

/// A minimal blocking client for the line protocol — used by the
/// integration tests and the `serve` load generator.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: SocketAddr) -> Result<Client> {
        let stream = TcpStream::connect(addr).map_err(io_err)?;
        stream.set_nodelay(true).map_err(io_err)?;
        let writer = stream.try_clone().map_err(io_err)?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Send one request line, read one response line.
    pub fn request(&mut self, line: &str) -> Result<String> {
        self.writer.write_all(line.as_bytes()).map_err(io_err)?;
        self.writer.write_all(b"\n").map_err(io_err)?;
        self.writer.flush().map_err(io_err)?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response).map_err(io_err)?;
        if n == 0 {
            return Err(Error::Other("server closed the connection".into()));
        }
        Ok(response.trim_end().to_string())
    }

    /// `QUERY` helper: sends the query, returns the `OK` JSON payload or
    /// the server's error.
    pub fn query(&mut self, proql: &str) -> Result<String> {
        expect_ok(self.request(&format!("QUERY {proql}"))?)
    }

    /// `STATS` helper.
    pub fn stats(&mut self) -> Result<String> {
        expect_ok(self.request("STATS")?)
    }
}

fn expect_ok(response: String) -> Result<String> {
    match response.strip_prefix("OK ") {
        Some(json) => Ok(json.to_string()),
        None => Err(Error::Other(response)),
    }
}

fn io_err(e: std::io::Error) -> Error {
    Error::Other(format!("io: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{json_str_field, json_u64_field};
    use proql::engine::EngineOptions;
    use proql_provgraph::system::example_2_1;

    fn start(workers: usize) -> (Arc<ServiceCore>, ServerHandle) {
        let core = Arc::new(ServiceCore::new(
            example_2_1().unwrap(),
            EngineOptions::default(),
        ));
        let handle = serve(Arc::clone(&core), "127.0.0.1:0", workers).unwrap();
        (core, handle)
    }

    const Q: &str = "FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x";

    #[test]
    fn wire_session_query_delete_stats() {
        let (_core, handle) = start(2);
        let mut c = Client::connect(handle.addr()).unwrap();

        let first = c.query(Q).unwrap();
        assert_eq!(json_u64_field(&first, "bindings"), Some(4));
        assert_eq!(json_str_field(&first, "cache").as_deref(), Some("miss"));

        let second = c.query(Q).unwrap();
        assert_eq!(json_str_field(&second, "cache").as_deref(), Some("hit"));
        assert_eq!(
            json_str_field(&first, "digest"),
            json_str_field(&second, "digest")
        );

        let del = c.request("DELETE C 2,cn2").unwrap();
        assert!(del.starts_with("OK "), "{del}");

        let third = c.query(Q).unwrap();
        assert_eq!(json_u64_field(&third, "bindings"), Some(3));

        let stats = c.stats().unwrap();
        assert_eq!(json_u64_field(&stats, "writes"), Some(1));
        assert!(json_u64_field(&stats, "cache_hits").unwrap() >= 1);

        let err = c.request("QUERY FOR [O $x RETURN $x").unwrap();
        assert!(err.starts_with("ERR parse:"), "{err}");

        assert!(c.request("INVALIDATE").unwrap().starts_with("OK"));
        drop(c);
        handle.shutdown();
    }

    #[test]
    fn concurrent_clients_share_the_cache() {
        let (core, handle) = start(4);
        let addr = handle.addr();
        let results: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(move || {
                        let mut c = Client::connect(addr).unwrap();
                        let mut digests = Vec::new();
                        for _ in 0..5 {
                            let json = c.query(Q).unwrap();
                            digests.push(
                                json_str_field(&json, "digest")
                                    .unwrap()
                                    .parse::<u64>()
                                    .unwrap(),
                            );
                        }
                        digests
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(results.len(), 20);
        assert!(results.windows(2).all(|w| w[0] == w[1]));
        let stats = core.stats();
        assert_eq!(stats.queries, 20);
        assert!(stats.cache.hits >= 16, "stats: {stats:?}");
        handle.shutdown();
    }

    #[test]
    fn quit_closes_cleanly_and_server_survives() {
        let (_core, handle) = start(1);
        {
            let mut c = Client::connect(handle.addr()).unwrap();
            c.query(Q).unwrap();
            // QUIT gets no response; the connection just closes.
            let _ = c.writer.write_all(b"QUIT\n");
        }
        // The single worker must be free again for the next connection.
        let mut c2 = Client::connect(handle.addr()).unwrap();
        assert!(c2.query(Q).is_ok());
        drop(c2);
        handle.shutdown();
    }
}
