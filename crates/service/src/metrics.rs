//! Allocation-free transport metrics: a log-bucketed latency histogram
//! plus the event-loop server's counters, exposed through `STATS`.
//!
//! [`LatencyHistogram`] is a fixed array of 64 power-of-two buckets of
//! atomic counters — recording is two atomic adds and no allocation, so
//! workers record on the hot path without coordination, and "merging
//! across workers" is free because every worker records into the same
//! shared atomics (a [`HistogramSnapshot`] can also merge explicitly,
//! e.g. to combine per-phase histograms). Percentiles are read from a
//! snapshot; within a bucket the value is estimated at the geometric
//! midpoint, so a reported p99 is accurate to within the bucket's 2×
//! resolution — plenty for a load gate.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two latency buckets (covers 1 ns .. ~2^63 ns).
pub const BUCKETS: usize = 64;

/// A log-bucketed histogram of nanosecond durations with atomic,
/// allocation-free recording.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Bucket index for a duration: the position of its highest set bit,
    /// so bucket `i` covers `[2^(i-1), 2^i)` nanoseconds. Edge behavior
    /// is pinned by tests: zero-duration samples land in bucket 0, and
    /// durations at or above the top bucket's lower bound (2^62 ns)
    /// saturate into bucket 63 — they are never dropped and the index
    /// never wraps.
    fn bucket(nanos: u64) -> usize {
        (64 - nanos.leading_zeros() as usize).min(BUCKETS - 1)
    }

    /// Record one duration.
    pub fn record(&self, duration: std::time::Duration) {
        self.record_nanos(duration.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Record one duration in nanoseconds.
    pub fn record_nanos(&self, nanos: u64) {
        self.buckets[Self::bucket(nanos)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot { buckets }
    }
}

/// A plain copy of a histogram's buckets: mergeable, and the thing
/// percentiles are read from.
#[derive(Debug, Clone, Copy)]
pub struct HistogramSnapshot {
    buckets: [u64; BUCKETS],
}

impl HistogramSnapshot {
    /// Total samples in the snapshot.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Add another snapshot's counts into this one (e.g. per-phase or
    /// per-shard histograms).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) in nanoseconds, estimated at the
    /// geometric midpoint of the containing bucket. Returns 0 for an
    /// empty snapshot.
    pub fn percentile_nanos(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Bucket i covers [2^(i-1), 2^i): report the midpoint.
                return match i {
                    0 => 0,
                    1 => 1,
                    i => (1u64 << (i - 1)) + (1u64 << (i - 2)),
                };
            }
        }
        u64::MAX
    }

    /// The `q`-quantile in fractional milliseconds.
    pub fn percentile_ms(&self, q: f64) -> f64 {
        self.percentile_nanos(q) as f64 / 1e6
    }
}

/// Counters for the TCP transport, shared between the event loop, its
/// workers, and `STATS` readers. All fields are monotonic except
/// `connections_open` (a gauge).
#[derive(Debug, Default)]
pub struct TransportMetrics {
    /// Currently open client connections.
    pub connections_open: AtomicU64,
    /// Connections ever accepted.
    pub connections_total: AtomicU64,
    /// Requests decoded (binary frames and legacy lines both count).
    pub frames_in: AtomicU64,
    /// Responses and pushes written (frames or lines).
    pub frames_out: AtomicU64,
    /// Requests answered `OVERLOADED` by admission control instead of
    /// being executed.
    pub shed_count: AtomicU64,
    /// Connections dropped for unrecoverable framing corruption.
    pub protocol_errors: AtomicU64,
    /// Server-side request latency (decode → response enqueued).
    pub latency: LatencyHistogram,
}

impl TransportMetrics {
    /// A fresh zeroed metrics block.
    pub fn new() -> TransportMetrics {
        TransportMetrics::default()
    }

    /// A point-in-time copy for `STATS`.
    pub fn snapshot(&self) -> TransportSnapshot {
        let hist = self.latency.snapshot();
        TransportSnapshot {
            connections_open: self.connections_open.load(Ordering::Relaxed),
            connections_total: self.connections_total.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            shed_count: self.shed_count.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            requests_recorded: hist.count(),
            latency_p50_ms: hist.percentile_ms(0.50),
            latency_p95_ms: hist.percentile_ms(0.95),
            latency_p99_ms: hist.percentile_ms(0.99),
        }
    }
}

/// Plain-value copy of [`TransportMetrics`] (what `STATS` reports).
#[derive(Debug, Clone, Copy, Default)]
pub struct TransportSnapshot {
    /// Currently open client connections.
    pub connections_open: u64,
    /// Connections ever accepted.
    pub connections_total: u64,
    /// Requests decoded.
    pub frames_in: u64,
    /// Responses and pushes written.
    pub frames_out: u64,
    /// Requests shed by admission control.
    pub shed_count: u64,
    /// Connections dropped for framing corruption.
    pub protocol_errors: u64,
    /// Samples in the latency histogram.
    pub requests_recorded: u64,
    /// Server-side latency percentiles (milliseconds).
    pub latency_p50_ms: f64,
    /// 95th percentile (milliseconds).
    pub latency_p95_ms: f64,
    /// 99th percentile (milliseconds).
    pub latency_p99_ms: f64,
}

/// One value in the unified [`Metrics`] registry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// An integer counter or gauge.
    U64(u64),
    /// A float rendered with a fixed number of decimal places (so text
    /// and JSON renderings are bytewise-identical for the same value).
    F64 {
        /// The value.
        value: f64,
        /// Decimal places both renderers emit.
        precision: usize,
    },
}

impl MetricValue {
    fn render(&self) -> String {
        match self {
            MetricValue::U64(v) => v.to_string(),
            MetricValue::F64 { value, precision } => format!("{value:.precision$}"),
        }
    }
}

/// An ordered metric registry: the **single** source every `STATS`
/// rendering draws from. `ServiceStats` assembles one registry and both
/// the JSON (`STATS`) and text (`STATS TEXT`) forms render it entry by
/// entry, so the two surfaces can never drift apart in either names or
/// values.
#[derive(Debug, Default, Clone)]
pub struct Metrics {
    entries: Vec<(&'static str, MetricValue)>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Append an integer metric.
    pub fn push_u64(&mut self, name: &'static str, value: u64) {
        self.entries.push((name, MetricValue::U64(value)));
    }

    /// Append a float metric rendered with `precision` decimal places.
    pub fn push_f64(&mut self, name: &'static str, value: f64, precision: usize) {
        self.entries
            .push((name, MetricValue::F64 { value, precision }));
    }

    /// The registered entries, in registration order.
    pub fn entries(&self) -> &[(&'static str, MetricValue)] {
        &self.entries
    }

    /// Look up a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v)
    }

    /// Render as a single-line JSON object, in registration order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('"');
            out.push_str(name);
            out.push_str("\": ");
            out.push_str(&value.render());
        }
        out.push('}');
        out
    }

    /// Render as `name value` lines (the Prometheus-style text form).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.entries {
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_powers_of_two() {
        assert_eq!(LatencyHistogram::bucket(0), 0);
        assert_eq!(LatencyHistogram::bucket(1), 1);
        assert_eq!(LatencyHistogram::bucket(2), 2);
        assert_eq!(LatencyHistogram::bucket(3), 2);
        assert_eq!(LatencyHistogram::bucket(1024), 11);
        assert_eq!(LatencyHistogram::bucket(u64::MAX), 63);
    }

    #[test]
    fn extreme_durations_saturate_into_edge_buckets() {
        let h = LatencyHistogram::new();
        // Zero-duration samples land in bucket 0 and are counted.
        h.record(std::time::Duration::ZERO);
        h.record_nanos(0);
        let s = h.snapshot();
        assert_eq!(s.count(), 2);
        assert_eq!(s.percentile_nanos(1.0), 0, "zero samples live in bucket 0");

        // Durations above the top log2 bucket saturate into bucket 63 —
        // never wrapped, never dropped. Duration::MAX (> u64::MAX ns) is
        // clamped by record(); u64::MAX exercises bucket() directly.
        let h = LatencyHistogram::new();
        h.record(std::time::Duration::MAX);
        h.record_nanos(u64::MAX);
        h.record_nanos(1u64 << 63);
        assert_eq!(h.count(), 3, "saturated samples must still be counted");
        assert_eq!(LatencyHistogram::bucket(u64::MAX), BUCKETS - 1);
        assert_eq!(LatencyHistogram::bucket(1u64 << 63), BUCKETS - 1);
        let s = h.snapshot();
        // All three sit in the top bucket, whose midpoint estimate is
        // 2^62 + 2^61.
        assert_eq!(s.percentile_nanos(0.5), (1u64 << 62) + (1u64 << 61));
    }

    #[test]
    fn registry_text_and_json_render_identical_values() {
        let mut m = Metrics::new();
        m.push_u64("queries", 42);
        m.push_f64("cache_hit_rate", 0.5, 6);
        m.push_f64("latency_p99_ms", 1.25, 4);
        let json = m.to_json();
        let text = m.to_text();
        assert_eq!(
            json,
            "{\"queries\": 42, \"cache_hit_rate\": 0.500000, \"latency_p99_ms\": 1.2500}"
        );
        assert_eq!(
            text,
            "queries 42\ncache_hit_rate 0.500000\nlatency_p99_ms 1.2500\n"
        );
        // Every entry renders the same byte sequence in both forms.
        for (name, value) in m.entries() {
            assert!(json.contains(&format!("\"{name}\": {}", value.render())));
            assert!(text.contains(&format!("{name} {}", value.render())));
        }
        assert_eq!(m.get("queries"), Some(&MetricValue::U64(42)));
        assert!(m.get("missing").is_none());
    }

    #[test]
    fn percentiles_are_bucket_accurate() {
        let h = LatencyHistogram::new();
        // 90 fast samples (~1 µs) and 10 slow (~1 ms).
        for _ in 0..90 {
            h.record_nanos(1_000);
        }
        for _ in 0..10 {
            h.record_nanos(1_000_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        let p50 = s.percentile_nanos(0.50);
        assert!((512..2048).contains(&p50), "p50 = {p50}");
        let p99 = s.percentile_nanos(0.99);
        assert!((524_288..2_097_152).contains(&p99), "p99 = {p99}");
        // Within-bucket estimate is the geometric midpoint, so the ratio
        // to the true value is bounded by 2x.
        assert!(p99 as f64 / 1_000_000.0 > 0.5 && (p99 as f64) / 1_000_000.0 < 2.0);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.snapshot().percentile_nanos(0.99), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record_nanos(100);
        b.record_nanos(100);
        b.record_nanos(1_000_000);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = std::sync::Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record_nanos(i * 37 + 1);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
    }
}
