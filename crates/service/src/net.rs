//! A minimal readiness shim for the event-loop server: `poll(2)` without
//! `libc`, plus a cross-thread waker.
//!
//! The workspace builds with zero external crates, so readiness
//! notification is obtained from the kernel directly: on Linux
//! (x86_64/aarch64) [`poll`] issues the raw `ppoll` syscall via inline
//! assembly; everywhere else it degrades to a bounded sleep that reports
//! every descriptor as ready, which turns the event loop into a
//! short-period scan over nonblocking sockets (correct, just not
//! load-proportional). Either way the loop above only ever *attempts*
//! nonblocking I/O on reported-ready descriptors and treats `WouldBlock`
//! as a no-op, so spurious readiness is harmless.
//!
//! [`Waker`] is the std-only stand-in for a self-pipe: a loopback TCP
//! pair whose read end sits in the poll set. Worker threads (and
//! subscription push sinks) call [`Waker::wake`] to make a blocked
//! [`poll`] return; a pending-flag coalesces bursts into a single byte
//! so the pair's socket buffer can never fill.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Readiness: data to read (or a peer hang-up to observe).
pub const POLLIN: i16 = 0x001;
/// Readiness: the socket's send buffer has room.
pub const POLLOUT: i16 = 0x004;
/// Result-only: error condition on the descriptor.
pub const POLLERR: i16 = 0x008;
/// Result-only: peer hung up.
pub const POLLHUP: i16 = 0x010;
/// Result-only: descriptor not open.
pub const POLLNVAL: i16 = 0x020;

/// One entry in a [`poll`] set — layout-compatible with the kernel's
/// `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The raw file descriptor to watch.
    pub fd: i32,
    /// Requested readiness ([`POLLIN`] / [`POLLOUT`]).
    pub events: i16,
    /// Reported readiness (filled by [`poll`]; includes [`POLLERR`],
    /// [`POLLHUP`], [`POLLNVAL`] even when unrequested).
    pub revents: i16,
}

impl PollFd {
    /// Watch `fd` for `events`.
    pub fn new(fd: i32, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether any of `mask` was reported.
    pub fn ready(&self, mask: i16) -> bool {
        self.revents & mask != 0
    }

    /// Whether an error/hang-up condition was reported.
    pub fn broken(&self) -> bool {
        self.revents & (POLLERR | POLLNVAL) != 0
    }
}

/// Block until a descriptor in `fds` is ready, `timeout` elapses
/// (`None` = block indefinitely), or a wakeup arrives. Returns the
/// number of ready descriptors; `revents` is filled in place. `EINTR`
/// is retried internally.
pub fn poll(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    imp::poll(fds, timeout)
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod imp {
    use super::PollFd;
    use std::io;
    use std::time::Duration;

    /// Kernel `struct timespec` (both supported ABIs use 64-bit fields).
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    #[cfg(target_arch = "x86_64")]
    const SYS_PPOLL: usize = 271;
    #[cfg(target_arch = "aarch64")]
    const SYS_PPOLL: usize = 73;

    const EINTR: isize = -4;

    /// Raw 5-argument syscall. Safety: the caller must uphold the
    /// syscall's own contract — here, `a1` points to `a2` valid pollfds
    /// and `a3` is null or a valid timespec, all live across the call.
    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall5(nr: usize, a1: usize, a2: usize, a3: usize, a4: usize, a5: usize) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") nr as isize => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall5(nr: usize, a1: usize, a2: usize, a3: usize, a4: usize, a5: usize) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc 0",
            in("x8") nr,
            inlateout("x0") a1 => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            options(nostack)
        );
        ret
    }

    pub fn poll(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
        let ts = timeout.map(|d| Timespec {
            tv_sec: d.as_secs() as i64,
            tv_nsec: d.subsec_nanos() as i64,
        });
        loop {
            let ts_ptr = ts
                .as_ref()
                .map(|t| t as *const Timespec as usize)
                .unwrap_or(0);
            // SAFETY: `fds` is a live, exclusively-borrowed slice of
            // `#[repr(C)]` pollfd-layout structs; `ts_ptr` is null or a
            // live timespec; the sigmask is null (size 8 is ignored for a
            // null mask). ppoll writes only into `fds[..len].revents`.
            let ret = unsafe {
                syscall5(
                    SYS_PPOLL,
                    fds.as_mut_ptr() as usize,
                    fds.len(),
                    ts_ptr,
                    0, // sigmask: keep the caller's signal mask
                    8, // sizeof(kernel sigset_t)
                )
            };
            if ret == EINTR {
                continue;
            }
            if ret < 0 {
                return Err(io::Error::from_raw_os_error(-ret as i32));
            }
            return Ok(ret as usize);
        }
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod imp {
    use super::{PollFd, POLLIN, POLLOUT};
    use std::io;
    use std::time::Duration;

    /// Portable fallback: no readiness syscall, so sleep a short bounded
    /// interval and report everything as (maybe) ready. The event loop's
    /// nonblocking attempts turn false positives into `WouldBlock`
    /// no-ops; wake latency is bounded by the scan period.
    const SCAN_PERIOD: Duration = Duration::from_millis(5);

    pub fn poll(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
        let nap = timeout.map_or(SCAN_PERIOD, |t| t.min(SCAN_PERIOD));
        std::thread::sleep(nap);
        for fd in fds.iter_mut() {
            fd.revents = fd.events & (POLLIN | POLLOUT);
        }
        Ok(fds.len())
    }
}

/// A cross-thread wakeup for a [`poll`]-blocked event loop, built from a
/// loopback TCP pair (std has no pipes). The read end lives in the poll
/// set; [`Waker::wake`] writes one byte to the write end. A pending-flag
/// coalesces concurrent wakes so at most one byte is ever in flight.
#[derive(Debug)]
pub struct Waker {
    tx: TcpStream,
    pending: AtomicBool,
}

/// The loop-owned read end of a [`Waker`] pair.
#[derive(Debug)]
pub struct WakeReceiver {
    rx: TcpStream,
}

impl Waker {
    /// Build a connected waker pair.
    pub fn pair() -> io::Result<(Waker, WakeReceiver)> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let tx = TcpStream::connect(listener.local_addr()?)?;
        let (rx, _) = listener.accept()?;
        tx.set_nonblocking(true)?;
        tx.set_nodelay(true)?;
        rx.set_nonblocking(true)?;
        Ok((
            Waker {
                tx,
                pending: AtomicBool::new(false),
            },
            WakeReceiver { rx },
        ))
    }

    /// Make the next (or current) [`poll`] return. Cheap and safe to call
    /// from any thread; errors are ignored (a torn-down loop needs no
    /// wake).
    pub fn wake(&self) {
        if !self.pending.swap(true, Ordering::AcqRel) {
            let _ = (&self.tx).write(&[1]);
        }
    }
}

impl WakeReceiver {
    /// The descriptor to register with [`POLLIN`].
    pub fn fd(&self) -> i32 {
        use std::os::fd::AsRawFd;
        self.rx.as_raw_fd()
    }

    /// Consume pending wake bytes. Call after [`poll`] reports the wake
    /// fd readable; clears the coalescing flag first so a wake racing
    /// the drain is never lost (it just produces a spurious next wake).
    pub fn drain(&mut self, waker: &Waker) {
        waker.pending.store(false, Ordering::Release);
        let mut buf = [0u8; 64];
        while let Ok(n) = self.rx.read(&mut buf) {
            if n == 0 {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::os::fd::AsRawFd;

    #[test]
    fn poll_reports_writable_and_readable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();

        // A fresh connection is writable but not readable.
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN | POLLOUT)];
        let n = poll(&mut fds, Some(Duration::from_millis(200))).unwrap();
        assert!(n >= 1);
        assert!(fds[0].ready(POLLOUT));

        // After the peer writes, it becomes readable.
        (&a).write_all(b"x").unwrap();
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        loop {
            poll(&mut fds, Some(Duration::from_millis(50))).unwrap();
            if fds[0].ready(POLLIN) {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "never became readable"
            );
        }
    }

    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    #[test]
    fn poll_timeout_expires_on_idle_fd() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        let _keep = a;
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        let t = std::time::Instant::now();
        let n = poll(&mut fds, Some(Duration::from_millis(60))).unwrap();
        assert_eq!(n, 0, "idle fd must time out, not report readiness");
        assert!(t.elapsed() >= Duration::from_millis(50));
    }

    #[test]
    fn waker_unblocks_poll_and_coalesces() {
        let (waker, mut rx) = Waker::pair().unwrap();
        let waker = std::sync::Arc::new(waker);
        let w2 = std::sync::Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            // A burst of wakes coalesces into (at most) one byte.
            for _ in 0..100 {
                w2.wake();
            }
        });
        let mut fds = [PollFd::new(rx.fd(), POLLIN)];
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            poll(&mut fds, Some(Duration::from_millis(100))).unwrap();
            if fds[0].ready(POLLIN) {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "wake never arrived");
        }
        rx.drain(&waker);
        // Drained: a fresh poll times out (nothing pending).
        let mut fds = [PollFd::new(rx.fd(), POLLIN)];
        poll(&mut fds, Some(Duration::from_millis(20))).unwrap();
        t.join().unwrap();
        // And the waker still works after a drain.
        waker.wake();
        let mut fds = [PollFd::new(rx.fd(), POLLIN)];
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            poll(&mut fds, Some(Duration::from_millis(100))).unwrap();
            if fds[0].ready(POLLIN) {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "re-wake never arrived"
            );
        }
    }
}
