//! Capped exponential backoff with deterministic jitter, and the
//! reconnect helper the replica loop leans on.
//!
//! The jitter matters at fleet scale: when a primary restarts, every
//! replica loses its stream at the same instant, and un-jittered
//! backoff has them all re-dialing in lockstep — a thundering herd the
//! primary meets exactly when it is cold. Each delay here is drawn from
//! the *equal jitter* scheme — half the exponential step deterministic,
//! half uniform from a [`SplitMix64`] stream seeded per client — so
//! retries spread out while every delay keeps a floor of half the step
//! (no hot zero-delay spins) and stays below the cap. The deterministic
//! PRNG keeps tests exact: the same seed replays the same schedule.

use proql_common::rng::SplitMix64;
use std::time::Duration;

/// Retry tuning for [`retry_with`] and the reconnecting constructors.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// First exponential step (the attempt-0 delay is drawn from it).
    pub base: Duration,
    /// Ceiling on the exponential step; jittered delays never exceed it.
    pub cap: Duration,
    /// Attempts before giving up with the last error (min 1).
    pub max_attempts: u32,
    /// Jitter-stream seed. Derive it from something per-client (a port,
    /// a replica index) so a fleet's schedules decorrelate.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_secs(2),
            max_attempts: 10,
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

/// Backoff state across one sequence of attempts.
#[derive(Debug)]
pub struct Backoff {
    policy: RetryPolicy,
    attempt: u32,
    rng: SplitMix64,
}

impl Backoff {
    /// Fresh state at attempt 0.
    pub fn new(policy: RetryPolicy) -> Backoff {
        let rng = SplitMix64::seed_from_u64(policy.seed);
        Backoff {
            policy,
            attempt: 0,
            rng,
        }
    }

    /// Attempts consumed so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Whether another attempt is allowed.
    pub fn can_retry(&self) -> bool {
        self.attempt < self.policy.max_attempts.max(1)
    }

    /// Consume one attempt and return the delay to sleep before the
    /// next: `step = min(cap, base << attempt)`, jittered uniformly into
    /// `[step/2, step]`.
    pub fn next_delay(&mut self) -> Duration {
        let shift = self.attempt.min(32);
        self.attempt += 1;
        let step = self
            .policy
            .base
            .saturating_mul(1u32 << shift.min(31))
            .min(self.policy.cap);
        let half = step / 2;
        let jitter_micros = if half.is_zero() {
            0
        } else {
            self.rng.next_u64() % (half.as_micros().min(u64::MAX as u128) as u64 + 1)
        };
        half + Duration::from_micros(jitter_micros)
    }

    /// Start a new sequence (after a success): attempt count and jitter
    /// schedule restart.
    pub fn reset(&mut self) {
        self.attempt = 0;
        self.rng = SplitMix64::seed_from_u64(self.policy.seed);
    }
}

/// Run `op` until it succeeds or the policy's attempts are exhausted,
/// sleeping via `sleep` between attempts. Injectable `sleep` keeps unit
/// tests instant; production callers pass `std::thread::sleep`.
pub fn retry_with<T, E>(
    policy: RetryPolicy,
    mut sleep: impl FnMut(Duration),
    mut op: impl FnMut() -> std::result::Result<T, E>,
) -> std::result::Result<T, E> {
    let mut backoff = Backoff::new(policy);
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) => {
                let delay = backoff.next_delay();
                if !backoff.can_retry() {
                    return Err(e);
                }
                sleep(delay);
            }
        }
    }
}

/// [`retry_with`] sleeping for real.
pub fn retry<T, E>(
    policy: RetryPolicy,
    op: impl FnMut() -> std::result::Result<T, E>,
) -> std::result::Result<T, E> {
    retry_with(policy, std::thread::sleep, op)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn millis(policy: &RetryPolicy, n: usize) -> Vec<u128> {
        let mut b = Backoff::new(policy.clone());
        (0..n).map(|_| b.next_delay().as_micros()).collect()
    }

    #[test]
    fn delays_grow_exponentially_within_bounds() {
        let policy = RetryPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            max_attempts: 12,
            seed: 7,
        };
        let mut b = Backoff::new(policy.clone());
        let mut step = policy.base;
        for _ in 0..12 {
            let d = b.next_delay();
            let bounded_step = step.min(policy.cap);
            assert!(d >= bounded_step / 2, "{d:?} below half-step floor");
            assert!(d <= bounded_step, "{d:?} above the step");
            assert!(d <= policy.cap, "{d:?} above the cap");
            step = step.saturating_mul(2);
        }
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_spreads_across_seeds() {
        let policy = RetryPolicy::default();
        assert_eq!(millis(&policy, 6), millis(&policy, 6), "same seed replays");
        let other = RetryPolicy {
            seed: policy.seed + 1,
            ..policy.clone()
        };
        assert_ne!(
            millis(&policy, 6),
            millis(&other, 6),
            "different seeds must decorrelate"
        );
    }

    #[test]
    fn retry_with_failing_dialer_recovers_after_transient_failures() {
        let mut calls = 0;
        let mut slept = Vec::new();
        let result: Result<&str, &str> = retry_with(
            RetryPolicy {
                base: Duration::from_millis(1),
                cap: Duration::from_millis(8),
                max_attempts: 10,
                seed: 3,
            },
            |d| slept.push(d),
            || {
                calls += 1;
                if calls < 4 {
                    Err("connection refused")
                } else {
                    Ok("connected")
                }
            },
        );
        assert_eq!(result, Ok("connected"));
        assert_eq!(calls, 4);
        assert_eq!(slept.len(), 3, "sleeps only between attempts");
    }

    #[test]
    fn retry_exhaustion_returns_the_last_error_without_oversleeping() {
        let mut calls = 0;
        let mut slept = Vec::new();
        let result: Result<(), String> = retry_with(
            RetryPolicy {
                base: Duration::from_millis(1),
                cap: Duration::from_millis(4),
                max_attempts: 5,
                seed: 11,
            },
            |d| slept.push(d),
            || {
                calls += 1;
                Err(format!("attempt {calls} refused"))
            },
        );
        assert_eq!(result, Err("attempt 5 refused".to_string()));
        assert_eq!(calls, 5);
        assert_eq!(slept.len(), 4, "no sleep after the final failure");
        assert!(slept.iter().all(|d| *d <= Duration::from_millis(4)));
    }

    #[test]
    fn reset_replays_the_schedule_from_the_top() {
        let mut b = Backoff::new(RetryPolicy::default());
        let first: Vec<_> = (0..4).map(|_| b.next_delay()).collect();
        b.reset();
        assert_eq!(b.attempts(), 0);
        let again: Vec<_> = (0..4).map(|_| b.next_delay()).collect();
        assert_eq!(first, again);
    }
}
