//! # proql-service
//!
//! A concurrent provenance query service over a
//! [`proql_provgraph::ProvenanceSystem`]: the long-lived shared system a
//! CDSS implies, answering many ProQL queries between update exchanges.
//!
//! Three layers:
//!
//! * [`core::ServiceCore`] — single-writer / multi-reader semantics.
//!   Queries run against an immutable **versioned snapshot**
//!   (`Arc<Snapshot>`); CDSS updates (deletions, insert+exchange) build
//!   the next snapshot copy-on-write and publish it atomically.
//! * [`cache::ResultCache`] — a dependency-tracked result cache. Every
//!   answer carries the set of relations it reads
//!   ([`proql::engine::QueryOutput::touched`]); writes record their
//!   write set per relation, and an entry dies exactly when a write
//!   touches an overlapping relation — unrelated updates keep hot
//!   entries alive. Beneath it, [`cache::PlanCache`] keeps each query's
//!   [`proql::engine::PreparedQuery`]: a result-cache miss reuses the
//!   cached optimized plan (validated against statistics drift), so
//!   hot-template traffic skips parse → translate → optimize entirely.
//! * [`server`] — a zero-dependency `std::net` TCP front end built
//!   around a nonblocking readiness-driven event loop ([`net`] supplies
//!   the `poll(2)` shim and cross-thread waker). Two wire protocols
//!   share the port, auto-detected from a connection's first byte: the
//!   pipelined length-prefixed binary framing layer ([`frame`]) with
//!   out-of-band `PUSH` frames and explicit `OVERLOADED` load shedding,
//!   and the legacy line protocol (`QUERY` / `DELETE` / `INSERT` /
//!   `STATS` / `INVALIDATE` / `SUBSCRIBE`). Matching blocking clients:
//!   [`server::Client`] (lines) and [`server::BinClient`] (frames,
//!   pipelining). Per-connection admission control and an
//!   allocation-free latency histogram ([`metrics`]) ride along, and
//!   [`server::serve_blocking`] keeps the previous thread-per-connection
//!   design as a bench baseline.
//!
//! Writes do not simply evict intersecting cache entries: the write path
//! first tries **incremental view maintenance** ([`proql::maintain_output`])
//! — re-running each affected entry's unfolded rules in delta form over
//! the published `(snapshot, delta)` pair and patching the cached answer
//! forward in O(delta). Only non-localizable shapes (graph-walk answers,
//! set-valued semirings, broken delta chains, oversized deltas) fall back
//! to eviction. `SUBSCRIBE` clients ride the same machinery: maintained
//! entries push result deltas, fallbacks push a resync notice.
//!
//! The `serve` binary in `proql-bench` load-tests this stack end to end
//! and reports throughput, latency percentiles, and cache hit rates.

pub mod cache;
pub mod core;
pub mod frame;
pub mod metrics;
pub mod net;
pub mod proto;
pub mod replica;
pub mod retry;
pub mod router;
pub mod server;

pub use crate::core::{
    PushSink, QueryResponse, ReplApplyOutcome, ReplFrameKind, ReplSink, ServiceCore, ServiceStats,
    Snapshot, SubscriptionEvent, SubscriptionReceiver,
};
pub use cache::{CacheCounters, MaintenanceCandidate, PlanCache, PlanCacheCounters, ResultCache};
pub use metrics::{HistogramSnapshot, LatencyHistogram, TransportMetrics, TransportSnapshot};
pub use proto::{handle_line, result_digest};
pub use replica::{start_replica, wait_for_version, ReplicaConfig, ReplicaHandle};
pub use retry::{retry, retry_with, Backoff, RetryPolicy};
pub use router::{Router, RouterCounters, ShardMap};
pub use server::{
    serve, serve_blocking, serve_with, BinClient, Client, ServerConfig, ServerHandle,
};
