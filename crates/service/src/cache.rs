//! The dependency-tracked result cache and the prepared-plan cache.
//!
//! Every cached [`QueryOutput`] carries its **read set** — the relations
//! the engine reported in [`QueryOutput::touched`] — and the version it
//! was computed at. Instead of invalidating entries eagerly, the cache
//! keeps a per-relation **last-write epoch**: writers record the version
//! of each write's write set, and an entry is fresh exactly when no
//! relation in its read set has been written after the entry was built.
//!
//! This makes freshness a pure function of `(entry, last_write)` with no
//! ordering hazard between readers and writers: a reader that computed a
//! result against an old snapshot and tries to insert it after a
//! conflicting write finds `last_write[dep] > built_version` and the
//! insert is rejected; a write to a relation **no** entry depends on
//! changes nothing, so unrelated updates keep hot entries alive.
//!
//! The [`PlanCache`] sits **beneath** the result cache: a result-cache
//! miss (typically caused by a write to a read-set relation) reuses the
//! query's cached [`PreparedQuery`], skipping parse → translate →
//! optimize entirely. Plan reuse is always *correct* — optimizer choices
//! never change results — so the staleness rule is about cost only: an
//! entry whose [`PreparedQuery::stats_version`] matches the published
//! snapshot is trivially current, and on version drift the entry is
//! revalidated by recomputing the bucketed stats fingerprint over its
//! read set. Only genuine statistics drift (order-of-magnitude data
//! change) forces a re-preparation.

use proql::engine::{PreparedQuery, QueryOutput};
use proql::MaintainState;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Monotonic counters the cache keeps about itself (reported by the
/// service's `STATS` verb and the `serve` load generator).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Entries stored.
    pub insertions: u64,
    /// Entries dropped because a write touched one of their dependencies.
    pub stale_evictions: u64,
    /// Entries dropped to respect the capacity bound (LRU).
    pub capacity_evictions: u64,
    /// Inserts rejected because the result was already stale when it
    /// arrived (a write raced the query that computed it).
    pub rejected_inserts: u64,
    /// Entries a write would have killed that were instead patched
    /// forward by incremental maintenance (and stayed servable).
    pub maint_hits: u64,
    /// Maintenance attempts that could not localize the delta and fell
    /// back to eviction.
    pub maint_fallbacks: u64,
    /// Projection and annotation rows patched across all maintained
    /// entries (the O(delta) work actually done).
    pub maint_rows_patched: u64,
}

impl CacheCounters {
    /// Hit rate over all lookups (0.0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct CacheEntry {
    deps: BTreeSet<String>,
    built_version: u64,
    result: Arc<QueryOutput>,
    /// The prepared query the result was computed from — what the
    /// maintainer re-runs in delta form when a write touches `deps`.
    prepared: Arc<PreparedQuery>,
    /// Annotation carry-over from the last maintenance round (the
    /// projected provenance graph plus its semiring values). `None`
    /// until the entry is first maintained under an `EVALUATE` query.
    state: Option<Box<MaintainState>>,
    last_used: u64,
}

/// A fresh cache entry whose read set intersects a pending write set,
/// handed to the writer for incremental maintenance (outside the cache
/// lock). Taking a candidate moves its [`MaintainState`] out of the
/// entry; [`ResultCache::apply_maintained`] puts the successor back.
#[derive(Debug)]
pub struct MaintenanceCandidate {
    /// The entry's cache key.
    pub key: String,
    /// The prepared query to re-run in delta form.
    pub prepared: Arc<PreparedQuery>,
    /// The cached output to patch forward.
    pub previous: Arc<QueryOutput>,
    /// Annotation carry-over from the previous round, if any.
    pub state: Option<Box<MaintainState>>,
}

/// A bounded result cache keyed by normalized query text, invalidated by
/// relation-level write epochs.
#[derive(Debug)]
pub struct ResultCache {
    entries: HashMap<String, CacheEntry>,
    /// Relation name → version of the latest write whose write set
    /// contained it. Absent means "never written since service start".
    last_write: HashMap<String, u64>,
    capacity: usize,
    tick: u64,
    counters: CacheCounters,
}

impl ResultCache {
    /// An empty cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            entries: HashMap::new(),
            last_write: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            counters: CacheCounters::default(),
        }
    }

    fn is_fresh(last_write: &HashMap<String, u64>, entry: &CacheEntry) -> bool {
        entry
            .deps
            .iter()
            .all(|d| last_write.get(d).is_none_or(|&w| w <= entry.built_version))
    }

    /// Look up a fresh entry. A stale entry found here is evicted on the
    /// spot. Counts a hit or a miss.
    pub fn lookup(&mut self, key: &str) -> Option<Arc<QueryOutput>> {
        self.tick += 1;
        let fresh = match self.entries.get(key) {
            Some(e) => Self::is_fresh(&self.last_write, e),
            None => {
                self.counters.misses += 1;
                return None;
            }
        };
        if !fresh {
            self.entries.remove(key);
            self.counters.stale_evictions += 1;
            self.counters.misses += 1;
            return None;
        }
        let e = self.entries.get_mut(key).expect("checked above");
        e.last_used = self.tick;
        self.counters.hits += 1;
        Some(Arc::clone(&e.result))
    }

    /// Store a result computed at `built_version` with read set `deps`.
    /// Rejected (and counted) when a write newer than `built_version`
    /// already touched one of the dependencies — the result is stale on
    /// arrival and caching it would serve wrong answers.
    pub fn insert(
        &mut self,
        key: String,
        deps: BTreeSet<String>,
        built_version: u64,
        result: Arc<QueryOutput>,
        prepared: Arc<PreparedQuery>,
    ) {
        self.tick += 1;
        let entry = CacheEntry {
            deps,
            built_version,
            result,
            prepared,
            state: None,
            last_used: self.tick,
        };
        if !Self::is_fresh(&self.last_write, &entry) {
            self.counters.rejected_inserts += 1;
            return;
        }
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            // Evict the least-recently-used entry to stay within bounds.
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
                self.counters.capacity_evictions += 1;
            }
        }
        self.counters.insertions += 1;
        self.entries.insert(key, entry);
    }

    /// Take the maintenance candidates for a pending write: every
    /// **fresh** entry whose read set intersects `write_set`. Entries
    /// already stale from an earlier write are skipped (they die lazily
    /// on lookup, exactly as before). Each candidate's annotation
    /// carry-over is moved out; a successful maintenance round returns
    /// its successor via [`Self::apply_maintained`], a failed one drops
    /// the entry via [`Self::maintenance_fallback`].
    pub fn take_maintenance_candidates(
        &mut self,
        write_set: &BTreeSet<String>,
    ) -> Vec<MaintenanceCandidate> {
        let last_write = &self.last_write;
        self.entries
            .iter_mut()
            .filter(|(_, e)| {
                e.deps.iter().any(|d| write_set.contains(d))
                    && e.deps
                        .iter()
                        .all(|d| last_write.get(d).is_none_or(|&w| w <= e.built_version))
            })
            .map(|(key, e)| MaintenanceCandidate {
                key: key.clone(),
                prepared: Arc::clone(&e.prepared),
                previous: Arc::clone(&e.result),
                state: e.state.take(),
            })
            .collect()
    }

    /// Install a maintained result: swap the payload, store the next
    /// annotation carry-over, and re-stamp the entry's build version to
    /// the maintaining write's — so the write's own epoch (recorded via
    /// [`Self::record_write`] in the same critical section) no longer
    /// outdates it. A no-op if the entry vanished meanwhile (a racing
    /// reader's capacity eviction).
    pub fn apply_maintained(
        &mut self,
        key: &str,
        result: Arc<QueryOutput>,
        state: Option<Box<MaintainState>>,
        version: u64,
        rows_patched: u64,
    ) {
        let Some(e) = self.entries.get_mut(key) else {
            return;
        };
        e.result = result;
        e.state = state;
        e.built_version = version;
        self.counters.maint_hits += 1;
        self.counters.maint_rows_patched += rows_patched;
    }

    /// Count a maintenance fallback and evict the entry eagerly (the
    /// write's epoch would kill it lazily anyway; eager removal lets
    /// subscriptions observe the resync immediately).
    pub fn maintenance_fallback(&mut self, key: &str) {
        if self.entries.remove(key).is_some() {
            self.counters.maint_fallbacks += 1;
            self.counters.stale_evictions += 1;
        }
    }

    /// Record a write: every relation in `write_set` was modified by the
    /// write that produced `version`.
    pub fn record_write<'a>(&mut self, write_set: impl IntoIterator<Item = &'a str>, version: u64) {
        for rel in write_set {
            let slot = self.last_write.entry(rel.to_string()).or_insert(0);
            *slot = (*slot).max(version);
        }
    }

    /// Drop every entry, returning how many were dropped.
    pub fn clear(&mut self) -> usize {
        let n = self.entries.len();
        self.entries.clear();
        n
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counter snapshot.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }
}

/// Monotonic counters of the prepared-plan cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheCounters {
    /// Lookups that reused a cached plan (including revalidations).
    pub hits: u64,
    /// Lookups that found no usable plan.
    pub misses: u64,
    /// Plans stored.
    pub insertions: u64,
    /// Entries dropped because their statistics fingerprint drifted (the
    /// optimizer would now choose differently; the query re-prepares).
    pub reprepares: u64,
    /// Entries dropped to respect the capacity bound (LRU).
    pub capacity_evictions: u64,
}

impl PlanCacheCounters {
    /// Hit rate over all lookups (0.0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct PlanEntry {
    prepared: Arc<PreparedQuery>,
    /// Latest published version this entry was validated at: matching the
    /// current version skips the fingerprint recomputation.
    valid_at: u64,
    last_used: u64,
}

/// A bounded prepared-plan cache keyed by normalized query text.
///
/// A capacity of 0 disables the cache entirely (every lookup misses,
/// inserts are dropped) — used by benchmarks to measure the unprepared
/// baseline.
#[derive(Debug)]
pub struct PlanCache {
    entries: HashMap<String, PlanEntry>,
    capacity: usize,
    tick: u64,
    counters: PlanCacheCounters,
}

impl PlanCache {
    /// An empty cache holding at most `capacity` plans (0 disables).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            entries: HashMap::new(),
            capacity,
            tick: 0,
            counters: PlanCacheCounters::default(),
        }
    }

    /// Look up a plan for `key`, validating it against the currently
    /// published `version`. On version drift, `fingerprint` recomputes
    /// the stats fingerprint of the entry's read set against the current
    /// snapshot: unchanged ⇒ the entry is re-stamped and reused; drifted
    /// ⇒ the entry dies and the caller re-prepares.
    pub fn lookup(
        &mut self,
        key: &str,
        version: u64,
        fingerprint: impl FnOnce(&BTreeSet<String>) -> u64,
    ) -> Option<Arc<PreparedQuery>> {
        self.tick += 1;
        let Some(e) = self.entries.get_mut(key) else {
            self.counters.misses += 1;
            return None;
        };
        if e.valid_at != version {
            if fingerprint(&e.prepared.touched) == e.prepared.stats_fingerprint {
                e.valid_at = version;
            } else {
                self.entries.remove(key);
                self.counters.reprepares += 1;
                self.counters.misses += 1;
                return None;
            }
        }
        let e = self.entries.get_mut(key).expect("checked above");
        e.last_used = self.tick;
        self.counters.hits += 1;
        Some(Arc::clone(&e.prepared))
    }

    /// Store a plan prepared against `version`.
    pub fn insert(&mut self, key: String, prepared: Arc<PreparedQuery>, version: u64) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
                self.counters.capacity_evictions += 1;
            }
        }
        self.counters.insertions += 1;
        self.entries.insert(
            key,
            PlanEntry {
                prepared,
                valid_at: version,
                last_used: self.tick,
            },
        );
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop every plan, returning how many were dropped.
    pub fn clear(&mut self) -> usize {
        let n = self.entries.len();
        self.entries.clear();
        n
    }

    /// Counter snapshot.
    pub fn counters(&self) -> PlanCacheCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proql::engine::QueryOutput;
    use proql::exec::ProjectionResult;

    fn output() -> Arc<QueryOutput> {
        Arc::new(QueryOutput {
            projection: ProjectionResult::default(),
            annotated: None,
            stats: Default::default(),
            touched: BTreeSet::new(),
            plan: None,
        })
    }

    fn deps(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    fn prepared() -> Arc<PreparedQuery> {
        use proql::engine::Engine;
        use proql_provgraph::system::example_2_1;
        let e = Engine::new(example_2_1().unwrap());
        Arc::new(
            e.prepare("FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x")
                .unwrap(),
        )
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let mut c = ResultCache::new(8);
        assert!(c.lookup("q1").is_none());
        c.insert("q1".into(), deps(&["A"]), 1, output(), prepared());
        assert!(c.lookup("q1").is_some());
        let counters = c.counters();
        assert_eq!(counters.hits, 1);
        assert_eq!(counters.misses, 1);
    }

    #[test]
    fn write_to_dependency_evicts_unrelated_write_does_not() {
        let mut c = ResultCache::new(8);
        c.insert("qa".into(), deps(&["A", "P_m1"]), 1, output(), prepared());
        c.insert("qb".into(), deps(&["B"]), 1, output(), prepared());
        c.record_write(["B"], 2);
        // qa untouched by the write to B.
        assert!(c.lookup("qa").is_some());
        // qb's dependency was written after it was built.
        assert!(c.lookup("qb").is_none());
        assert_eq!(c.counters().stale_evictions, 1);
    }

    #[test]
    fn write_older_than_entry_keeps_it() {
        let mut c = ResultCache::new(8);
        c.record_write(["A"], 3);
        // Built at version 5, after the write: still fresh.
        c.insert("q".into(), deps(&["A"]), 5, output(), prepared());
        assert!(c.lookup("q").is_some());
    }

    #[test]
    fn stale_on_arrival_insert_is_rejected() {
        let mut c = ResultCache::new(8);
        c.record_write(["A"], 7);
        // A reader computed this against version 5, then the write at 7
        // landed before the insert: must not be cached.
        c.insert("q".into(), deps(&["A"]), 5, output(), prepared());
        assert!(c.lookup("q").is_none());
        assert_eq!(c.counters().rejected_inserts, 1);
        assert_eq!(c.counters().insertions, 0);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let mut c = ResultCache::new(2);
        c.insert("q1".into(), deps(&["A"]), 1, output(), prepared());
        c.insert("q2".into(), deps(&["A"]), 1, output(), prepared());
        assert!(c.lookup("q1").is_some()); // q2 is now the LRU entry
        c.insert("q3".into(), deps(&["A"]), 1, output(), prepared());
        assert_eq!(c.len(), 2);
        assert!(c.lookup("q1").is_some());
        assert!(c.lookup("q2").is_none());
        assert!(c.lookup("q3").is_some());
        assert_eq!(c.counters().capacity_evictions, 1);
    }

    #[test]
    fn clear_drops_everything() {
        let mut c = ResultCache::new(8);
        c.insert("q1".into(), deps(&["A"]), 1, output(), prepared());
        c.insert("q2".into(), deps(&["B"]), 1, output(), prepared());
        assert_eq!(c.clear(), 2);
        assert!(c.is_empty());
    }

    #[test]
    fn hit_rate_reported() {
        let mut c = ResultCache::new(8);
        c.insert("q".into(), deps(&["A"]), 1, output(), prepared());
        assert!(c.lookup("q").is_some());
        assert!(c.lookup("q").is_some());
        assert!(c.lookup("other").is_none());
        let rate = c.counters().hit_rate();
        assert!((rate - 2.0 / 3.0).abs() < 1e-9, "rate = {rate}");
    }

    #[test]
    fn plan_cache_fast_path_revalidation_and_drift() {
        let p = prepared();
        let (v, fp) = (p.stats_version, p.stats_fingerprint);
        let mut c = PlanCache::new(8);
        assert!(c.lookup("q", v, |_| 0).is_none());
        c.insert("q".into(), Arc::clone(&p), v);
        // Same version: the fingerprint closure must not run.
        assert!(c.lookup("q", v, |_| panic!("fresh entry")).is_some());
        // Version drift, unchanged fingerprint: revalidated and re-stamped.
        assert!(c.lookup("q", v + 1, |_| fp).is_some());
        assert!(c.lookup("q", v + 1, |_| panic!("re-stamped")).is_some());
        // Fingerprint drift: the entry dies; the caller re-prepares.
        assert!(c.lookup("q", v + 2, |_| fp ^ 1).is_none());
        assert!(c.is_empty());
        let counters = c.counters();
        assert_eq!(counters.hits, 3);
        assert_eq!(counters.misses, 2);
        assert_eq!(counters.reprepares, 1);
        assert!((counters.hit_rate() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn plan_cache_capacity_zero_disables() {
        let p = prepared();
        let mut c = PlanCache::new(0);
        c.insert("q".into(), Arc::clone(&p), p.stats_version);
        assert!(c.lookup("q", p.stats_version, |_| 0).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn plan_cache_evicts_lru() {
        let p = prepared();
        let v = p.stats_version;
        let mut c = PlanCache::new(2);
        c.insert("q1".into(), Arc::clone(&p), v);
        c.insert("q2".into(), Arc::clone(&p), v);
        assert!(c.lookup("q1", v, |_| 0).is_some()); // q2 is now LRU
        c.insert("q3".into(), Arc::clone(&p), v);
        assert_eq!(c.len(), 2);
        assert!(c.lookup("q2", v, |_| 0).is_none());
        assert!(c.lookup("q1", v, |_| 0).is_some());
        assert_eq!(c.counters().capacity_evictions, 1);
    }
}
