//! The line-based wire protocol.
//!
//! Requests are single lines, `<VERB> [args]`; responses are single
//! lines, either `OK <json-object>` or `ERR <kind>: <message>` (message
//! newlines escaped). Verbs:
//!
//! | verb | args | reply payload |
//! |---|---|---|
//! | `QUERY` | ProQL text | version, cache + plan-cache hit/miss, result sizes, digest; `EXPLAIN <query>` adds the rendered plan |
//! | `DELETE` | `<relation> <v1,v2,...>` | version, delete stats |
//! | `INSERT` | `<relation> <v1,v2,...>` | version, write-set size |
//! | `STATS` | `[TEXT]` | [`crate::core::ServiceStats`] JSON; with `TEXT`, the `name value` line rendering inside `{"text": ...}` |
//! | `INVALIDATE` | — | number of dropped cache entries |
//! | `PING` | — | `{"pong": true}` |
//! | `SUBSCRIBE` | ProQL text | like `QUERY` plus a `subscription` id; the server then pushes `PUSH <json>` lines on writes |
//! | `TRACE` | `[n]` | the `n` (default 8, max 64) most recent span trees from the telemetry ring as JSON |
//!
//! Tuple values in `DELETE`/`INSERT` are comma-separated and typed by
//! shape: `true`/`false` → bool, integers → int, decimals → float,
//! `NULL` → null, everything else → string.
//!
//! `SUBSCRIBE` breaks the strict request/response lockstep: after the
//! `OK` reply, the server may interleave asynchronous `PUSH {...}` lines
//! — a `"delta"` event when the subscribed answer was patched forward by
//! incremental maintenance (carrying the new version, patched row count,
//! and the answer's digest) or a `"resync"` event when the client must
//! re-issue the query. Clients distinguish pushes by the `PUSH ` prefix
//! ([`crate::server::Client`] stashes them transparently).

use crate::core::{QueryResponse, ServiceCore, SubscriptionEvent};
use proql::engine::QueryOutput;
use proql_common::{trace, Error, Tuple, Value};

/// Parse a comma-separated value list into a [`Tuple`].
pub fn parse_values(text: &str) -> Result<Tuple, Error> {
    if text.trim().is_empty() {
        return Err(Error::Parse("empty value list".into()));
    }
    let vals = text.split(',').map(parse_value).collect();
    Ok(Tuple::new(vals))
}

fn parse_value(raw: &str) -> Value {
    let raw = raw.trim();
    if raw.eq_ignore_ascii_case("null") {
        return Value::Null;
    }
    if raw == "true" {
        return Value::Bool(true);
    }
    if raw == "false" {
        return Value::Bool(false);
    }
    if let Ok(i) = raw.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = raw.parse::<f64>() {
        return Value::Float(f);
    }
    Value::from(raw)
}

/// A stable 64-bit digest of a query answer (FNV-1a over a canonical
/// rendering of bindings, derivations, and annotations). Two outputs
/// digest equal iff their observable content is identical — the
/// concurrency stress test and the wire protocol both use this to check
/// bit-identical results without shipping whole result sets.
pub fn result_digest(out: &QueryOutput) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    let mut eat = |s: &str| {
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
        h ^= 0x1f; // field separator
        h = h.wrapping_mul(PRIME);
    };
    for (mapping, rows) in &out.projection.derivations {
        eat("D");
        eat(mapping);
        for row in rows {
            eat(&format!("{row:?}"));
        }
    }
    for binding in &out.projection.bindings {
        eat("B");
        for (var, (rel, key)) in binding {
            eat(var);
            eat(rel);
            eat(&format!("{key:?}"));
        }
    }
    if let Some(ann) = &out.annotated {
        eat("A");
        // Annotation row order is an implementation detail; sort a
        // canonical rendering so the digest is order-insensitive.
        let mut rows: Vec<String> = ann
            .rows
            .iter()
            .map(|r| format!("{}{:?}={}", r.relation, r.key, r.annotation))
            .collect();
        rows.sort();
        for r in rows {
            eat(&r);
        }
    }
    h
}

/// JSON string literal escaping (mirrors `proql_bench::json_str`; kept
/// local so the service crate stays independent of the bench crate).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a `QUERY` reply payload. `plan_cache` reports whether a cached
/// prepared plan was reused; `EXPLAIN` queries additionally carry the
/// rendered plan text in a `plan` field.
pub fn query_json(resp: &QueryResponse) -> String {
    let out = &resp.output;
    let mut json = format!(
        "{{\"version\": {}, \"cache\": {}, \"plan_cache\": {}, \"bindings\": {}, \
         \"derivations\": {}, \"annotations\": {}, \"touched\": {}, \"digest\": {}",
        resp.version,
        json_str(if resp.cache_hit { "hit" } else { "miss" }),
        json_str(if resp.plan_cache_hit { "hit" } else { "miss" }),
        out.projection.bindings.len(),
        out.projection.derivation_count(),
        out.annotated.as_ref().map(|a| a.rows.len()).unwrap_or(0),
        out.touched.len(),
        json_str(&result_digest(out).to_string()),
    );
    if let Some(plan) = &out.plan {
        json.push_str(&format!(", \"plan\": {}", json_str(plan)));
    }
    json.push('}');
    json
}

/// Render a `SUBSCRIBE` reply payload: the initial answer (as in
/// [`query_json`]) prefixed with the subscription id the pushed events
/// will be tagged with.
pub fn subscribe_json(id: u64, resp: &QueryResponse) -> String {
    let inner = query_json(resp);
    format!(
        "{{\"subscription\": {id}, {}",
        inner.strip_prefix('{').unwrap_or(&inner)
    )
}

/// Render one pushed subscription event (the payload after `PUSH `).
pub fn push_json(id: u64, event: &SubscriptionEvent) -> String {
    match event {
        SubscriptionEvent::Delta {
            version,
            rows_patched,
            digest,
        } => format!(
            "{{\"subscription\": {id}, \"event\": \"delta\", \"version\": {version}, \
             \"rows_patched\": {rows_patched}, \"digest\": {}}}",
            json_str(&digest.to_string()),
        ),
        SubscriptionEvent::Resync { version } => {
            format!("{{\"subscription\": {id}, \"event\": \"resync\", \"version\": {version}}}")
        }
    }
}

/// Extract an unsigned-integer field from one of this protocol's own
/// flat JSON payloads. Not a general JSON parser — fields are scanned
/// textually — but sufficient for clients of this wire format.
pub fn json_u64_field(json: &str, key: &str) -> Option<u64> {
    let token: String = extract_token(json, key)?;
    token.parse().ok()
}

/// Extract a float field (also accepts integer tokens).
pub fn json_f64_field(json: &str, key: &str) -> Option<f64> {
    extract_token(json, key)?.parse().ok()
}

/// Extract a string field (returns the unescaped inner text).
pub fn json_str_field(json: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\": ");
    let start = json.find(&needle)? + needle.len();
    let rest = &json[start..];
    if !rest.starts_with('"') {
        return None;
    }
    let mut out = String::new();
    let mut chars = rest[1..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                // `json_str` emits control characters as \u00XX escapes
                // (EXPLAIN plan text contains newlines); decode them.
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                esc => out.push(esc),
            },
            c => out.push(c),
        }
    }
    None
}

fn extract_token(json: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\": ");
    let start = json.find(&needle)? + needle.len();
    let token: String = json[start..]
        .chars()
        .take_while(|c| !matches!(c, ',' | '}' | ' '))
        .collect();
    // Digests travel as JSON strings to avoid 53-bit integer truncation
    // in consumers; accept both bare and quoted tokens.
    Some(token.trim_matches('"').to_string())
}

/// Dispatch one request — `verb` plus its argument text — against a
/// service, returning the reply's JSON payload. Shared by both wire
/// protocols: the line protocol wraps the result in `OK `/`ERR ` lines
/// ([`handle_line`]), the binary framing layer in OK/ERR frames.
pub fn dispatch(core: &ServiceCore, verb: &str, rest: &str) -> Result<String, Error> {
    match verb.to_ascii_uppercase().as_str() {
        "QUERY" => query_cmd(core, rest),
        "DELETE" => delete_cmd(core, rest),
        "INSERT" => insert_cmd(core, rest),
        "STATS" if rest.eq_ignore_ascii_case("TEXT") => Ok(format!(
            "{{\"text\": {}}}",
            json_str(&core.stats().to_text())
        )),
        "STATS" => Ok(core.stats().to_json()),
        "INVALIDATE" => Ok(format!("{{\"cleared\": {}}}", core.invalidate())),
        "PING" => Ok("{\"pong\": true}".to_string()),
        // SUBSCRIBE needs a connection to push events down; the TCP
        // server intercepts it before this dispatcher.
        "SUBSCRIBE" => Err(Error::Other(
            "SUBSCRIBE requires a streaming connection (served over TCP only)".into(),
        )),
        "TRACE" => trace_cmd(rest),
        other => Err(Error::Parse(format!(
            "unknown verb {other:?}; expected \
             QUERY/DELETE/INSERT/STATS/INVALIDATE/PING/SUBSCRIBE/TRACE"
        ))),
    }
}

/// Number of span trees a `TRACE` reply returns when the client names no
/// limit.
pub const TRACE_DEFAULT_LIMIT: usize = 8;

/// Hard cap on the span trees one `TRACE` reply serializes (the ring can
/// hold thousands of spans; an unbounded dump would stall the server).
pub const TRACE_MAX_LIMIT: usize = 64;

fn trace_cmd(rest: &str) -> Result<String, Error> {
    let limit = if rest.is_empty() {
        TRACE_DEFAULT_LIMIT
    } else {
        rest.parse::<usize>()
            .map_err(|_| Error::Parse(format!("TRACE limit must be a number, got {rest:?}")))?
            .min(TRACE_MAX_LIMIT)
    };
    Ok(trace::traces_json(limit))
}

/// Render an error as the line protocol's `ERR ` payload (also the
/// binary ERR frame's payload): `<kind>: <message>`, newlines flattened.
pub fn error_payload(e: &Error) -> String {
    format!("{}: {}", e.kind(), e.message().replace(['\n', '\r'], " "))
}

/// Handle one protocol line against a service. Always returns a single
/// line (no trailing newline).
pub fn handle_line(core: &ServiceCore, line: &str) -> String {
    let line = line.trim();
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (line, ""),
    };
    match dispatch(core, verb, rest) {
        Ok(json) => format!("OK {json}"),
        Err(e) => format!("ERR {}", error_payload(&e)),
    }
}

fn query_cmd(core: &ServiceCore, text: &str) -> Result<String, Error> {
    if text.is_empty() {
        return Err(Error::Parse("QUERY needs a ProQL query".into()));
    }
    Ok(query_json(&core.query(text)?))
}

fn split_relation_values(rest: &str) -> Result<(&str, &str), Error> {
    rest.split_once(char::is_whitespace)
        .map(|(r, v)| (r, v.trim()))
        .ok_or_else(|| Error::Parse("expected `<relation> <v1,v2,...>`".into()))
}

fn delete_cmd(core: &ServiceCore, rest: &str) -> Result<String, Error> {
    let (relation, values) = split_relation_values(rest)?;
    let key = parse_values(values)?;
    let (version, stats) = core.delete(relation, &key)?;
    Ok(format!(
        "{{\"version\": {}, \"tuples_deleted\": {}, \"prov_rows_deleted\": {}, \"touched\": {}}}",
        version,
        stats.tuples_deleted,
        stats.prov_rows_deleted,
        stats.touched.len()
    ))
}

fn insert_cmd(core: &ServiceCore, rest: &str) -> Result<String, Error> {
    let (relation, values) = split_relation_values(rest)?;
    let tuple = parse_values(values)?;
    let (version, write_set) = core.insert_and_exchange(relation, tuple)?;
    Ok(format!(
        "{{\"version\": {}, \"write_set\": {}}}",
        version,
        write_set.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proql_common::tup;

    #[test]
    fn values_parse_by_shape() {
        assert_eq!(
            parse_values("1, sn1, true, 2.5, NULL").unwrap(),
            Tuple::new(vec![
                Value::Int(1),
                Value::from("sn1"),
                Value::Bool(true),
                Value::Float(2.5),
                Value::Null,
            ])
        );
        assert!(parse_values("   ").is_err());
    }

    #[test]
    fn digest_distinguishes_results_and_is_stable() {
        use proql::engine::Engine;
        use proql_provgraph::system::example_2_1;
        let e = Engine::new(example_2_1().unwrap());
        let a = e
            .query("FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x")
            .unwrap();
        let b = e
            .query("FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x")
            .unwrap();
        assert_eq!(result_digest(&a), result_digest(&b));
        let filtered = e
            .query("FOR [O $x] INCLUDE PATH [$x] <-+ [] WHERE $x.h >= 6 RETURN $x")
            .unwrap();
        assert_ne!(result_digest(&a), result_digest(&filtered));
    }

    #[test]
    fn json_field_extraction_round_trips() {
        let json = "{\"version\": 12, \"cache\": \"hit\", \"rate\": 0.75, \"digest\": \"18446744073709551615\"}";
        assert_eq!(json_u64_field(json, "version"), Some(12));
        assert_eq!(json_str_field(json, "cache").as_deref(), Some("hit"));
        assert_eq!(json_f64_field(json, "rate"), Some(0.75));
        assert_eq!(json_u64_field(json, "digest"), Some(u64::MAX));
        assert_eq!(json_u64_field(json, "missing"), None);
    }

    #[test]
    fn unknown_verb_and_bad_args_report_err() {
        use proql::engine::EngineOptions;
        use proql_provgraph::system::example_2_1;
        let core = ServiceCore::new(example_2_1().unwrap(), EngineOptions::default());
        assert!(handle_line(&core, "FROB x").starts_with("ERR parse:"));
        assert!(handle_line(&core, "QUERY").starts_with("ERR parse:"));
        assert!(handle_line(&core, "DELETE C").starts_with("ERR parse:"));
        assert!(handle_line(&core, "DELETE C 99,zz").starts_with("ERR not found:"));
    }

    #[test]
    fn protocol_session_against_example() {
        use proql::engine::EngineOptions;
        use proql_provgraph::system::example_2_1;
        let core = ServiceCore::new(example_2_1().unwrap(), EngineOptions::default());
        let q = "QUERY FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x";
        let first = handle_line(&core, q);
        assert!(first.starts_with("OK "), "{first}");
        assert_eq!(json_str_field(&first, "cache").as_deref(), Some("miss"));
        assert_eq!(json_u64_field(&first, "bindings"), Some(4));
        let second = handle_line(&core, q);
        assert_eq!(json_str_field(&second, "cache").as_deref(), Some("hit"));
        assert_eq!(
            json_str_field(&first, "digest"),
            json_str_field(&second, "digest")
        );

        let del = handle_line(&core, "DELETE C 2,cn2");
        assert!(del.starts_with("OK "), "{del}");
        assert!(json_u64_field(&del, "tuples_deleted").unwrap() > 0);

        let third = handle_line(&core, q);
        assert_eq!(json_str_field(&third, "cache").as_deref(), Some("miss"));
        assert_eq!(json_u64_field(&third, "bindings"), Some(3));

        let stats = handle_line(&core, "STATS");
        assert_eq!(json_u64_field(&stats, "cache_hits"), Some(1));
        assert_eq!(json_u64_field(&stats, "writes"), Some(1));
        // Example 2.1 is cyclic → graph strategy → the delete's
        // maintenance attempt fell back to eviction, and STATS says so.
        assert_eq!(json_u64_field(&stats, "maint_fallbacks"), Some(1));
        assert_eq!(json_u64_field(&stats, "maint_hits"), Some(0));
        assert!(json_u64_field(&stats, "delta_compactions").is_some());

        let inv = handle_line(&core, "INVALIDATE");
        assert_eq!(json_u64_field(&inv, "cleared"), Some(1));
        assert_eq!(json_u64_field(&handle_line(&core, "PING"), "pong"), None); // bool field
        assert!(handle_line(&core, "PING").contains("true"));

        // Deleting the A-grounded tuple works over the wire too.
        let _ = core.delete("A", &tup![1]).unwrap();
    }

    #[test]
    fn stats_text_and_trace_verbs_answer() {
        use proql::engine::EngineOptions;
        use proql_provgraph::system::example_2_1;
        let core = ServiceCore::new(example_2_1().unwrap(), EngineOptions::default());
        core.query("FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x")
            .unwrap();
        let text = handle_line(&core, "STATS TEXT");
        assert!(text.starts_with("OK {\"text\":"), "{text}");
        let inner = json_str_field(&text, "text").unwrap();
        assert!(inner.contains("queries 1\n"), "{inner}");
        assert!(inner.contains("graph_builds "), "{inner}");
        // TRACE always answers well-formed JSON (empty when tracing is
        // off); a bad limit is a parse error.
        let tr = handle_line(&core, "TRACE 4");
        assert!(tr.starts_with("OK {\"traces\": ["), "{tr}");
        assert!(handle_line(&core, "TRACE four").starts_with("ERR parse:"));
    }

    #[test]
    fn explain_over_the_wire_carries_plan_text() {
        use proql::engine::EngineOptions;
        use proql_provgraph::system::example_2_1;
        let core = ServiceCore::new(example_2_1().unwrap(), EngineOptions::default());
        let reply = handle_line(
            &core,
            "QUERY EXPLAIN FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x",
        );
        assert!(reply.starts_with("OK "), "{reply}");
        let plan = json_str_field(&reply, "plan").expect("plan field");
        // Example 2.1 is cyclic, so the graph strategy is chosen.
        assert!(plan.contains("strategy: graph-walk"), "{plan}");
        assert!(plan.contains("reads: A,"), "newlines must decode: {plan}");
        assert_eq!(json_u64_field(&reply, "bindings"), Some(0));
        // Plain queries carry no plan field.
        let plain = handle_line(&core, "QUERY FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x");
        assert!(json_str_field(&plain, "plan").is_none());
        assert_eq!(
            json_str_field(&plain, "plan_cache").as_deref(),
            Some("miss")
        );
    }
}
