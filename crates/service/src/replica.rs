//! Replica side of delta-streaming replication.
//!
//! [`start_replica`] turns a local [`ServiceCore`] into a read-only
//! follower of a primary: a background thread dials the primary's
//! binary port, performs the `HELLO` version handshake, subscribes to
//! the replication stream from the replica's current version, and
//! applies every `REPL_DELTA` / `REPL_SNAPSHOT` frame in order. Reads
//! keep flowing against the replica's published snapshot the whole
//! time — only the stream thread touches the write gate.
//!
//! Failure handling is the interesting part, and every path funnels
//! into one of two outcomes:
//!
//! * **Reconnect & resubscribe from the local version** — connection
//!   loss, or a version *gap* (the primary trimmed its delta log past
//!   us, or frames were lost). The primary's subscribe path then either
//!   replays the missing deltas from its log or falls back to a full
//!   snapshot; either way the replica converges.
//! * **Reconnect & force a snapshot** — digest mismatch or an undecodable
//!   frame. The replica's replayed graph digest disagreeing with the
//!   primary's means the delta chain can no longer be trusted, so the
//!   replica refuses to publish (the check happens *before* publish)
//!   and asks for a fresh snapshot instead. Counted in
//!   `repl_resubscribes` / `repl_digest_mismatches`, never silent.
//!
//! Reconnects use the jittered capped backoff from [`mod@crate::retry`], so
//! a restarting primary is not met by a thundering herd of replicas.

use crate::core::{ReplApplyOutcome, ServiceCore};
use crate::frame::verb;
use crate::retry::{Backoff, RetryPolicy};
use crate::server::BinClient;
use proql_provgraph::encode::wire;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Tuning for the replica stream thread.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Backoff between reconnect attempts (the replica never gives up;
    /// the policy's `max_attempts` is ignored, only the delay schedule
    /// is used).
    pub retry: RetryPolicy,
    /// How long one quiet-wire wait lasts before the loop rechecks the
    /// shutdown flag. Bounds `stop()` latency, not apply latency: a
    /// frame that is already in flight wakes the read immediately.
    pub poll: Duration,
}

impl Default for ReplicaConfig {
    fn default() -> ReplicaConfig {
        ReplicaConfig {
            retry: RetryPolicy::default(),
            poll: Duration::from_millis(25),
        }
    }
}

/// Handle to a running replica stream thread.
#[derive(Debug)]
pub struct ReplicaHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ReplicaHandle {
    /// Signal the stream thread to exit and wait for it. The core stays
    /// read-only and keeps serving its last published snapshot.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ReplicaHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Start following `primary`: marks `core` read-only (local writes are
/// refused with a clean error pointing at the primary) and spawns the
/// stream thread. Returns immediately; use [`wait_for_version`] to
/// block until the replica has caught up to a known point.
pub fn start_replica(
    core: Arc<ServiceCore>,
    primary: SocketAddr,
    cfg: ReplicaConfig,
) -> ReplicaHandle {
    core.set_read_only(true);
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let thread = thread::Builder::new()
        .name("proql-replica".into())
        .spawn(move || replica_loop(&core, primary, &cfg, &stop2))
        .expect("spawn replica thread");
    ReplicaHandle {
        stop,
        thread: Some(thread),
    }
}

/// Poll `core` until its published version reaches `version` or
/// `timeout` elapses. Returns whether it caught up.
pub fn wait_for_version(core: &ServiceCore, version: u64, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while core.version() < version {
        if Instant::now() >= deadline {
            return false;
        }
        thread::sleep(Duration::from_millis(1));
    }
    true
}

enum StreamEnd {
    Stopped,
    Reconnect,
}

enum FrameAction {
    Applied,
    Resubscribe { snapshot: bool },
}

fn replica_loop(core: &ServiceCore, primary: SocketAddr, cfg: &ReplicaConfig, stop: &AtomicBool) {
    let mut backoff = Backoff::new(cfg.retry.clone());
    let mut force_snapshot = false;
    while !stop.load(Ordering::Relaxed) {
        match run_stream(core, primary, cfg, stop, &mut force_snapshot, &mut backoff) {
            StreamEnd::Stopped => break,
            StreamEnd::Reconnect => sleep_interruptibly(stop, backoff.next_delay(), cfg.poll),
        }
    }
}

/// One connection's lifetime: dial, handshake, subscribe, apply frames
/// until the wire breaks, the chain breaks, or we are told to stop.
fn run_stream(
    core: &ServiceCore,
    primary: SocketAddr,
    cfg: &ReplicaConfig,
    stop: &AtomicBool,
    force_snapshot: &mut bool,
    backoff: &mut Backoff,
) -> StreamEnd {
    let mut client = match BinClient::connect(primary) {
        Ok(c) => c,
        Err(_) => return StreamEnd::Reconnect,
    };
    if client.hello().is_err() {
        return StreamEnd::Reconnect;
    }
    if client
        .repl_subscribe(core.version(), *force_snapshot)
        .is_err()
    {
        return StreamEnd::Reconnect;
    }
    loop {
        if stop.load(Ordering::Relaxed) {
            return StreamEnd::Stopped;
        }
        let f = match client.next_repl_timeout(cfg.poll) {
            Ok(Some(f)) => f,
            Ok(None) => continue,
            Err(_) => return StreamEnd::Reconnect,
        };
        match apply_frame(core, f.verb, &f.payload) {
            FrameAction::Applied => {
                // A clean apply proves the chain and the wire are
                // healthy again: restart the backoff schedule and drop
                // any pending snapshot demand.
                *force_snapshot = false;
                backoff.reset();
            }
            FrameAction::Resubscribe { snapshot } => {
                *force_snapshot |= snapshot;
                core.note_repl_resubscribe();
                return StreamEnd::Reconnect;
            }
        }
    }
}

/// Decode and apply one replication frame, classifying every failure as
/// either recoverable-from-the-log (plain resubscribe) or
/// chain-breaking (snapshot resubscribe).
fn apply_frame(core: &ServiceCore, frame_verb: u8, payload: &[u8]) -> FrameAction {
    match frame_verb {
        verb::REPL_DELTA => match wire::decode_delta_frame(payload) {
            Ok(df) => match core.apply_repl_delta_frame(&df) {
                Ok(ReplApplyOutcome::Applied { .. }) | Ok(ReplApplyOutcome::Stale { .. }) => {
                    FrameAction::Applied
                }
                Ok(ReplApplyOutcome::Gap { .. }) => FrameAction::Resubscribe { snapshot: false },
                Ok(ReplApplyOutcome::DigestMismatch { .. }) | Err(_) => {
                    FrameAction::Resubscribe { snapshot: true }
                }
            },
            Err(_) => FrameAction::Resubscribe { snapshot: true },
        },
        verb::REPL_SNAPSHOT => match wire::decode_snapshot_frame(payload) {
            Ok(sf) => match core.install_repl_snapshot_frame(&sf) {
                Ok(_) => FrameAction::Applied,
                Err(_) => FrameAction::Resubscribe { snapshot: true },
            },
            Err(_) => FrameAction::Resubscribe { snapshot: true },
        },
        _ => FrameAction::Applied,
    }
}

/// Sleep for `total`, waking every `slice` to honor the stop flag.
fn sleep_interruptibly(stop: &AtomicBool, total: Duration, slice: Duration) {
    let deadline = Instant::now() + total;
    while !stop.load(Ordering::Relaxed) {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        thread::sleep((deadline - now).min(slice));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::ServiceCore;
    use crate::server::serve;
    use proql::engine::EngineOptions;
    use proql_common::tup;
    use proql_provgraph::system::example_2_1;
    use std::time::Duration;

    fn core_from_example() -> Arc<ServiceCore> {
        Arc::new(ServiceCore::new(
            example_2_1().expect("example system"),
            EngineOptions::default(),
        ))
    }

    fn quick_cfg() -> ReplicaConfig {
        ReplicaConfig {
            retry: RetryPolicy {
                base: Duration::from_millis(1),
                cap: Duration::from_millis(20),
                max_attempts: 8,
                seed: 42,
            },
            poll: Duration::from_millis(5),
        }
    }

    #[test]
    fn replica_follows_a_live_primary_over_tcp() {
        let primary = core_from_example();
        let server = serve(Arc::clone(&primary), "127.0.0.1:0", 2).expect("serve primary");

        let replica = core_from_example();
        let handle = start_replica(Arc::clone(&replica), server.addr(), quick_cfg());

        primary.delete("C", &tup![2, "cn2"]).expect("delete");
        let target = primary.version();
        assert!(
            wait_for_version(&replica, target, Duration::from_secs(10)),
            "replica never reached version {target}"
        );
        assert_eq!(replica.graph_digest(), primary.graph_digest());
        assert!(replica.is_read_only());
        let err = replica
            .delete("A", &tup![1, "sn1", 7])
            .expect_err("replica must refuse local writes");
        assert!(err.to_string().contains("read-only replica"), "{err}");

        handle.stop();
        server.shutdown();
    }

    #[test]
    fn replica_survives_a_primary_restart() {
        let primary = core_from_example();
        let server = serve(Arc::clone(&primary), "127.0.0.1:0", 2).expect("serve primary");
        let addr = server.addr();

        let replica = core_from_example();
        let handle = start_replica(Arc::clone(&replica), addr, quick_cfg());

        primary.delete("C", &tup![2, "cn2"]).expect("delete");
        assert!(wait_for_version(
            &replica,
            primary.version(),
            Duration::from_secs(10)
        ));

        // Kill the primary's listener, then bring it back on the same
        // port: the replica must reconnect and resume the stream.
        server.shutdown();
        let server = loop {
            match serve(Arc::clone(&primary), &addr.to_string(), 2) {
                Ok(s) => break s,
                Err(_) => thread::sleep(Duration::from_millis(5)),
            }
        };
        primary.delete("N", &tup![1, "cn1"]).expect("delete 2");
        assert!(
            wait_for_version(&replica, primary.version(), Duration::from_secs(10)),
            "replica did not recover after primary restart"
        );
        assert_eq!(replica.graph_digest(), primary.graph_digest());

        handle.stop();
        server.shutdown();
    }
}
