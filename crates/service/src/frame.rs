//! The pipelined length-prefixed binary framing layer.
//!
//! A frame is a fixed 16-byte little-endian header followed by a
//! payload:
//!
//! ```text
//! offset  size  field
//! 0       1     magic (0xB1 — never the first byte of a legacy line)
//! 1       1     verb tag
//! 2       1     protocol version (0 = legacy pre-versioning, else
//!               1..=VERSION_WINDOW; greater is framing corruption)
//! 3       1     flags (reserved, must be 0)
//! 4       4     payload length (bytes; <= MAX_PAYLOAD)
//! 8       8     request id
//! 16      len   payload
//! ```
//!
//! Byte 2 was a reserved must-be-zero flags byte through protocol
//! version 0 and now carries the sender's protocol version, which the
//! [`verb::HELLO`] handshake negotiates explicitly. The split keeps
//! corruption detection sharp: a version inside the [`VERSION_WINDOW`]
//! is a *well-formed* frame some future peer could legitimately send —
//! the server answers an unsupported one with a clean per-frame ERR —
//! while a byte beyond the window (say a flipped 0xFF) is framing
//! corruption and still drops the connection.
//!
//! The server auto-detects the protocol from a connection's **first
//! byte**: [`MAGIC`] selects binary framing, anything else the legacy
//! line protocol ([`crate::proto`]). Requests carry a client-chosen
//! `request id` that the matching response echoes, so clients may
//! pipeline arbitrarily many frames before reading a single response;
//! the server answers a connection's requests **in order**. Server-push
//! frames ([`verb::PUSH`], carrying the subscription id in the request-id
//! slot) and load-shed notices ([`verb::OVERLOADED`]) are out-of-band
//! frame types of their own, so asynchronous pushes can never corrupt an
//! in-flight response stream — the failure mode the line protocol's
//! `PUSH `-prefix convention only avoids by strict lockstep.
//!
//! Payloads are protocol text: for requests, exactly the argument text
//! of the corresponding line verb (`QUERY` → ProQL, `DELETE`/`INSERT` →
//! `<relation> <v1,v2,...>`); for responses, the same JSON the line
//! protocol carries after `OK ` / `ERR `. Malformed framing (bad magic,
//! nonzero flags, oversized length) is unrecoverable by design — the
//! decoder reports [`DecodeError`] and the server drops the connection —
//! while a *well-formed* frame with an unknown verb or bogus payload
//! gets an ordinary [`verb::ERR`] response.

/// First byte of every binary frame. 0xB1 is outside ASCII, so no legacy
/// line can start with it.
pub const MAGIC: u8 = 0xB1;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 16;

/// Maximum payload size the decoder accepts (16 MiB). Larger lengths are
/// treated as framing corruption, not as a request to buffer.
pub const MAX_PAYLOAD: u32 = 16 << 20;

/// The protocol version this build speaks (stamped into every encoded
/// frame's version byte).
pub const PROTOCOL_VERSION: u8 = 1;

/// Highest version byte the decoder treats as a *well-formed* frame from
/// a future peer (answered with a clean ERR when unsupported). Anything
/// greater is indistinguishable from corruption and drops the connection.
pub const VERSION_WINDOW: u8 = 7;

/// Frame verb tags.
pub mod verb {
    /// Request: ProQL query (payload: query text).
    pub const QUERY: u8 = 1;
    /// Request: CDSS deletion (payload: `<relation> <v1,v2,...>`).
    pub const DELETE: u8 = 2;
    /// Request: insert + incremental exchange (payload like DELETE).
    pub const INSERT: u8 = 3;
    /// Request: service statistics (empty payload).
    pub const STATS: u8 = 4;
    /// Request: drop all cached results (empty payload).
    pub const INVALIDATE: u8 = 5;
    /// Request: liveness check (empty payload).
    pub const PING: u8 = 6;
    /// Request: subscribe to a query (payload: query text); PUSH frames
    /// follow out-of-band.
    pub const SUBSCRIBE: u8 = 7;
    /// Request: close the connection after pending responses drain
    /// (empty payload, no response).
    pub const QUIT: u8 = 8;
    /// Request: recent span trees from the telemetry ring (optional
    /// payload: max trace count as decimal text).
    pub const TRACE: u8 = 9;
    /// Request: protocol handshake (payload: the client's protocol
    /// version as decimal text, e.g. `"1"`). The OK payload reports the
    /// server's version; a version the server cannot serve gets a clean
    /// ERR, never a connection drop. Optional — clients that skip it are
    /// treated as version 0 (legacy).
    pub const HELLO: u8 = 10;
    /// Request: subscribe to the replication stream (payload:
    /// `<from_version> [SNAPSHOT]` as decimal text; `SNAPSHOT` forces a
    /// full-state transfer, the digest-mismatch recovery path).
    /// [`REPL_DELTA`] / [`REPL_SNAPSHOT`] frames follow out-of-band.
    pub const REPL_SUBSCRIBE: u8 = 11;
    /// Response: success (payload: JSON).
    pub const OK: u8 = 0x80;
    /// Response: error (payload: `<kind>: <message>`).
    pub const ERR: u8 = 0x81;
    /// Out-of-band push for a subscription; the request-id slot carries
    /// the subscription id (payload: event JSON).
    pub const PUSH: u8 = 0x82;
    /// Response: the request was shed by admission control before
    /// execution (empty payload; the id echoes the shed request). The
    /// request was *not* executed — retry after draining responses.
    pub const OVERLOADED: u8 = 0x83;
    /// Out-of-band replication push: one sealed graph delta (payload:
    /// `proql_provgraph::encode::wire` delta bytes; the id slot is
    /// unused — the payload carries the version ordering).
    pub const REPL_DELTA: u8 = 0x84;
    /// Out-of-band replication push: a full state snapshot (payload:
    /// wire snapshot bytes) — the broken-chain / forced-recovery
    /// fallback.
    pub const REPL_SNAPSHOT: u8 = 0x85;
}

/// A decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Verb tag (see [`verb`]).
    pub verb: u8,
    /// The sender's protocol version byte (0 for legacy peers that
    /// predate versioning; this build sends [`PROTOCOL_VERSION`]).
    pub proto: u8,
    /// Request id (echoed in responses; subscription id in PUSH frames).
    pub id: u64,
    /// Payload bytes (protocol text).
    pub payload: Vec<u8>,
}

impl Frame {
    /// Payload as UTF-8 text, if valid.
    pub fn text(&self) -> Option<&str> {
        std::str::from_utf8(&self.payload).ok()
    }
}

/// Unrecoverable framing corruption: the byte stream cannot be resynced,
/// so the connection must be dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// First byte of a frame was not [`MAGIC`].
    BadMagic(u8),
    /// Reserved flags bits were set, or the version byte fell outside
    /// the [`VERSION_WINDOW`] (low byte = version, high byte = flags).
    BadFlags(u16),
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic(b) => write!(f, "bad frame magic 0x{b:02x}"),
            DecodeError::BadFlags(x) => write!(f, "reserved frame flags 0x{x:04x} set"),
            DecodeError::Oversized(n) => {
                write!(
                    f,
                    "frame payload {n} bytes exceeds the {MAX_PAYLOAD}-byte cap"
                )
            }
        }
    }
}

/// Encode a frame into a fresh buffer.
pub fn encode(verb: u8, id: u64, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    encode_into(&mut buf, verb, id, payload);
    buf
}

/// Append a frame's bytes to `buf` (for batching pipelined requests into
/// one write).
pub fn encode_into(buf: &mut Vec<u8>, verb: u8, id: u64, payload: &[u8]) {
    debug_assert!(payload.len() as u64 <= MAX_PAYLOAD as u64);
    buf.push(MAGIC);
    buf.push(verb);
    buf.push(PROTOCOL_VERSION);
    buf.push(0); // reserved flags
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&id.to_le_bytes());
    buf.extend_from_slice(payload);
}

/// Try to decode one frame from the front of `buf`.
///
/// * `Ok(Some((frame, consumed)))` — a complete frame; the caller should
///   advance by `consumed` bytes.
/// * `Ok(None)` — the bytes so far are a valid prefix; read more.
/// * `Err(_)` — framing corruption; drop the connection.
pub fn decode(buf: &[u8]) -> Result<Option<(Frame, usize)>, DecodeError> {
    if buf.is_empty() {
        return Ok(None);
    }
    if buf[0] != MAGIC {
        return Err(DecodeError::BadMagic(buf[0]));
    }
    if buf.len() >= 4 {
        // Byte 2 is the version (bounded by the window — beyond it the
        // byte can only be corruption); byte 3 stays reserved must-be-0.
        if buf[2] > VERSION_WINDOW || buf[3] != 0 {
            return Err(DecodeError::BadFlags(u16::from_le_bytes([buf[2], buf[3]])));
        }
    }
    if buf.len() >= 8 {
        let len = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
        if len > MAX_PAYLOAD {
            return Err(DecodeError::Oversized(len));
        }
        let total = HEADER_LEN + len as usize;
        if buf.len() >= total {
            let id = u64::from_le_bytes(buf[8..16].try_into().expect("8-byte slice"));
            return Ok(Some((
                Frame {
                    verb: buf[1],
                    proto: buf[2],
                    id,
                    payload: buf[HEADER_LEN..total].to_vec(),
                },
                total,
            )));
        }
    }
    Ok(None)
}

/// Whether `verb` is one a client may send (the server answers anything
/// else, well-formed, with an ERR frame).
pub fn is_request_verb(verb: u8) -> bool {
    (verb::QUERY..=verb::REPL_SUBSCRIBE).contains(&verb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proql_common::rng::SplitMix64;

    #[test]
    fn roundtrip_with_payload_and_empty() {
        for (v, id, payload) in [
            (verb::QUERY, 7u64, b"FOR [O $x] RETURN $x".as_slice()),
            (verb::PING, u64::MAX, b"".as_slice()),
            (verb::PUSH, 0, b"{\"event\": \"delta\"}".as_slice()),
        ] {
            let bytes = encode(v, id, payload);
            let (frame, consumed) = decode(&bytes).unwrap().expect("complete frame");
            assert_eq!(consumed, bytes.len());
            assert_eq!(frame.verb, v);
            assert_eq!(frame.proto, PROTOCOL_VERSION);
            assert_eq!(frame.id, id);
            assert_eq!(frame.payload, payload);
        }
    }

    #[test]
    fn every_strict_prefix_needs_more_bytes() {
        let bytes = encode(verb::QUERY, 42, b"hello world");
        for cut in 0..bytes.len() {
            assert_eq!(
                decode(&bytes[..cut]).unwrap(),
                None,
                "prefix of {cut} bytes must ask for more"
            );
        }
    }

    #[test]
    fn batched_frames_decode_in_sequence() {
        let mut buf = Vec::new();
        for i in 0..5u64 {
            encode_into(&mut buf, verb::QUERY, i, format!("q{i}").as_bytes());
        }
        let mut off = 0;
        for i in 0..5u64 {
            let (frame, consumed) = decode(&buf[off..]).unwrap().expect("frame");
            assert_eq!(frame.id, i);
            assert_eq!(frame.payload, format!("q{i}").into_bytes());
            off += consumed;
        }
        assert_eq!(off, buf.len());
    }

    #[test]
    fn corruption_is_detected_not_panicked() {
        assert_eq!(decode(&[0x51]), Err(DecodeError::BadMagic(0x51))); // 'Q'
                                                                       // A version byte beyond the window is corruption…
        let mut bad_version = encode(verb::QUERY, 1, b"x");
        bad_version[2] = 0xFF;
        assert!(matches!(
            decode(&bad_version),
            Err(DecodeError::BadFlags(0xFF))
        ));
        // …and the reserved byte 3 is still must-be-zero.
        let mut bad_flags = encode(verb::QUERY, 1, b"x");
        bad_flags[3] = 1;
        assert!(matches!(decode(&bad_flags), Err(DecodeError::BadFlags(_))));
        let mut oversized = encode(verb::QUERY, 1, b"x");
        oversized[4..8].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(decode(&oversized), Err(DecodeError::Oversized(_))));
    }

    #[test]
    fn in_window_future_versions_stay_well_formed() {
        // A plausible future peer (version within the window) must
        // decode cleanly — the server answers it with an ERR, it is not
        // framing corruption.
        for v in 0..=VERSION_WINDOW {
            let mut bytes = encode(verb::QUERY, 9, b"q");
            bytes[2] = v;
            let (frame, _) = decode(&bytes).unwrap().expect("well-formed");
            assert_eq!(frame.proto, v);
        }
        for v in VERSION_WINDOW + 1..=255 {
            let mut bytes = encode(verb::QUERY, 9, b"q");
            bytes[2] = v;
            assert!(
                matches!(decode(&bytes), Err(DecodeError::BadFlags(_))),
                "version {v} must be treated as corruption"
            );
        }
    }

    #[test]
    fn fuzz_decoder_never_panics_and_roundtrips_survive_mutation_detection() {
        let mut rng = SplitMix64::seed_from_u64(0xF7A3E);
        for _ in 0..2000 {
            // Random well-formed frame.
            let verb = (rng.next_u64() % 200) as u8;
            let id = rng.next_u64();
            let len = rng.gen_range_usize(0, 64);
            let payload: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            let bytes = encode(verb, id, &payload);
            let (frame, n) = decode(&bytes).unwrap().expect("well-formed");
            assert_eq!((frame.verb, frame.id, frame.payload), (verb, id, payload));
            assert_eq!(n, bytes.len());

            // Random mutation: decode must return Ok(Some)/Ok(None)/Err,
            // never panic, and never read past the declared length.
            let mut mutated = bytes.clone();
            let idx = rng.gen_range_usize(0, mutated.len());
            mutated[idx] ^= (rng.next_u64() % 255 + 1) as u8;
            let _ = decode(&mutated);

            // Random garbage of random length.
            let glen = rng.gen_range_usize(0, 48);
            let garbage: Vec<u8> = (0..glen).map(|_| rng.next_u64() as u8).collect();
            let _ = decode(&garbage);
        }
    }
}
