//! The shared, thread-safe query service.
//!
//! # Locking discipline
//!
//! * Readers never block readers, and never block behind a running
//!   write: [`ServiceCore::query`] grabs the **current snapshot**
//!   (an `Arc<Snapshot>` behind a briefly-held `RwLock`) and runs the
//!   whole query against that immutable snapshot.
//! * Writers serialize through `write_gate` and publish `(snapshot,
//!   delta)` pairs: the next system is a **copy-on-write** clone
//!   (O(#relations) pointer bumps; only mutated tables materialize), the
//!   mutation seals a [`proql_provgraph::GraphDelta`] in the system's
//!   delta log, the write set recorded in the result cache is derived
//!   from that delta, and the published engine adopts the previous
//!   snapshot's provenance graph so the first graph query after the
//!   write patches instead of rebuilding. In-flight readers keep their
//!   `Arc` to the old snapshot and finish with a consistent view.
//! * The cache's freshness rule (see [`crate::cache`]) makes the
//!   reader/writer races benign: a result computed against a snapshot
//!   that a concurrent write has outdated is rejected at insert time,
//!   and a cache hit's reported version is read under the cache lock —
//!   writers record the write set *before* publishing, so an entry that
//!   survives the epoch check is valid at the version the reader
//!   reports.

use crate::cache::{CacheCounters, PlanCache, PlanCacheCounters, ResultCache};
use crate::metrics::{Metrics, TransportMetrics, TransportSnapshot};
use crate::proto::result_digest;
use proql::engine::{Engine, EngineOptions, QueryOutput};
use proql::{maintain_output, MaintainResult};
use proql_cdss::update::{delete_local_with_graph, DeleteStats};
use proql_common::{trace, Result, Tuple};
use proql_provgraph::ProvenanceSystem;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Lock with poison recovery: a worker that panicked mid-query must not
/// wedge every other worker. The data behind each service lock is safe to
/// resume after a panic — the snapshot slot is a single `Arc` swap, and
/// the caches are freshness-checked on every read — so the poison flag
/// carries no information here.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Read-lock with poison recovery (see [`lock`]).
fn read_lock<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

/// Write-lock with poison recovery (see [`lock`]).
fn write_lock<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|e| e.into_inner())
}

/// One immutable published version of the system: queries run against a
/// snapshot end-to-end, so a write landing mid-query cannot tear results.
#[derive(Debug)]
pub struct Snapshot {
    /// The [`ProvenanceSystem::version`] this snapshot was published at.
    pub version: u64,
    /// A read-only engine over the snapshot's system.
    pub engine: Engine,
}

/// Point-in-time service statistics (the `STATS` verb's payload).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    /// Currently published system version.
    pub version: u64,
    /// Queries served (hits + misses + errors).
    pub queries: u64,
    /// Writes applied (deletions + insert/exchange rounds).
    pub writes: u64,
    /// Live cache entries.
    pub cache_entries: u64,
    /// Cache counters.
    pub cache: CacheCounters,
    /// Live prepared-plan entries.
    pub plan_entries: u64,
    /// Prepared-plan cache counters.
    pub plans: PlanCacheCounters,
    /// Delta-log compactions in the published system (sealed entries
    /// merged to bound log growth; see `proql_provgraph::DeltaLog`).
    pub delta_compactions: u64,
    /// Provenance-graph builds from scratch, accumulated across every
    /// published snapshot plus the current one.
    pub graph_builds: u64,
    /// Provenance-graph delta patches, accumulated the same way.
    pub graph_patches: u64,
    /// Transport counters and latency percentiles, when a TCP front end
    /// is attached (zeros otherwise).
    pub transport: TransportSnapshot,
}

impl ServiceStats {
    /// Assemble the unified metrics registry — the **single** source both
    /// the JSON (`STATS`) and text (`STATS TEXT`) renderings draw from,
    /// so the two surfaces can never drift apart.
    pub fn registry(&self) -> Metrics {
        let mut m = Metrics::new();
        m.push_u64("version", self.version);
        m.push_u64("queries", self.queries);
        m.push_u64("writes", self.writes);
        m.push_u64("cache_entries", self.cache_entries);
        m.push_u64("cache_hits", self.cache.hits);
        m.push_u64("cache_misses", self.cache.misses);
        m.push_f64("cache_hit_rate", self.cache.hit_rate(), 6);
        m.push_u64("stale_evictions", self.cache.stale_evictions);
        m.push_u64("capacity_evictions", self.cache.capacity_evictions);
        m.push_u64("rejected_inserts", self.cache.rejected_inserts);
        m.push_u64("maint_hits", self.cache.maint_hits);
        m.push_u64("maint_fallbacks", self.cache.maint_fallbacks);
        m.push_u64("maint_rows_patched", self.cache.maint_rows_patched);
        m.push_u64("delta_compactions", self.delta_compactions);
        m.push_u64("graph_builds", self.graph_builds);
        m.push_u64("graph_patches", self.graph_patches);
        m.push_u64("plan_entries", self.plan_entries);
        m.push_u64("plan_cache_hits", self.plans.hits);
        m.push_u64("plan_cache_misses", self.plans.misses);
        m.push_f64("plan_cache_hit_rate", self.plans.hit_rate(), 6);
        m.push_u64("plan_reprepares", self.plans.reprepares);
        m.push_u64("connections_open", self.transport.connections_open);
        m.push_u64("connections_total", self.transport.connections_total);
        m.push_u64("frames_in", self.transport.frames_in);
        m.push_u64("frames_out", self.transport.frames_out);
        m.push_u64("shed_count", self.transport.shed_count);
        m.push_u64("protocol_errors", self.transport.protocol_errors);
        m.push_u64("requests_recorded", self.transport.requests_recorded);
        m.push_f64("latency_p50_ms", self.transport.latency_p50_ms, 4);
        m.push_f64("latency_p95_ms", self.transport.latency_p95_ms, 4);
        m.push_f64("latency_p99_ms", self.transport.latency_p99_ms, 4);
        m
    }

    /// Single-line JSON rendering of [`Self::registry`] (the workspace
    /// has no serde).
    pub fn to_json(&self) -> String {
        self.registry().to_json()
    }

    /// `name value` line rendering of [`Self::registry`] (the `STATS
    /// TEXT` payload).
    pub fn to_text(&self) -> String {
        self.registry().to_text()
    }
}

/// A query answer plus the service-level context it was produced in.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The system version this answer is valid at: a serial [`Engine`]
    /// replay against the system state of this version returns a
    /// bit-identical result.
    pub version: u64,
    /// Whether the answer came from the result cache.
    pub cache_hit: bool,
    /// Whether the query reused a cached prepared plan (always `false`
    /// on result-cache hits, which never consult the plan cache).
    pub plan_cache_hit: bool,
    /// The answer.
    pub output: Arc<QueryOutput>,
}

/// The receiving end of a subscription channel: `(subscription id,
/// event)` pairs, one sender shared by all of a connection's
/// subscriptions.
pub type SubscriptionReceiver = mpsc::Receiver<(u64, SubscriptionEvent)>;

/// What happened to a subscribed query's answer after a write (pushed to
/// `SUBSCRIBE` clients, tagged with the subscription id).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubscriptionEvent {
    /// The cached answer was patched forward by incremental maintenance:
    /// the subscriber's view is current again at `version` without a
    /// recompute. `digest` is the canonical result digest of the patched
    /// answer (what a re-`QUERY` would report); `rows_patched` is how
    /// many projection/annotation rows actually changed.
    Delta {
        /// The version the patched answer is valid at.
        version: u64,
        /// Projection and annotation rows added, removed, or revalued.
        rows_patched: u64,
        /// Canonical digest of the patched answer.
        digest: u64,
    },
    /// The write could not be maintained (fallback or the entry was
    /// gone): the cached answer died and the subscriber must re-issue
    /// the query to resynchronize.
    Resync {
        /// The version the subscriber should re-query at (or later).
        version: u64,
    },
}

/// Where subscription events are delivered: called with `(subscription
/// id, event)` on every intersecting write, returning whether the
/// subscriber is still alive (`false` prunes the subscription). Sinks
/// run on the writer's thread and must be cheap and non-blocking — the
/// TCP server's sink appends a pre-rendered PUSH frame to the
/// connection's outbound queue and wakes the event loop.
pub type PushSink = Box<dyn Fn(u64, SubscriptionEvent) -> bool + Send + Sync>;

/// One live subscription: where to push events for a cache key.
struct Subscription {
    id: u64,
    key: String,
    /// The answer's read set at subscribe time — a write intersecting it
    /// triggers an event even if the cache entry itself has vanished.
    deps: BTreeSet<String>,
    sink: PushSink,
}

impl std::fmt::Debug for Subscription {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscription")
            .field("id", &self.id)
            .field("key", &self.key)
            .field("deps", &self.deps)
            .finish_non_exhaustive()
    }
}

/// A shared, thread-safe ProQL query service over a [`ProvenanceSystem`]:
/// single-writer / multi-reader with versioned snapshots and a
/// dependency-tracked result cache.
#[derive(Debug)]
pub struct ServiceCore {
    state: RwLock<Arc<Snapshot>>,
    write_gate: Mutex<()>,
    cache: Mutex<ResultCache>,
    plans: Mutex<PlanCache>,
    options: EngineOptions,
    queries: AtomicU64,
    writes: AtomicU64,
    /// Graph build/patch counts accumulated from **retired** snapshots:
    /// each published engine counts only its own lifetime (a write
    /// installs a fresh engine), so the write path folds the outgoing
    /// snapshot's counters in here before publishing. `stats()` reports
    /// accumulated + current-snapshot counts.
    graph_builds: AtomicU64,
    graph_patches: AtomicU64,
    /// Incremental view maintenance switch: `true` patches intersecting
    /// cache entries forward across writes; `false` reproduces the old
    /// evict-on-write behavior (the ablation baseline).
    maintenance: bool,
    subs: Mutex<Vec<Subscription>>,
    next_sub_id: AtomicU64,
    /// Metrics of the attached TCP front end, if any (installed by
    /// `serve`); folded into [`ServiceStats`].
    transport: Mutex<Option<Arc<TransportMetrics>>>,
}

/// Default bound on live cache entries.
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// Default bound on cached prepared plans.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 256;

impl ServiceCore {
    /// Serve `sys` with engine `options` and the default cache capacities.
    pub fn new(sys: ProvenanceSystem, options: EngineOptions) -> Self {
        ServiceCore::with_capacities(
            sys,
            options,
            DEFAULT_CACHE_CAPACITY,
            DEFAULT_PLAN_CACHE_CAPACITY,
        )
    }

    /// Serve `sys` with an explicit result-cache capacity and the default
    /// plan-cache capacity.
    pub fn with_cache_capacity(
        sys: ProvenanceSystem,
        options: EngineOptions,
        capacity: usize,
    ) -> Self {
        ServiceCore::with_capacities(sys, options, capacity, DEFAULT_PLAN_CACHE_CAPACITY)
    }

    /// Serve `sys` with explicit result-cache and plan-cache capacities
    /// (a plan capacity of 0 disables prepared-plan reuse — the
    /// unprepared baseline benchmarks measure against).
    pub fn with_capacities(
        sys: ProvenanceSystem,
        options: EngineOptions,
        capacity: usize,
        plan_capacity: usize,
    ) -> Self {
        // Honor PROQL_TRACE / PROQL_TRACE_SPANS before the first query
        // can record a span. Idempotent, so repeated cores are fine.
        trace::init_from_env();
        let version = sys.version();
        let engine = Engine::with_options(sys, options.clone());
        ServiceCore {
            state: RwLock::new(Arc::new(Snapshot { version, engine })),
            write_gate: Mutex::new(()),
            cache: Mutex::new(ResultCache::new(capacity)),
            plans: Mutex::new(PlanCache::new(plan_capacity)),
            options,
            queries: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            graph_builds: AtomicU64::new(0),
            graph_patches: AtomicU64::new(0),
            maintenance: true,
            subs: Mutex::new(Vec::new()),
            next_sub_id: AtomicU64::new(0),
            transport: Mutex::new(None),
        }
    }

    /// Attach a transport's metrics so `STATS` reports them. The server
    /// installs its block at startup; a later `serve` over the same core
    /// replaces it (last front end wins).
    pub fn set_transport_metrics(&self, metrics: Arc<TransportMetrics>) {
        *lock(&self.transport) = Some(metrics);
    }

    /// Toggle incremental view maintenance (on by default). Disabling it
    /// reproduces the pre-maintenance write path — every write evicts
    /// intersecting entries — which benchmarks use as the ablation
    /// baseline.
    pub fn with_maintenance(mut self, enabled: bool) -> Self {
        self.maintenance = enabled;
        self
    }

    /// The currently published snapshot.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&read_lock(&self.state))
    }

    /// The currently published system version.
    pub fn version(&self) -> u64 {
        self.snapshot().version
    }

    /// Cache keys are whitespace-normalized query text, so reformatted
    /// copies of the same query share an entry. Normalization mirrors
    /// the ProQL lexer: single-quoted string literals are preserved
    /// verbatim (whitespace inside them is significant) and `--` line
    /// comments are stripped. A leading `EXPLAIN` keyword — which the
    /// parser matches case-insensitively — is canonicalized to an
    /// explicit uppercase flag, so `explain q` and `EXPLAIN q` share one
    /// entry that is always distinct from `q`'s (an `EXPLAIN` answer has
    /// no result rows; conflating the two keys would serve an empty
    /// projection for the real query or vice versa). A following
    /// `ANALYZE` keyword is canonicalized the same way — the query path
    /// uses the `EXPLAIN ANALYZE ` prefix to bypass the result cache,
    /// since a cached analyze answer would replay stale timings.
    pub fn cache_key(text: &str) -> String {
        let normalized = Self::normalize_text(text);
        match normalized.split_once(' ') {
            Some((head, rest)) if head.eq_ignore_ascii_case("EXPLAIN") => {
                match rest.split_once(' ') {
                    Some((next, tail)) if next.eq_ignore_ascii_case("ANALYZE") => {
                        format!("EXPLAIN ANALYZE {tail}")
                    }
                    _ => format!("EXPLAIN {rest}"),
                }
            }
            _ => normalized,
        }
    }

    /// Whether a canonical cache key is an `EXPLAIN ANALYZE` query, which
    /// must re-execute every time (its payload is measured timings).
    fn is_analyze_key(key: &str) -> bool {
        key.starts_with("EXPLAIN ANALYZE ")
    }

    /// Whitespace/comment normalization behind [`Self::cache_key`].
    fn normalize_text(text: &str) -> String {
        let mut out = String::with_capacity(text.len());
        let mut chars = text.chars().peekable();
        let mut pending_space = false;
        let emit = |c: char, out: &mut String, pending: &mut bool| {
            if *pending && !out.is_empty() {
                out.push(' ');
            }
            *pending = false;
            out.push(c);
        };
        while let Some(c) = chars.next() {
            match c {
                '\'' => {
                    emit('\'', &mut out, &mut pending_space);
                    for c in chars.by_ref() {
                        out.push(c);
                        if c == '\'' {
                            break;
                        }
                    }
                }
                '-' if chars.peek() == Some(&'-') => {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            break;
                        }
                    }
                    pending_space = true;
                }
                c if c.is_whitespace() => pending_space = true,
                c => emit(c, &mut out, &mut pending_space),
            }
        }
        out
    }

    /// Serve one ProQL query: from the result cache when a fresh entry
    /// exists; otherwise via the prepared-plan cache — a cached plan
    /// (validated against statistics drift) skips parse → translate →
    /// optimize — executing against the current snapshot and caching the
    /// answer keyed by its read set.
    pub fn query(&self, text: &str) -> Result<QueryResponse> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let mut sp = trace::span("service.query");
        let key = ServiceCore::cache_key(text);
        // EXPLAIN ANALYZE answers are measurements, not results: always
        // re-execute (plan-cache reuse is still fine — it's what the
        // measurement is *of*).
        let analyze = ServiceCore::is_analyze_key(&key);
        if !analyze {
            let mut cache = lock(&self.cache);
            // Read the published version while holding the cache lock:
            // writers record their write set before publishing, so an
            // entry that passes the epoch check is valid at `version`.
            let version = read_lock(&self.state).version;
            if let Some(output) = cache.lookup(&key) {
                sp.field("cache", "hit");
                return Ok(QueryResponse {
                    version,
                    cache_hit: true,
                    plan_cache_hit: false,
                    output,
                });
            }
        }
        sp.field("cache", if analyze { "bypass" } else { "miss" });
        let snap = self.snapshot();
        // Result miss: reuse the cached plan when its statistics are
        // still current (plan reuse is always *correct*; the fingerprint
        // check only guards cost-optimality).
        let cached_plan = lock(&self.plans).lookup(&key, snap.version, |touched| {
            snap.engine.stats_fingerprint(touched)
        });
        let (prepared, plan_cache_hit) = match cached_plan {
            Some(p) => (p, true),
            None => {
                // Prepare outside the plan lock: translation can be slow
                // and must not serialize other queries' lookups. A racing
                // duplicate prepare is benign (last insert wins).
                let p = Arc::new(snap.engine.prepare(text)?);
                lock(&self.plans).insert(key.clone(), Arc::clone(&p), snap.version);
                (p, false)
            }
        };
        sp.field("plan_cache", if plan_cache_hit { "hit" } else { "miss" });
        let output = Arc::new(snap.engine.execute(&prepared)?);
        if !analyze {
            lock(&self.cache).insert(
                key,
                output.touched.clone(),
                snap.version,
                Arc::clone(&output),
                Arc::clone(&prepared),
            );
        }
        Ok(QueryResponse {
            version: snap.version,
            cache_hit: false,
            plan_cache_hit,
            output,
        })
    }

    /// Apply a mutation through the single-writer path: clone the
    /// current system **copy-on-write** (O(#relations) pointer bumps —
    /// only the tables the mutation touches are materialized), run
    /// `mutate` on the clone, then publish the result as the next
    /// snapshot. The published engine **adopts** the previous snapshot's
    /// cached provenance graph, so the first graph query after the write
    /// pays a delta patch instead of a from-scratch rebuild.
    ///
    /// `mutate` returns the write set — the relations it modified —
    /// which is recorded in the cache *before* the new snapshot becomes
    /// visible; returning `None` reports a no-op (nothing is published,
    /// no entry is evicted).
    ///
    /// Before publishing, every **fresh** cache entry whose read set
    /// intersects the write set is run through incremental view
    /// maintenance ([`proql::maintain_output`]): the entry's unfolded
    /// rules are re-run in delta form over the `(snapshot, delta)` pair
    /// and the cached answer is patched to the new version in O(delta).
    /// Entries the maintainer cannot localize (graph-walk answers,
    /// set-valued semirings, broken delta chains, oversized deltas) fall
    /// back to the old behavior — eviction — so maintenance is never a
    /// correctness risk. The patched entries are installed, the write
    /// epoch recorded, and the snapshot published under one cache lock
    /// acquisition, so no reader can observe a new-version answer at the
    /// old published version.
    fn write<T>(
        &self,
        mutate: impl FnOnce(&Snapshot, &mut ProvenanceSystem) -> Result<Option<(BTreeSet<String>, T)>>,
    ) -> Result<Option<(u64, T)>> {
        let _gate = lock(&self.write_gate);
        let mut sp = trace::span("service.write");
        let current = self.snapshot();
        let mut sys = current.engine.sys.clone();
        let Some((write_set, value)) = mutate(&current, &mut sys)? else {
            return Ok(None);
        };
        let version = sys.version();
        debug_assert!(version > current.version, "mutations must bump the version");
        let engine = Engine::with_options(sys, self.options.clone());
        engine.adopt_graph_cache(&current.engine);
        let next = Arc::new(Snapshot { version, engine });
        // Maintenance runs outside the cache lock (it executes delta
        // plans); the write gate keeps the candidate set stable against
        // other writers, and racing readers still see the old entries at
        // the old published version.
        let maintained = if self.maintenance {
            let candidates = lock(&self.cache).take_maintenance_candidates(&write_set);
            candidates
                .into_iter()
                .map(|c| {
                    let outcome = maintain_output(
                        &current.engine,
                        &next.engine,
                        &c.prepared,
                        &c.previous,
                        c.state,
                    );
                    (c.key, outcome)
                })
                .collect()
        } else {
            Vec::new()
        };
        let mut events: Vec<(String, SubscriptionEvent)> = Vec::new();
        {
            let mut cache = lock(&self.cache);
            for (key, outcome) in maintained {
                match outcome {
                    Ok(MaintainResult::Maintained {
                        output,
                        rows_patched,
                        state,
                    }) => {
                        let digest = result_digest(&output);
                        cache.apply_maintained(
                            &key,
                            Arc::new(*output),
                            state,
                            version,
                            rows_patched,
                        );
                        events.push((
                            key,
                            SubscriptionEvent::Delta {
                                version,
                                rows_patched,
                                digest,
                            },
                        ));
                    }
                    Ok(MaintainResult::Fallback(_)) | Err(_) => {
                        cache.maintenance_fallback(&key);
                        events.push((key, SubscriptionEvent::Resync { version }));
                    }
                }
            }
            cache.record_write(write_set.iter().map(String::as_str), version);
            // The outgoing snapshot's engine retires here: fold its graph
            // counters into the service-lifetime accumulators (stragglers
            // still reading it may add a few more — an acceptable
            // undercount for monotonic service-level counters).
            self.graph_builds
                .fetch_add(current.engine.graph_build_count(), Ordering::Relaxed);
            self.graph_patches
                .fetch_add(current.engine.graph_patch_count(), Ordering::Relaxed);
            *write_lock(&self.state) = next;
        }
        self.notify_subscribers(&write_set, version, &events);
        self.writes.fetch_add(1, Ordering::Relaxed);
        sp.field("version", version.to_string());
        Ok(Some((version, value)))
    }

    /// Push this write's outcome to every subscription whose read set it
    /// intersects: a `Delta` when the subscribed entry was maintained, a
    /// `Resync` otherwise (fallback, eviction, or maintenance disabled).
    /// Subscriptions whose receiver hung up are pruned.
    fn notify_subscribers(
        &self,
        write_set: &BTreeSet<String>,
        version: u64,
        events: &[(String, SubscriptionEvent)],
    ) {
        let mut subs = lock(&self.subs);
        if subs.is_empty() {
            return;
        }
        subs.retain(|sub| {
            if !sub.deps.iter().any(|d| write_set.contains(d)) {
                return true;
            }
            let event = events
                .iter()
                .find(|(key, _)| *key == sub.key)
                .map(|(_, e)| *e)
                .unwrap_or(SubscriptionEvent::Resync { version });
            (sub.sink)(sub.id, event)
        });
    }

    /// CDSS deletion: remove a tuple from `relation`'s local table and
    /// garbage-collect everything no longer derivable. The derivability
    /// analysis runs against the current snapshot's cached provenance
    /// graph (building it once if absent — later deletes patch it
    /// forward), so a delete costs the cascade, not a graph rebuild.
    /// Returns the new version and the deletion stats (whose `touched`
    /// set drove cache invalidation).
    pub fn delete(&self, relation: &str, key: &Tuple) -> Result<(u64, DeleteStats)> {
        let published = self.write(|snap, sys| {
            let graph = snap.engine.graph()?;
            let stats = delete_local_with_graph(sys, relation, key, &graph)?;
            Ok(Some((stats.touched.clone(), stats)))
        })?;
        Ok(published.expect("a successful deletion is never a no-op"))
    }

    /// Insert a tuple into `relation`'s local table and re-run the
    /// exchange (incrementally — seeded with just this row). The write
    /// set rides the sealed graph deltas: exactly the base tables the
    /// insert and its exchange touched. A duplicate insert is a no-op
    /// under set semantics: nothing is published, no cache entry dies,
    /// and the current version is returned with an empty write set.
    pub fn insert_and_exchange(
        &self,
        relation: &str,
        tuple: Tuple,
    ) -> Result<(u64, BTreeSet<String>)> {
        let published = self.write(|_snap, sys| {
            let v0 = sys.version();
            if !sys.insert_local(relation, tuple)? {
                return Ok(None);
            }
            sys.run_exchange()?;
            // Derive the write set from the mutation's own delta entries;
            // if the log cannot bridge the span (it always should for a
            // tracked insert+exchange), fail safe to "everything".
            let write_set = sys
                .write_set_since(v0)
                .unwrap_or_else(|| sys.db.table_names().map(str::to_string).collect());
            Ok(Some((write_set.clone(), write_set)))
        })?;
        Ok(published.unwrap_or_else(|| (self.version(), BTreeSet::new())))
    }

    /// Drop every cached result (the `INVALIDATE` verb). Returns how many
    /// entries were dropped. Prepared plans survive — they are
    /// correctness-independent of data, so only statistics drift (checked
    /// on every reuse) retires them.
    pub fn invalidate(&self) -> usize {
        lock(&self.cache).clear()
    }

    /// Subscribe to a query (the `SUBSCRIBE` verb): runs it once (warming
    /// the cache entry maintenance keeps patched) and registers `sender`
    /// to receive `(subscription id, event)` pairs on every write that
    /// intersects the answer's read set — [`SubscriptionEvent::Delta`]
    /// when the answer was patched forward, [`SubscriptionEvent::Resync`]
    /// when the subscriber must re-query. One sender can serve many
    /// subscriptions (the TCP server uses one channel per connection).
    pub fn subscribe_with(
        &self,
        text: &str,
        sender: mpsc::Sender<(u64, SubscriptionEvent)>,
    ) -> Result<(u64, QueryResponse)> {
        self.subscribe_sink(
            text,
            Box::new(move |id, event| sender.send((id, event)).is_ok()),
        )
    }

    /// [`Self::subscribe_with`] with an arbitrary delivery callback
    /// instead of an mpsc channel. The event-loop server uses this to
    /// write PUSH frames straight into a connection's outbound queue —
    /// no per-subscription channel, no polling cadence. The sink
    /// returning `false` prunes the subscription.
    pub fn subscribe_sink(&self, text: &str, sink: PushSink) -> Result<(u64, QueryResponse)> {
        let resp = self.query(text)?;
        let id = self.next_sub_id.fetch_add(1, Ordering::Relaxed) + 1;
        lock(&self.subs).push(Subscription {
            id,
            key: ServiceCore::cache_key(text),
            deps: resp.output.touched.clone(),
            sink,
        });
        Ok((id, resp))
    }

    /// [`Self::subscribe_with`] over a private channel: returns the
    /// subscription id, the initial answer, and the event receiver.
    pub fn subscribe(&self, text: &str) -> Result<(u64, QueryResponse, SubscriptionReceiver)> {
        let (tx, rx) = mpsc::channel();
        let (id, resp) = self.subscribe_with(text, tx)?;
        Ok((id, resp, rx))
    }

    /// Drop a subscription. Returns whether it was live.
    pub fn unsubscribe(&self, id: u64) -> bool {
        let mut subs = lock(&self.subs);
        let before = subs.len();
        subs.retain(|s| s.id != id);
        subs.len() < before
    }

    /// Live subscriptions.
    pub fn subscription_count(&self) -> usize {
        lock(&self.subs).len()
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> ServiceStats {
        let (entries, counters) = {
            let cache = lock(&self.cache);
            (cache.len() as u64, cache.counters())
        };
        let (plan_entries, plan_counters) = {
            let plans = lock(&self.plans);
            (plans.len() as u64, plans.counters())
        };
        let transport = lock(&self.transport)
            .as_ref()
            .map(|m| m.snapshot())
            .unwrap_or_default();
        let snap = self.snapshot();
        ServiceStats {
            version: snap.version,
            queries: self.queries.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            cache_entries: entries,
            cache: counters,
            plan_entries,
            plans: plan_counters,
            delta_compactions: snap.engine.sys.delta_compactions(),
            graph_builds: self.graph_builds.load(Ordering::Relaxed)
                + snap.engine.graph_build_count(),
            graph_patches: self.graph_patches.load(Ordering::Relaxed)
                + snap.engine.graph_patch_count(),
            transport,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proql_common::{tup, Schema, ValueType};

    /// Two disconnected mapping families: X → Y (via mxy) and U → V (via
    /// muv). A query over one family must not be invalidated by writes to
    /// the other.
    fn two_island_system() -> ProvenanceSystem {
        let mut sys = ProvenanceSystem::new();
        for name in ["X", "Y", "U", "V"] {
            sys.add_relation_with_local(
                Schema::build(name, &[("id", ValueType::Int), ("w", ValueType::Int)], &[0])
                    .unwrap(),
            )
            .unwrap();
        }
        sys.add_mapping_text("mxy: Y(i, w) :- X(i, w)").unwrap();
        sys.add_mapping_text("muv: V(i, w) :- U(i, w)").unwrap();
        for i in 0..5 {
            sys.insert_local("X", tup![i, i * 10]).unwrap();
            sys.insert_local("U", tup![i, i * 10]).unwrap();
        }
        sys.run_exchange().unwrap();
        sys
    }

    const Q_Y: &str = "FOR [Y $x] INCLUDE PATH [$x] <-+ [] RETURN $x";
    const Q_V: &str = "FOR [V $x] INCLUDE PATH [$x] <-+ [] RETURN $x";

    #[test]
    fn repeat_query_hits_cache() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        let first = core.query(Q_Y).unwrap();
        assert!(!first.cache_hit);
        let second = core.query(Q_Y).unwrap();
        assert!(second.cache_hit);
        assert_eq!(first.version, second.version);
        assert_eq!(
            first.output.projection.bindings,
            second.output.projection.bindings
        );
        let stats = core.stats();
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.queries, 2);
    }

    #[test]
    fn whitespace_variants_share_a_cache_entry() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        core.query(Q_Y).unwrap();
        let reformatted = "FOR   [Y $x]\n  INCLUDE PATH [$x] <-+ []\n  RETURN $x";
        assert!(core.query(reformatted).unwrap().cache_hit);
    }

    #[test]
    fn cache_key_preserves_string_literals_and_strips_comments() {
        // Whitespace inside single-quoted literals is significant: these
        // are different predicates and must not share a cache entry.
        let a = ServiceCore::cache_key("FOR [Y $x] WHERE $x.n = 'a b' RETURN $x");
        let b = ServiceCore::cache_key("FOR [Y $x] WHERE $x.n = 'a  b' RETURN $x");
        assert_ne!(a, b);
        // `--` line comments are insignificant, like in the lexer.
        let c = ServiceCore::cache_key("FOR [Y $x] -- note\n RETURN $x");
        assert_eq!(c, "FOR [Y $x] RETURN $x");
        // The `<-+` arrow is untouched by comment stripping.
        assert_eq!(ServiceCore::cache_key("[$x]  <-+   []"), "[$x] <-+ []");
    }

    #[test]
    fn write_to_unrelated_relation_keeps_entry_hot() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        let before = core.query(Q_Y).unwrap();
        // Delete in the U/V island: the Y answer depends only on X/Y.
        let (v, stats) = core.delete("U", &tup![0]).unwrap();
        assert!(v > before.version);
        assert!(!stats.touched.contains("X_l"));
        let after = core.query(Q_Y).unwrap();
        assert!(after.cache_hit, "unrelated write must not evict");
        assert_eq!(after.version, v, "hit must report the current version");
        assert_eq!(
            before.output.projection.bindings,
            after.output.projection.bindings
        );
    }

    #[test]
    fn write_to_touched_relation_maintains_entry() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        let before = core.query(Q_Y).unwrap();
        assert_eq!(before.output.projection.bindings.len(), 5);
        let (v, _) = core.delete("X", &tup![0]).unwrap();
        let after = core.query(Q_Y).unwrap();
        assert!(
            after.cache_hit,
            "a localizable write must patch the entry, not evict it"
        );
        assert_eq!(after.version, v);
        assert_eq!(after.output.projection.bindings.len(), 4);
        // The patched answer is bit-identical to a fresh recomputation.
        let fresh = core.snapshot().engine.query(Q_Y).unwrap();
        assert_eq!(result_digest(&after.output), result_digest(&fresh));
        let stats = core.stats();
        assert_eq!(stats.cache.maint_hits, 1);
        assert_eq!(stats.cache.maint_fallbacks, 0);
        assert!(stats.cache.maint_rows_patched > 0);
        assert_eq!(stats.cache.stale_evictions, 0);
    }

    #[test]
    fn maintenance_disabled_reproduces_evict_on_write() {
        let core =
            ServiceCore::new(two_island_system(), EngineOptions::default()).with_maintenance(false);
        let before = core.query(Q_Y).unwrap();
        assert_eq!(before.output.projection.bindings.len(), 5);
        let (v, _) = core.delete("X", &tup![0]).unwrap();
        let after = core.query(Q_Y).unwrap();
        assert!(!after.cache_hit, "write to a dependency must evict");
        assert_eq!(after.version, v);
        assert_eq!(after.output.projection.bindings.len(), 4);
        let stats = core.stats();
        assert_eq!(stats.cache.stale_evictions, 1);
        assert_eq!(stats.cache.maint_hits, 0);
    }

    #[test]
    fn insert_and_exchange_maintains_dependent_entries() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        core.query(Q_Y).unwrap();
        core.query(Q_V).unwrap();
        let (_, write_set) = core.insert_and_exchange("X", tup![9, 90]).unwrap();
        assert!(write_set.contains("X_l"));
        assert!(write_set.contains("Y"), "write set: {write_set:?}");
        assert!(!write_set.contains("V"), "write set: {write_set:?}");
        let y = core.query(Q_Y).unwrap();
        assert!(y.cache_hit, "insert+exchange must patch the Y entry");
        assert_eq!(y.output.projection.bindings.len(), 6);
        let fresh = core.snapshot().engine.query(Q_Y).unwrap();
        assert_eq!(result_digest(&y.output), result_digest(&fresh));
        assert!(core.query(Q_V).unwrap().cache_hit);
        assert_eq!(core.stats().cache.maint_hits, 1);
    }

    #[test]
    fn maintained_annotation_entry_carries_state_across_rounds() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        let q = "EVALUATE WEIGHT OF { FOR [Y $x] INCLUDE PATH [$x] <-+ [] RETURN $x } \
                 ASSIGNING EACH leaf_node $y { DEFAULT : SET 1 }";
        core.query(q).unwrap();
        // Two maintenance rounds: the second reuses the carry-over state.
        core.insert_and_exchange("X", tup![7, 70]).unwrap();
        let r1 = core.query(q).unwrap();
        assert!(r1.cache_hit, "round 1 must maintain");
        core.delete("X", &tup![1]).unwrap();
        let r2 = core.query(q).unwrap();
        assert!(r2.cache_hit, "round 2 must maintain");
        let fresh = core.snapshot().engine.query(q).unwrap();
        assert_eq!(result_digest(&r2.output), result_digest(&fresh));
        assert_eq!(core.stats().cache.maint_hits, 2);
    }

    #[test]
    fn duplicate_insert_is_a_noop_and_evicts_nothing() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        core.query(Q_Y).unwrap();
        let v0 = core.version();
        // X_l already holds (0, 0): set semantics make this a no-op.
        let (v, write_set) = core.insert_and_exchange("X", tup![0, 0]).unwrap();
        assert_eq!(v, v0, "no-op insert must not publish a new version");
        assert!(write_set.is_empty());
        assert!(
            core.query(Q_Y).unwrap().cache_hit,
            "no-op must evict nothing"
        );
        assert_eq!(core.stats().writes, 0);
    }

    #[test]
    fn result_miss_reuses_cached_plan() {
        // Maintenance off: this test is about the plan-reuse path under
        // forced result misses (the ablation baseline's hot path).
        let core =
            ServiceCore::new(two_island_system(), EngineOptions::default()).with_maintenance(false);
        let first = core.query(Q_Y).unwrap();
        assert!(!first.cache_hit && !first.plan_cache_hit);
        // A write to a dependency evicts the result but not the plan: the
        // point delete stays within the stats fingerprint's buckets.
        core.delete("X", &tup![0]).unwrap();
        let second = core.query(Q_Y).unwrap();
        assert!(!second.cache_hit, "result must re-execute after the write");
        assert!(second.plan_cache_hit, "plan must be reused");
        assert_eq!(second.output.projection.bindings.len(), 4);
        let stats = core.stats();
        assert_eq!(stats.plans.hits, 1);
        assert_eq!(stats.plans.misses, 1);
        assert_eq!(stats.plan_entries, 1);
    }

    #[test]
    fn invalidate_keeps_plans_hot() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        core.query(Q_Y).unwrap();
        core.invalidate();
        let again = core.query(Q_Y).unwrap();
        assert!(!again.cache_hit);
        assert!(again.plan_cache_hit, "INVALIDATE must not drop plans");
        assert_eq!(again.output.projection.bindings.len(), 5);
    }

    #[test]
    fn plan_capacity_zero_disables_plan_reuse() {
        let core =
            ServiceCore::with_capacities(two_island_system(), EngineOptions::default(), 1024, 0);
        core.query(Q_Y).unwrap();
        core.invalidate();
        let again = core.query(Q_Y).unwrap();
        assert!(!again.plan_cache_hit);
        assert_eq!(core.stats().plans.hits, 0);
    }

    #[test]
    fn explain_over_the_service_reports_plan() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        let resp = core
            .query("EXPLAIN FOR [Y $x] INCLUDE PATH [$x] <-+ [] RETURN $x")
            .unwrap();
        let plan = resp.output.plan.as_deref().expect("EXPLAIN plan text");
        assert!(plan.contains("strategy:"), "{plan}");
        assert!(resp.output.projection.bindings.is_empty());
        // EXPLAIN and the plain query are distinct cache keys.
        assert!(!core.query(Q_Y).unwrap().cache_hit);
    }

    #[test]
    fn explain_flag_is_canonical_in_cache_keys() {
        // The parser matches keywords case-insensitively, so every case
        // variant of EXPLAIN is the same query and must share one entry…
        assert_eq!(
            ServiceCore::cache_key("explain FOR [Y $x] RETURN $x"),
            ServiceCore::cache_key("EXPLAIN  FOR [Y $x] RETURN $x")
        );
        assert_eq!(
            ServiceCore::cache_key("Explain -- plan?\n FOR [Y $x] RETURN $x"),
            ServiceCore::cache_key("EXPLAIN FOR [Y $x] RETURN $x")
        );
        // …that is never conflated with the plain query's entry: an
        // EXPLAIN answer has no result rows, so sharing a key would serve
        // an empty projection for the real query.
        assert_ne!(
            ServiceCore::cache_key("EXPLAIN FOR [Y $x] RETURN $x"),
            ServiceCore::cache_key("FOR [Y $x] RETURN $x")
        );
        // End to end: a lowercase `explain` hits the uppercase entry and
        // still leaves the plain query a miss.
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        core.query(&format!("EXPLAIN {Q_Y}")).unwrap();
        let variant = core.query(&format!("explain {Q_Y}")).unwrap();
        assert!(
            variant.cache_hit,
            "case variant of EXPLAIN must share the entry"
        );
        assert!(!core.query(Q_Y).unwrap().cache_hit);
    }

    #[test]
    fn explain_analyze_is_canonical_and_bypasses_the_result_cache() {
        // Case variants canonicalize to one key, distinct from plain
        // EXPLAIN (different payload: measured vs estimated).
        assert_eq!(
            ServiceCore::cache_key("explain analyze FOR [Y $x] RETURN $x"),
            ServiceCore::cache_key("EXPLAIN  ANALYZE  FOR [Y $x] RETURN $x")
        );
        assert_ne!(
            ServiceCore::cache_key("EXPLAIN ANALYZE FOR [Y $x] RETURN $x"),
            ServiceCore::cache_key("EXPLAIN FOR [Y $x] RETURN $x")
        );
        // End to end: analyze re-executes every time (its payload is
        // measured timings), but still reuses the prepared plan.
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        let q = format!("EXPLAIN ANALYZE {Q_Y}");
        let first = core.query(&q).unwrap();
        assert!(!first.cache_hit);
        assert!(first.output.plan.as_deref().unwrap().contains("actual"));
        let second = core.query(&q).unwrap();
        assert!(!second.cache_hit, "analyze must bypass the result cache");
        assert!(second.plan_cache_hit, "analyze still reuses the plan");
    }

    #[test]
    fn stats_text_and_json_come_from_one_registry() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        core.query(Q_Y).unwrap();
        core.query(Q_Y).unwrap();
        core.delete("X", &tup![0]).unwrap();
        core.query(Q_Y).unwrap();
        let stats = core.stats();
        // Graph counters survive snapshot turnover: the first query built
        // the graph on the retired snapshot, the post-write query patched
        // (or rebuilt) on the current one.
        assert!(stats.graph_builds >= 1);
        let registry = stats.registry();
        assert_eq!(stats.to_json(), registry.to_json());
        assert_eq!(stats.to_text(), registry.to_text());
        // Every registry entry appears in both renderings with the same
        // rendered value — the two surfaces cannot drift.
        let json = stats.to_json();
        let text = stats.to_text();
        for (name, _) in registry.entries() {
            let line = text
                .lines()
                .find(|l| l.starts_with(&format!("{name} ")))
                .unwrap_or_else(|| panic!("{name} missing from text"));
            let value = line.split_once(' ').unwrap().1;
            assert!(
                json.contains(&format!("\"{name}\": {value}")),
                "{name}={value} missing from JSON"
            );
        }
    }

    #[test]
    fn subscriptions_receive_deltas_and_resyncs() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        let (id, initial, rx) = core.subscribe(Q_Y).unwrap();
        assert_eq!(initial.output.projection.bindings.len(), 5);
        assert_eq!(core.subscription_count(), 1);

        // Unrelated write: no event.
        core.delete("U", &tup![0]).unwrap();
        assert!(rx.try_recv().is_err(), "unrelated write must not notify");

        // Touching write: maintained → a Delta event with the patched
        // answer's digest.
        let (v, _) = core.delete("X", &tup![0]).unwrap();
        let (got_id, event) = rx.try_recv().expect("touching write must notify");
        assert_eq!(got_id, id);
        match event {
            SubscriptionEvent::Delta {
                version,
                rows_patched,
                digest,
            } => {
                assert_eq!(version, v);
                assert!(rows_patched > 0);
                let served = core.query(Q_Y).unwrap();
                assert!(served.cache_hit);
                assert_eq!(digest, result_digest(&served.output));
            }
            other => panic!("expected Delta, got {other:?}"),
        }

        // INVALIDATE then a touching write: the entry is gone, so the
        // subscriber is told to resync.
        core.invalidate();
        let (v2, _) = core.delete("X", &tup![1]).unwrap();
        match rx.try_recv() {
            Ok((_, SubscriptionEvent::Resync { version })) => assert_eq!(version, v2),
            other => panic!("expected Resync, got {other:?}"),
        }

        assert!(core.unsubscribe(id));
        assert!(!core.unsubscribe(id));
        assert_eq!(core.subscription_count(), 0);
    }

    #[test]
    fn dropped_subscribers_are_pruned_on_notify() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        let (_, _, rx) = core.subscribe(Q_Y).unwrap();
        drop(rx);
        core.delete("X", &tup![0]).unwrap();
        assert_eq!(
            core.subscription_count(),
            0,
            "hung-up subscriber must be pruned"
        );
    }

    #[test]
    fn invalidate_clears_everything() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        core.query(Q_Y).unwrap();
        core.query(Q_V).unwrap();
        assert_eq!(core.invalidate(), 2);
        assert!(!core.query(Q_Y).unwrap().cache_hit);
    }

    #[test]
    fn query_errors_are_not_cached() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        assert!(core.query("FOR [Y $x RETURN $x").is_err());
        assert_eq!(core.stats().cache_entries, 0);
    }

    #[test]
    fn failed_write_leaves_version_and_snapshot_unchanged() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        let v0 = core.version();
        assert!(core.delete("X", &tup![99]).is_err());
        assert_eq!(core.version(), v0);
        assert_eq!(core.query(Q_Y).unwrap().output.projection.bindings.len(), 5);
    }

    #[test]
    fn writes_publish_shared_structure_snapshots() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        let before = core.snapshot();
        core.insert_and_exchange("X", tup![9, 90]).unwrap();
        let after = core.snapshot();
        // The U/V island was untouched: its tables are shared pointers.
        assert!(before
            .engine
            .sys
            .db
            .shares_table_storage(&after.engine.sys.db, "U"));
        assert!(before
            .engine
            .sys
            .db
            .shares_table_storage(&after.engine.sys.db, "V"));
        // The written family was materialized copy-on-write.
        assert!(!before
            .engine
            .sys
            .db
            .shares_table_storage(&after.engine.sys.db, "X_l"));
        assert_eq!(before.engine.sys.db.table("X_l").unwrap().len(), 5);
        assert_eq!(after.engine.sys.db.table("X_l").unwrap().len(), 6);
    }

    #[test]
    fn deletes_ride_the_cached_graph_and_deltas() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        // First delete builds the graph once; the published snapshots
        // adopt and patch it, so no further full builds happen.
        core.delete("U", &tup![0]).unwrap();
        core.delete("U", &tup![1]).unwrap();
        core.delete("X", &tup![0]).unwrap();
        let snap = core.snapshot();
        let g = snap.engine.graph().unwrap();
        assert_eq!(
            snap.engine.graph_build_count(),
            0,
            "published engines must patch the adopted graph, not rebuild"
        );
        assert_eq!(
            g.digest(),
            proql_provgraph::ProvGraph::from_system(&snap.engine.sys)
                .unwrap()
                .digest(),
            "patched service graph must match a from-scratch rebuild"
        );
        // And query results over it are correct.
        let y = core.query(Q_Y).unwrap();
        assert_eq!(y.output.projection.bindings.len(), 4);
        let v = core.query(Q_V).unwrap();
        assert_eq!(v.output.projection.bindings.len(), 3);
    }

    #[test]
    fn service_core_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServiceCore>();
    }
}
