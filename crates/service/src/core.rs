//! The shared, thread-safe query service.
//!
//! # Locking discipline
//!
//! * Readers never block readers, and never block behind a running
//!   write: [`ServiceCore::query`] grabs the **current snapshot**
//!   (an `Arc<Snapshot>` behind a briefly-held `RwLock`) and runs the
//!   whole query against that immutable snapshot.
//! * Writers serialize through `write_gate` and publish `(snapshot,
//!   delta)` pairs: the next system is a **copy-on-write** clone
//!   (O(#relations) pointer bumps; only mutated tables materialize), the
//!   mutation seals a [`proql_provgraph::GraphDelta`] in the system's
//!   delta log, the write set recorded in the result cache is derived
//!   from that delta, and the published engine adopts the previous
//!   snapshot's provenance graph so the first graph query after the
//!   write patches instead of rebuilding. In-flight readers keep their
//!   `Arc` to the old snapshot and finish with a consistent view.
//! * The cache's freshness rule (see [`crate::cache`]) makes the
//!   reader/writer races benign: a result computed against a snapshot
//!   that a concurrent write has outdated is rejected at insert time,
//!   and a cache hit's reported version is read under the cache lock —
//!   writers record the write set *before* publishing, so an entry that
//!   survives the epoch check is valid at the version the reader
//!   reports.

use crate::cache::{CacheCounters, PlanCache, PlanCacheCounters, ResultCache};
use proql::engine::{Engine, EngineOptions, QueryOutput};
use proql_cdss::update::{delete_local_with_graph, DeleteStats};
use proql_common::{Result, Tuple};
use proql_provgraph::ProvenanceSystem;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Lock with poison recovery: a worker that panicked mid-query must not
/// wedge every other worker. The data behind each service lock is safe to
/// resume after a panic — the snapshot slot is a single `Arc` swap, and
/// the caches are freshness-checked on every read — so the poison flag
/// carries no information here.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Read-lock with poison recovery (see [`lock`]).
fn read_lock<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

/// Write-lock with poison recovery (see [`lock`]).
fn write_lock<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|e| e.into_inner())
}

/// One immutable published version of the system: queries run against a
/// snapshot end-to-end, so a write landing mid-query cannot tear results.
#[derive(Debug)]
pub struct Snapshot {
    /// The [`ProvenanceSystem::version`] this snapshot was published at.
    pub version: u64,
    /// A read-only engine over the snapshot's system.
    pub engine: Engine,
}

/// Point-in-time service statistics (the `STATS` verb's payload).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    /// Currently published system version.
    pub version: u64,
    /// Queries served (hits + misses + errors).
    pub queries: u64,
    /// Writes applied (deletions + insert/exchange rounds).
    pub writes: u64,
    /// Live cache entries.
    pub cache_entries: u64,
    /// Cache counters.
    pub cache: CacheCounters,
    /// Live prepared-plan entries.
    pub plan_entries: u64,
    /// Prepared-plan cache counters.
    pub plans: PlanCacheCounters,
}

impl ServiceStats {
    /// Hand-rolled JSON rendering (the workspace has no serde).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"version\": {}, \"queries\": {}, \"writes\": {}, \"cache_entries\": {}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \"cache_hit_rate\": {:.6}, \
             \"stale_evictions\": {}, \"capacity_evictions\": {}, \"rejected_inserts\": {}, \
             \"plan_entries\": {}, \"plan_cache_hits\": {}, \"plan_cache_misses\": {}, \
             \"plan_cache_hit_rate\": {:.6}, \"plan_reprepares\": {}}}",
            self.version,
            self.queries,
            self.writes,
            self.cache_entries,
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate(),
            self.cache.stale_evictions,
            self.cache.capacity_evictions,
            self.cache.rejected_inserts,
            self.plan_entries,
            self.plans.hits,
            self.plans.misses,
            self.plans.hit_rate(),
            self.plans.reprepares,
        )
    }
}

/// A query answer plus the service-level context it was produced in.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The system version this answer is valid at: a serial [`Engine`]
    /// replay against the system state of this version returns a
    /// bit-identical result.
    pub version: u64,
    /// Whether the answer came from the result cache.
    pub cache_hit: bool,
    /// Whether the query reused a cached prepared plan (always `false`
    /// on result-cache hits, which never consult the plan cache).
    pub plan_cache_hit: bool,
    /// The answer.
    pub output: Arc<QueryOutput>,
}

/// A shared, thread-safe ProQL query service over a [`ProvenanceSystem`]:
/// single-writer / multi-reader with versioned snapshots and a
/// dependency-tracked result cache.
#[derive(Debug)]
pub struct ServiceCore {
    state: RwLock<Arc<Snapshot>>,
    write_gate: Mutex<()>,
    cache: Mutex<ResultCache>,
    plans: Mutex<PlanCache>,
    options: EngineOptions,
    queries: AtomicU64,
    writes: AtomicU64,
}

/// Default bound on live cache entries.
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// Default bound on cached prepared plans.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 256;

impl ServiceCore {
    /// Serve `sys` with engine `options` and the default cache capacities.
    pub fn new(sys: ProvenanceSystem, options: EngineOptions) -> Self {
        ServiceCore::with_capacities(
            sys,
            options,
            DEFAULT_CACHE_CAPACITY,
            DEFAULT_PLAN_CACHE_CAPACITY,
        )
    }

    /// Serve `sys` with an explicit result-cache capacity and the default
    /// plan-cache capacity.
    pub fn with_cache_capacity(
        sys: ProvenanceSystem,
        options: EngineOptions,
        capacity: usize,
    ) -> Self {
        ServiceCore::with_capacities(sys, options, capacity, DEFAULT_PLAN_CACHE_CAPACITY)
    }

    /// Serve `sys` with explicit result-cache and plan-cache capacities
    /// (a plan capacity of 0 disables prepared-plan reuse — the
    /// unprepared baseline benchmarks measure against).
    pub fn with_capacities(
        sys: ProvenanceSystem,
        options: EngineOptions,
        capacity: usize,
        plan_capacity: usize,
    ) -> Self {
        let version = sys.version();
        let engine = Engine::with_options(sys, options.clone());
        ServiceCore {
            state: RwLock::new(Arc::new(Snapshot { version, engine })),
            write_gate: Mutex::new(()),
            cache: Mutex::new(ResultCache::new(capacity)),
            plans: Mutex::new(PlanCache::new(plan_capacity)),
            options,
            queries: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        }
    }

    /// The currently published snapshot.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&read_lock(&self.state))
    }

    /// The currently published system version.
    pub fn version(&self) -> u64 {
        self.snapshot().version
    }

    /// Cache keys are whitespace-normalized query text, so reformatted
    /// copies of the same query share an entry. Normalization mirrors
    /// the ProQL lexer: single-quoted string literals are preserved
    /// verbatim (whitespace inside them is significant) and `--` line
    /// comments are stripped.
    pub fn cache_key(text: &str) -> String {
        let mut out = String::with_capacity(text.len());
        let mut chars = text.chars().peekable();
        let mut pending_space = false;
        let emit = |c: char, out: &mut String, pending: &mut bool| {
            if *pending && !out.is_empty() {
                out.push(' ');
            }
            *pending = false;
            out.push(c);
        };
        while let Some(c) = chars.next() {
            match c {
                '\'' => {
                    emit('\'', &mut out, &mut pending_space);
                    for c in chars.by_ref() {
                        out.push(c);
                        if c == '\'' {
                            break;
                        }
                    }
                }
                '-' if chars.peek() == Some(&'-') => {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            break;
                        }
                    }
                    pending_space = true;
                }
                c if c.is_whitespace() => pending_space = true,
                c => emit(c, &mut out, &mut pending_space),
            }
        }
        out
    }

    /// Serve one ProQL query: from the result cache when a fresh entry
    /// exists; otherwise via the prepared-plan cache — a cached plan
    /// (validated against statistics drift) skips parse → translate →
    /// optimize — executing against the current snapshot and caching the
    /// answer keyed by its read set.
    pub fn query(&self, text: &str) -> Result<QueryResponse> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let key = ServiceCore::cache_key(text);
        {
            let mut cache = lock(&self.cache);
            // Read the published version while holding the cache lock:
            // writers record their write set before publishing, so an
            // entry that passes the epoch check is valid at `version`.
            let version = read_lock(&self.state).version;
            if let Some(output) = cache.lookup(&key) {
                return Ok(QueryResponse {
                    version,
                    cache_hit: true,
                    plan_cache_hit: false,
                    output,
                });
            }
        }
        let snap = self.snapshot();
        // Result miss: reuse the cached plan when its statistics are
        // still current (plan reuse is always *correct*; the fingerprint
        // check only guards cost-optimality).
        let cached_plan = lock(&self.plans).lookup(&key, snap.version, |touched| {
            snap.engine.stats_fingerprint(touched)
        });
        let (prepared, plan_cache_hit) = match cached_plan {
            Some(p) => (p, true),
            None => {
                // Prepare outside the plan lock: translation can be slow
                // and must not serialize other queries' lookups. A racing
                // duplicate prepare is benign (last insert wins).
                let p = Arc::new(snap.engine.prepare(text)?);
                lock(&self.plans).insert(key.clone(), Arc::clone(&p), snap.version);
                (p, false)
            }
        };
        let output = Arc::new(snap.engine.execute(&prepared)?);
        lock(&self.cache).insert(
            key,
            output.touched.clone(),
            snap.version,
            Arc::clone(&output),
        );
        Ok(QueryResponse {
            version: snap.version,
            cache_hit: false,
            plan_cache_hit,
            output,
        })
    }

    /// Apply a mutation through the single-writer path: clone the
    /// current system **copy-on-write** (O(#relations) pointer bumps —
    /// only the tables the mutation touches are materialized), run
    /// `mutate` on the clone, then publish the result as the next
    /// snapshot. The published engine **adopts** the previous snapshot's
    /// cached provenance graph, so the first graph query after the write
    /// pays a delta patch instead of a from-scratch rebuild.
    ///
    /// `mutate` returns the write set — the relations it modified —
    /// which is recorded in the cache *before* the new snapshot becomes
    /// visible; returning `None` reports a no-op (nothing is published,
    /// no entry is evicted).
    fn write<T>(
        &self,
        mutate: impl FnOnce(&Snapshot, &mut ProvenanceSystem) -> Result<Option<(BTreeSet<String>, T)>>,
    ) -> Result<Option<(u64, T)>> {
        let _gate = lock(&self.write_gate);
        let current = self.snapshot();
        let mut sys = current.engine.sys.clone();
        let Some((write_set, value)) = mutate(&current, &mut sys)? else {
            return Ok(None);
        };
        let version = sys.version();
        debug_assert!(version > current.version, "mutations must bump the version");
        let engine = Engine::with_options(sys, self.options.clone());
        engine.adopt_graph_cache(&current.engine);
        let next = Arc::new(Snapshot { version, engine });
        lock(&self.cache).record_write(write_set.iter().map(String::as_str), version);
        *write_lock(&self.state) = next;
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(Some((version, value)))
    }

    /// CDSS deletion: remove a tuple from `relation`'s local table and
    /// garbage-collect everything no longer derivable. The derivability
    /// analysis runs against the current snapshot's cached provenance
    /// graph (building it once if absent — later deletes patch it
    /// forward), so a delete costs the cascade, not a graph rebuild.
    /// Returns the new version and the deletion stats (whose `touched`
    /// set drove cache invalidation).
    pub fn delete(&self, relation: &str, key: &Tuple) -> Result<(u64, DeleteStats)> {
        let published = self.write(|snap, sys| {
            let graph = snap.engine.graph()?;
            let stats = delete_local_with_graph(sys, relation, key, &graph)?;
            Ok(Some((stats.touched.clone(), stats)))
        })?;
        Ok(published.expect("a successful deletion is never a no-op"))
    }

    /// Insert a tuple into `relation`'s local table and re-run the
    /// exchange (incrementally — seeded with just this row). The write
    /// set rides the sealed graph deltas: exactly the base tables the
    /// insert and its exchange touched. A duplicate insert is a no-op
    /// under set semantics: nothing is published, no cache entry dies,
    /// and the current version is returned with an empty write set.
    pub fn insert_and_exchange(
        &self,
        relation: &str,
        tuple: Tuple,
    ) -> Result<(u64, BTreeSet<String>)> {
        let published = self.write(|_snap, sys| {
            let v0 = sys.version();
            if !sys.insert_local(relation, tuple)? {
                return Ok(None);
            }
            sys.run_exchange()?;
            // Derive the write set from the mutation's own delta entries;
            // if the log cannot bridge the span (it always should for a
            // tracked insert+exchange), fail safe to "everything".
            let write_set = sys
                .write_set_since(v0)
                .unwrap_or_else(|| sys.db.table_names().map(str::to_string).collect());
            Ok(Some((write_set.clone(), write_set)))
        })?;
        Ok(published.unwrap_or_else(|| (self.version(), BTreeSet::new())))
    }

    /// Drop every cached result (the `INVALIDATE` verb). Returns how many
    /// entries were dropped. Prepared plans survive — they are
    /// correctness-independent of data, so only statistics drift (checked
    /// on every reuse) retires them.
    pub fn invalidate(&self) -> usize {
        lock(&self.cache).clear()
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> ServiceStats {
        let (entries, counters) = {
            let cache = lock(&self.cache);
            (cache.len() as u64, cache.counters())
        };
        let (plan_entries, plan_counters) = {
            let plans = lock(&self.plans);
            (plans.len() as u64, plans.counters())
        };
        ServiceStats {
            version: self.version(),
            queries: self.queries.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            cache_entries: entries,
            cache: counters,
            plan_entries,
            plans: plan_counters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proql_common::{tup, Schema, ValueType};

    /// Two disconnected mapping families: X → Y (via mxy) and U → V (via
    /// muv). A query over one family must not be invalidated by writes to
    /// the other.
    fn two_island_system() -> ProvenanceSystem {
        let mut sys = ProvenanceSystem::new();
        for name in ["X", "Y", "U", "V"] {
            sys.add_relation_with_local(
                Schema::build(name, &[("id", ValueType::Int), ("w", ValueType::Int)], &[0])
                    .unwrap(),
            )
            .unwrap();
        }
        sys.add_mapping_text("mxy: Y(i, w) :- X(i, w)").unwrap();
        sys.add_mapping_text("muv: V(i, w) :- U(i, w)").unwrap();
        for i in 0..5 {
            sys.insert_local("X", tup![i, i * 10]).unwrap();
            sys.insert_local("U", tup![i, i * 10]).unwrap();
        }
        sys.run_exchange().unwrap();
        sys
    }

    const Q_Y: &str = "FOR [Y $x] INCLUDE PATH [$x] <-+ [] RETURN $x";
    const Q_V: &str = "FOR [V $x] INCLUDE PATH [$x] <-+ [] RETURN $x";

    #[test]
    fn repeat_query_hits_cache() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        let first = core.query(Q_Y).unwrap();
        assert!(!first.cache_hit);
        let second = core.query(Q_Y).unwrap();
        assert!(second.cache_hit);
        assert_eq!(first.version, second.version);
        assert_eq!(
            first.output.projection.bindings,
            second.output.projection.bindings
        );
        let stats = core.stats();
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.queries, 2);
    }

    #[test]
    fn whitespace_variants_share_a_cache_entry() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        core.query(Q_Y).unwrap();
        let reformatted = "FOR   [Y $x]\n  INCLUDE PATH [$x] <-+ []\n  RETURN $x";
        assert!(core.query(reformatted).unwrap().cache_hit);
    }

    #[test]
    fn cache_key_preserves_string_literals_and_strips_comments() {
        // Whitespace inside single-quoted literals is significant: these
        // are different predicates and must not share a cache entry.
        let a = ServiceCore::cache_key("FOR [Y $x] WHERE $x.n = 'a b' RETURN $x");
        let b = ServiceCore::cache_key("FOR [Y $x] WHERE $x.n = 'a  b' RETURN $x");
        assert_ne!(a, b);
        // `--` line comments are insignificant, like in the lexer.
        let c = ServiceCore::cache_key("FOR [Y $x] -- note\n RETURN $x");
        assert_eq!(c, "FOR [Y $x] RETURN $x");
        // The `<-+` arrow is untouched by comment stripping.
        assert_eq!(ServiceCore::cache_key("[$x]  <-+   []"), "[$x] <-+ []");
    }

    #[test]
    fn write_to_unrelated_relation_keeps_entry_hot() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        let before = core.query(Q_Y).unwrap();
        // Delete in the U/V island: the Y answer depends only on X/Y.
        let (v, stats) = core.delete("U", &tup![0]).unwrap();
        assert!(v > before.version);
        assert!(!stats.touched.contains("X_l"));
        let after = core.query(Q_Y).unwrap();
        assert!(after.cache_hit, "unrelated write must not evict");
        assert_eq!(after.version, v, "hit must report the current version");
        assert_eq!(
            before.output.projection.bindings,
            after.output.projection.bindings
        );
    }

    #[test]
    fn write_to_touched_relation_evicts_entry() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        let before = core.query(Q_Y).unwrap();
        assert_eq!(before.output.projection.bindings.len(), 5);
        let (v, _) = core.delete("X", &tup![0]).unwrap();
        let after = core.query(Q_Y).unwrap();
        assert!(!after.cache_hit, "write to a dependency must evict");
        assert_eq!(after.version, v);
        assert_eq!(after.output.projection.bindings.len(), 4);
        assert_eq!(core.stats().cache.stale_evictions, 1);
    }

    #[test]
    fn insert_and_exchange_evicts_dependent_entries_only() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        core.query(Q_Y).unwrap();
        core.query(Q_V).unwrap();
        let (_, write_set) = core.insert_and_exchange("X", tup![9, 90]).unwrap();
        assert!(write_set.contains("X_l"));
        assert!(write_set.contains("Y"), "write set: {write_set:?}");
        assert!(!write_set.contains("V"), "write set: {write_set:?}");
        let y = core.query(Q_Y).unwrap();
        assert!(!y.cache_hit);
        assert_eq!(y.output.projection.bindings.len(), 6);
        assert!(core.query(Q_V).unwrap().cache_hit);
    }

    #[test]
    fn duplicate_insert_is_a_noop_and_evicts_nothing() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        core.query(Q_Y).unwrap();
        let v0 = core.version();
        // X_l already holds (0, 0): set semantics make this a no-op.
        let (v, write_set) = core.insert_and_exchange("X", tup![0, 0]).unwrap();
        assert_eq!(v, v0, "no-op insert must not publish a new version");
        assert!(write_set.is_empty());
        assert!(
            core.query(Q_Y).unwrap().cache_hit,
            "no-op must evict nothing"
        );
        assert_eq!(core.stats().writes, 0);
    }

    #[test]
    fn result_miss_reuses_cached_plan() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        let first = core.query(Q_Y).unwrap();
        assert!(!first.cache_hit && !first.plan_cache_hit);
        // A write to a dependency evicts the result but not the plan: the
        // point delete stays within the stats fingerprint's buckets.
        core.delete("X", &tup![0]).unwrap();
        let second = core.query(Q_Y).unwrap();
        assert!(!second.cache_hit, "result must re-execute after the write");
        assert!(second.plan_cache_hit, "plan must be reused");
        assert_eq!(second.output.projection.bindings.len(), 4);
        let stats = core.stats();
        assert_eq!(stats.plans.hits, 1);
        assert_eq!(stats.plans.misses, 1);
        assert_eq!(stats.plan_entries, 1);
    }

    #[test]
    fn invalidate_keeps_plans_hot() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        core.query(Q_Y).unwrap();
        core.invalidate();
        let again = core.query(Q_Y).unwrap();
        assert!(!again.cache_hit);
        assert!(again.plan_cache_hit, "INVALIDATE must not drop plans");
        assert_eq!(again.output.projection.bindings.len(), 5);
    }

    #[test]
    fn plan_capacity_zero_disables_plan_reuse() {
        let core =
            ServiceCore::with_capacities(two_island_system(), EngineOptions::default(), 1024, 0);
        core.query(Q_Y).unwrap();
        core.invalidate();
        let again = core.query(Q_Y).unwrap();
        assert!(!again.plan_cache_hit);
        assert_eq!(core.stats().plans.hits, 0);
    }

    #[test]
    fn explain_over_the_service_reports_plan() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        let resp = core
            .query("EXPLAIN FOR [Y $x] INCLUDE PATH [$x] <-+ [] RETURN $x")
            .unwrap();
        let plan = resp.output.plan.as_deref().expect("EXPLAIN plan text");
        assert!(plan.contains("strategy:"), "{plan}");
        assert!(resp.output.projection.bindings.is_empty());
        // EXPLAIN and the plain query are distinct cache keys.
        assert!(!core.query(Q_Y).unwrap().cache_hit);
    }

    #[test]
    fn invalidate_clears_everything() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        core.query(Q_Y).unwrap();
        core.query(Q_V).unwrap();
        assert_eq!(core.invalidate(), 2);
        assert!(!core.query(Q_Y).unwrap().cache_hit);
    }

    #[test]
    fn query_errors_are_not_cached() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        assert!(core.query("FOR [Y $x RETURN $x").is_err());
        assert_eq!(core.stats().cache_entries, 0);
    }

    #[test]
    fn failed_write_leaves_version_and_snapshot_unchanged() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        let v0 = core.version();
        assert!(core.delete("X", &tup![99]).is_err());
        assert_eq!(core.version(), v0);
        assert_eq!(core.query(Q_Y).unwrap().output.projection.bindings.len(), 5);
    }

    #[test]
    fn writes_publish_shared_structure_snapshots() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        let before = core.snapshot();
        core.insert_and_exchange("X", tup![9, 90]).unwrap();
        let after = core.snapshot();
        // The U/V island was untouched: its tables are shared pointers.
        assert!(before
            .engine
            .sys
            .db
            .shares_table_storage(&after.engine.sys.db, "U"));
        assert!(before
            .engine
            .sys
            .db
            .shares_table_storage(&after.engine.sys.db, "V"));
        // The written family was materialized copy-on-write.
        assert!(!before
            .engine
            .sys
            .db
            .shares_table_storage(&after.engine.sys.db, "X_l"));
        assert_eq!(before.engine.sys.db.table("X_l").unwrap().len(), 5);
        assert_eq!(after.engine.sys.db.table("X_l").unwrap().len(), 6);
    }

    #[test]
    fn deletes_ride_the_cached_graph_and_deltas() {
        let core = ServiceCore::new(two_island_system(), EngineOptions::default());
        // First delete builds the graph once; the published snapshots
        // adopt and patch it, so no further full builds happen.
        core.delete("U", &tup![0]).unwrap();
        core.delete("U", &tup![1]).unwrap();
        core.delete("X", &tup![0]).unwrap();
        let snap = core.snapshot();
        let g = snap.engine.graph().unwrap();
        assert_eq!(
            snap.engine.graph_build_count(),
            0,
            "published engines must patch the adopted graph, not rebuild"
        );
        assert_eq!(
            g.digest(),
            proql_provgraph::ProvGraph::from_system(&snap.engine.sys)
                .unwrap()
                .digest(),
            "patched service graph must match a from-scratch rebuild"
        );
        // And query results over it are correct.
        let y = core.query(Q_Y).unwrap();
        assert_eq!(y.output.projection.bindings.len(), 4);
        let v = core.query(Q_V).unwrap();
        assert_eq!(v.output.projection.bindings.len(), 3);
    }

    #[test]
    fn service_core_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServiceCore>();
    }
}
